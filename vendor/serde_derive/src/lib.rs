//! Offline stub of `serde_derive`.
//!
//! The derive macros accept the same surface syntax as the real crate —
//! including `#[serde(...)]` helper attributes such as `#[serde(skip)]` — but
//! emit no trait impls. They exist so that `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compile without network access; nothing in
//! the workspace serialises values yet.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
