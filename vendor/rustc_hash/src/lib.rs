//! Offline stub of the `rustc-hash` crate.
//!
//! Provides [`FxHashMap`], [`FxHashSet`], [`FxHasher`] and [`FxBuildHasher`]
//! implementing the same fast, non-cryptographic multiply-based hash used by
//! rustc. API-compatible with `rustc-hash` 2.x for the subset this workspace
//! uses.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The FxHash hasher: a fast multiply-and-rotate hash.
///
/// Not cryptographically secure and not DoS-resistant; ideal for interned
/// identifiers (`RelId`, `ConstId`, `NullId`, `VarId`) which dominate the
/// hashing workload of this crate family.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(set.insert((1, 2)));
        assert!(!set.insert((1, 2)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"omq"), hash(b"omq"));
        assert_ne!(hash(b"omq"), hash(b"qmo"));
    }
}
