//! Offline stub of the `rand` crate.
//!
//! Implements the subset used by the workload generators: `rngs::StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` (over half-open integer ranges) and `gen_bool`. The generator
//! is splitmix64 — deterministic per seed, statistically fine for synthetic
//! benchmark data, and **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range `low..high`.
    ///
    /// Panics when the range is empty, matching the real crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, matching the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 high-quality mantissa bits, mapped to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift rejection-free mapping; the modulo bias is
                // at most span/2^64 and irrelevant for synthetic workloads.
                let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as u128).wrapping_add(value as u128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of this stub (splitmix64).
    ///
    /// Unlike the real `StdRng` (ChaCha-based) this is not secure; it is a
    /// small, fast, reproducible stream for synthetic data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        // Ranges not starting at zero, signed types.
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
