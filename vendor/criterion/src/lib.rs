//! Offline stub of the `criterion` benchmarking crate.
//!
//! Implements the subset of the criterion 0.5 API that the `omq-bench`
//! benchmark targets use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `measurement_time`, `warm_up_time`, `throughput`),
//! [`BenchmarkId`] and [`Bencher::iter`]. Each benchmark really runs and a
//! mean wall-clock time per iteration is printed; there are no statistics,
//! baselines, or HTML reports.
//!
//! Passing `--quick-stub` (or setting `OMQ_BENCH_QUICK=1`) caps every
//! measurement at one sample so that `cargo test --benches` stays fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value. Mirrors
/// `criterion::black_box`.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark manager: entry point handed to every benchmark function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick-stub")
            || std::env::var_os("OMQ_BENCH_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Parses command-line configuration. The stub only recognises
    /// `--quick-stub`; everything else (criterion's own flags, the filter
    /// positional argument) is accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
            quick,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(id.into());
        group.bench_with_input(BenchmarkId::from_parameter("default"), &(), |b, _| f(b));
        group.finish();
    }
}

/// Identifies one benchmark within a group, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a measurement; recorded and echoed, not charted.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Caps the time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (samples, measurement, warm_up) = if self.quick {
            (1, Duration::ZERO, Duration::ZERO)
        } else {
            (self.sample_size, self.measurement_time, self.warm_up_time)
        };
        let mut bencher = Bencher {
            samples,
            measurement,
            warm_up,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations
        };
        println!(
            "  {}/{}: {:>12.3?} per iter ({} iterations)",
            self.name, id.id, mean, bencher.iterations
        );
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.bench_with_input(BenchmarkId::from_parameter(id.into()), &(), |b, _| f(b))
    }

    /// Ends the group. (The stub has no deferred reporting; this is a no-op
    /// kept for API compatibility.)
    pub fn finish(&mut self) {}
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly — a warm-up phase, then up to
    /// `sample_size` timed iterations bounded by the measurement time — and
    /// records the total elapsed time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_up_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_deadline {
                break;
            }
        }
        let started = Instant::now();
        let deadline = started + self.measurement;
        for done in 0..self.samples {
            black_box(routine());
            self.iterations += 1;
            if done + 1 < self.samples && Instant::now() >= deadline {
                break;
            }
        }
        self.elapsed += started.elapsed();
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &(), |b, _| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs >= 1);
    }
}
