//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of a given type.
///
/// Unlike the real proptest `Strategy` (which produces shrinkable value
/// trees), this stub samples plain values directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among several strategies for the same type; the engine
/// behind [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`, which must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_in(0, self.options.len());
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty => $from:ident),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + offset as u128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, i32 => i32, i64 => i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}
