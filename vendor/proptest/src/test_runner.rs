//! Runner configuration, error type, and the deterministic RNG.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test assertion.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic RNG driving case generation (splitmix64 seeded by hashing
/// the test name, so every test has its own reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..hi` (half-open; `hi` must exceed `lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as usize)
    }
}

/// Runs `cases` samples of a property, panicking on the first failure.
///
/// This is the engine behind the [`crate::proptest!`] macro; it is public so
/// that generated code can call it.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    for index in 0..config.cases {
        if let Err(error) = case(&mut rng) {
            panic!("property `{name}` failed on case {index}: {error}");
        }
    }
}

/// Property-test declaration macro mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by any
/// number of `#[test] fn name(pat in strategy, ...) { ... }` items. Bodies
/// may use `prop_assert*!` and `return Ok(())` exactly as with the real
/// crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |__rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Assertion returning a [`TestCaseError`], mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Inequality assertion, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10usize, y in 5u32..7) {
            prop_assert!(x < 10);
            prop_assert!((5..7).contains(&y));
        }

        #[test]
        fn map_oneof_and_vec_compose(
            values in crate::collection::vec(
                prop_oneof![(0..3usize).prop_map(|v| v * 2), Just(99usize)],
                1..5,
            )
        ) {
            prop_assert!(!values.is_empty() && values.len() < 5);
            for v in values {
                prop_assert!(v == 99 || (v % 2 == 0 && v <= 4), "bad value {v}");
            }
        }

        #[test]
        fn early_return_is_supported(x in 0..100u64) {
            if x > 1000 {
                return Ok(());
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    // Declared without `#[test]` so it is not collected; the should_panic
    // test below drives it by hand.
    proptest! {
        fn always_fails(x in 0..5u32) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed on case 0")]
    fn failures_panic_with_case_number() {
        always_fails();
    }
}
