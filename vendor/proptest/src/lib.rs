//! Offline stub of the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//!   implemented for half-open integer ranges, 2- and 3-tuples of
//!   strategies, and [`strategy::Just`];
//! * `prop::collection::vec` with both exact and ranged sizes;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] (`with_cases`) and a deterministic test
//!   runner.
//!
//! Differences from the real crate: case generation is seeded from the test
//! name (fully reproducible, no `PROPTEST_*` environment handling), and a
//! failing case is reported as-generated — there is **no shrinking**.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The admissible sizes of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose length lies in `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}
