//! Offline stub of the `serde` crate.
//!
//! Exposes `Serialize` and `Deserialize` in both the trait and the derive
//! macro namespace, exactly like the real crate with the `derive` feature, so
//! `use serde::{Deserialize, Serialize};` followed by
//! `#[derive(Serialize, Deserialize)]` compiles unchanged. The derives emit
//! no impls (see `vendor/README.md`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The stub derive does not implement it; it exists so that generic code can
/// name the bound.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
