//! Plan reuse: compile an OMQ once, evaluate it over many databases.
//!
//! This is the serving pattern the plan/instance split is built for: a fixed
//! catalogue of ontology-mediated queries compiled up front (`QueryPlan`),
//! and per-request databases evaluated with `QueryPlan::execute` — the
//! query-side artefacts (acyclicity classification, join trees, reduced
//! relation layout) and the query-directed chase's bag-type memo are shared
//! across every request.
//!
//! Run with `cargo run --example plan_reuse`.

use omq::prelude::*;

fn request_database(
    schema: &Schema,
    tenant: usize,
) -> Result<Database, Box<dyn std::error::Error>> {
    // Simulate a per-request database: each "tenant" ships its own facts.
    let mut builder = Database::builder(schema.clone());
    for i in 0..(3 + tenant) {
        builder = builder.fact("Researcher", [format!("t{tenant}_person{i}")]);
    }
    builder = builder
        .fact(
            "HasOffice",
            [format!("t{tenant}_person0"), format!("t{tenant}_office")],
        )
        .fact(
            "InBuilding",
            [format!("t{tenant}_office"), format!("t{tenant}_building")],
        );
    Ok(builder.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )?;
    let query = ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")?;
    let omq = OntologyMediatedQuery::new(ontology, query)?;

    // Compile once: guardedness check, acyclicity classification, GYO join
    // trees, reduced-relation layout, chase rule-trigger tables.
    let plan = QueryPlan::compile(&omq)?;
    println!("compiled plan for {}", plan.omq().query());
    println!("classification: {:?}\n", plan.report());

    // Execute many: each request only pays the data-linear work, and the
    // chase's bag-type memo warms up across requests.
    for tenant in 0..4 {
        let db = request_database(omq.data_schema(), tenant)?;
        let instance = plan.execute(&db)?;
        let complete: Vec<Answer> = instance.answers(Semantics::Complete)?.collect();
        let partial: Vec<Answer> = instance.answers(Semantics::MinimalPartial)?.collect();
        println!(
            "tenant {tenant}: {} facts -> {} chased ({} memo hits), \
             {} complete / {} minimal partial answers",
            instance.stats().input_facts,
            instance.stats().chased_facts,
            instance.stats().memo_hits,
            complete.len(),
            partial.len(),
        );
        for answer in partial.iter().take(3) {
            println!("    {}", instance.format_answer(answer));
        }
    }
    println!(
        "\nbag types memoised across all requests: {}",
        plan.chase_plan().memoized_bag_types()
    );

    // The facade is still available for one-shot evaluation; it now simply
    // compiles a throwaway plan internally.
    let db = request_database(omq.data_schema(), 9)?;
    let engine = OmqEngine::preprocess(&omq, &db)?;
    assert_eq!(
        engine.answers(Semantics::MinimalPartial)?.count(),
        plan.execute(&db)?
            .answers(Semantics::MinimalPartial)?
            .count()
    );
    println!("one-shot OmqEngine agrees with the plan path");
    Ok(())
}
