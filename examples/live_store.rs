//! A live, long-running session: one `Store`, a catalogue of registered
//! queries, and a write workload racing against pinned readers.
//!
//! Demonstrates the session invariants the serving layer is built on:
//!
//! 1. commits are atomic (`Txn` is commit-or-rollback);
//! 2. a pinned `Snapshot` never changes, however many commits land;
//! 3. an in-flight answer stream survives concurrent commits — and the
//!    engine being dropped — because it owns its data;
//! 4. fresh requests see new facts immediately, through the same compiled
//!    plans (nothing is recompiled on data change).
//!
//! Run with `cargo run --example live_store`.

use omq::prelude::*;

fn main() -> omq::Result<()> {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )?;
    let chain = ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")?;
    let offices = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)")?;

    let mut engine = ServingEngine::new(2);
    let chain_id = engine.register_query(
        "chain",
        &OntologyMediatedQuery::new(ontology.clone(), chain)?,
    )?;
    engine.register_query("offices", &OntologyMediatedQuery::new(ontology, offices)?)?;
    println!(
        "catalogue: {} plans; store: {} (schema grown from the registered queries)",
        engine.len(),
        engine.store()
    );

    // --- Epoch 1: the initial bulk load, one atomic commit. -----------------
    let mut txn = Txn::new();
    for i in 0..40 {
        txn = txn.insert("Researcher", [format!("r{i}")]);
        if i % 2 == 0 {
            txn = txn.insert("HasOffice", [format!("r{i}"), format!("office{i}")]);
        }
        if i % 4 == 0 {
            txn = txn.insert("InBuilding", [format!("office{i}"), format!("hq{}", i % 3)]);
        }
    }
    let receipt = engine.register_data(txn)?;
    println!(
        "\nbulk load: {} new facts -> epoch {}",
        receipt.new_facts, receipt.epoch
    );

    // --- A failed commit is a rollback: the store is untouched. -------------
    let before = engine.epoch();
    let bad = Txn::new()
        .insert("Researcher", ["valid"])
        .insert("NoSuchRelation", ["boom"]);
    match engine.register_data(bad) {
        Err(e) => println!("rejected commit: {e} (epoch stays {})", engine.epoch()),
        Ok(_) => unreachable!("the transaction references an unknown relation"),
    }
    assert_eq!(engine.epoch(), before);

    // --- Pin a snapshot, open a stream, then keep writing. ------------------
    let pinned = engine.snapshot();
    let mut in_flight =
        engine.serve_stream(&Request::by_name("chain", Semantics::MinimalPartial))?;
    let first = in_flight.next().expect("the load produced answers");
    println!(
        "\npinned epoch {}; in-flight stream opened, first answer: {}",
        pinned.epoch(),
        first.display_with(|c| pinned.const_name(c).to_owned())
    );

    // Ten more commits land while the reader is parked.
    for round in 0..10 {
        engine.register_data(
            Txn::new()
                .insert("Researcher", [format!("late{round}")])
                .insert(
                    "HasOffice",
                    [format!("late{round}"), format!("annex{round}")],
                )
                .insert("InBuilding", [format!("annex{round}"), "hq9".to_owned()]),
        )?;
    }
    println!("10 commits later: store is at epoch {}", engine.epoch());

    // The pinned snapshot still answers exactly as of its epoch…
    let old = engine
        .serve_one(&Request::new(chain_id, Semantics::Complete).at(pinned.clone()))?
        .answers
        .len();
    // …while the head sees every late arrival, through the same plan.
    let new = engine
        .serve_one(&Request::new(chain_id, Semantics::Complete))?
        .answers
        .len();
    println!("complete answers: {old} at the pinned epoch, {new} at the head");
    assert_eq!(new, old + 10);

    // --- The stream outlives the engine (and therefore the store). ----------
    let drained_while_alive: usize = 1; // the answer pulled above
    drop(engine);
    let rest = in_flight.count();
    println!(
        "engine dropped; the parked stream still yielded {} more answers \
         ({} total, all from its pinned epoch)",
        rest,
        rest + drained_while_alive
    );
    Ok(())
}
