//! The tractability frontier: which OMQs admit constant-delay enumeration?
//!
//! The paper characterises the frontier via acyclicity and free-connex
//! acyclicity, with lower bounds through triangle detection and Boolean matrix
//! multiplication.  This example classifies a few queries, demonstrates that
//! the engine refuses intractable shapes, and runs the two reductions.
//!
//! Run with `cargo run --release --example hardness_frontier`.

use omq::prelude::*;

fn classify(text: &str) {
    let q = ConjunctiveQuery::parse(text).expect("query parses");
    let report = AcyclicityReport::classify(&q);
    println!(
        "  {:60} acyclic={:5} free-connex={:5} weakly-acyclic={:5} -> constant-delay enumeration {}",
        text,
        report.acyclic,
        report.free_connex_acyclic,
        report.weakly_acyclic,
        if report.enumeration_tractable() { "YES" } else { "NO" }
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("classification (Figure 1 of the paper):");
    classify("q(x, y, z) :- R(x, y), S(y, z)");
    classify("q(x, z) :- R(x, y), S(y, z)");
    classify("q(x, y, z) :- R(x, y), S(y, z), T(z, x)");
    classify("q() :- R(x, y), S(y, z), T(z, x)");

    // The engine refuses queries outside the frontier.
    let ontology = Ontology::parse("A(x) -> exists y. R(x, y)")?;
    let bad_query = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)")?;
    let omq = OntologyMediatedQuery::new(ontology, bad_query)?;
    let db = Database::builder(omq.data_schema().clone())
        .fact("A", ["a"])
        .build()?;
    let engine = OmqEngine::preprocess(&omq, &db)?;
    match engine.answers(Semantics::MinimalPartial) {
        Err(e) => println!("\nnon-free-connex query correctly rejected: {e}"),
        Ok(_) => println!("\nunexpected: intractable query was enumerated"),
    }

    // Triangle reduction (Theorem 3.6): single-testing a minimal partial
    // answer solves triangle detection.
    use omq_bench::generators::random_graph;
    use omq_bench::reductions;
    let graph = random_graph(200, 600, 7);
    let direct = reductions::has_triangle_direct(&graph);
    let via_omq = reductions::has_triangle_via_omq(&graph);
    println!("\ntriangle reduction on a random graph (200 vertices, 600 edges):");
    println!("  direct detection:      {direct}");
    println!("  via OMQ single-testing: {via_omq}");

    // BMM reduction (Theorem 4.4): enumerating a non-free-connex query
    // computes a Boolean matrix product.
    use omq_bench::generators::sparse_boolean_matrix;
    let m1 = sparse_boolean_matrix(64, 256, 1);
    let m2 = sparse_boolean_matrix(64, 256, 2);
    let product = m1.multiply(&m2);
    let via_enum = reductions::multiply_via_enumeration(&m1, &m2);
    println!("\nBMM reduction on 64x64 sparse matrices:");
    println!(
        "  |M1·M2| = {} ones, enumeration agrees: {}",
        product.ones.len(),
        product.ones == via_enum.ones
    );
    Ok(())
}
