//! Batch serving and shared-nothing parallel execution.
//!
//! The production shape this workspace grows toward: a fixed catalogue of
//! ontology-mediated queries compiled up front, batches of owned requests
//! served across a worker pool (`ServingEngine`), and individual large,
//! component-rich databases additionally sharded by Gaifman connected
//! component (`QueryPlan::execute_parallel`).
//!
//! This example serves **ad-hoc, per-tenant databases** shipped with the
//! requests (`Request::with_database`); see `examples/live_store.rs` for the
//! session model where the engine owns a long-lived `Store` with
//! transactional ingestion and pinned snapshots.
//!
//! Run with `cargo run --example serving`.

use omq::prelude::*;
use std::sync::Arc;

fn tenant_database(schema: &Schema, tenant: usize) -> omq::Result<Arc<Database>> {
    // Each tenant ships several independent departments — disjoint constant
    // ranges, so every department is its own Gaifman component and the
    // database shards cleanly.
    let mut builder = Database::builder(schema.clone());
    for dept in 0..4 {
        for i in 0..(2 + (tenant + dept) % 3) {
            let person = format!("t{tenant}d{dept}_p{i}");
            builder = builder.fact("Researcher", [person.clone()]);
            if i % 2 == 0 {
                let office = format!("t{tenant}d{dept}_o{i}");
                builder = builder.fact("HasOffice", [person, office.clone()]);
                if dept % 2 == 0 {
                    builder = builder.fact("InBuilding", [office, format!("t{tenant}d{dept}_hq")]);
                }
            }
        }
    }
    Ok(Arc::new(builder.build()?))
}

fn main() -> omq::Result<()> {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )?;
    let full_query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")?;
    let office_query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)")?;

    // The catalogue: compile every query of the workload exactly once.
    let mut engine = ServingEngine::new(4).with_data_parallelism(2);
    let full = engine.register_query(
        "full",
        &OntologyMediatedQuery::new(ontology.clone(), full_query)?,
    )?;
    let offices = engine.register_query(
        "offices",
        &OntologyMediatedQuery::new(ontology, office_query)?,
    )?;
    // Catalogued queries are addressable by handle or by name.
    assert_eq!(engine.query_id("offices"), Some(offices));
    println!("catalogue: {} compiled plans\n", engine.len());

    // A batch of per-tenant requests, mixed across queries and semantics.
    // Requests are owned values: they name the query (by id or name) and
    // carry their data, so they can be built ahead of time and queued.
    let schema = engine.plan(full)?.omq().data_schema().clone();
    let dbs: Vec<Arc<Database>> = (0..6)
        .map(|tenant| tenant_database(&schema, tenant))
        .collect::<omq::Result<_>>()?;
    let mut requests = Vec::new();
    for (tenant, db) in dbs.iter().enumerate() {
        let request = if tenant % 2 == 0 {
            Request::new(full, Semantics::MinimalPartial)
        } else {
            Request::by_name("offices", Semantics::Complete)
        };
        // Every request is bounded: a front end never materialises an
        // unbounded answer set, and `truncated` tells it when to paginate.
        requests.push(request.with_database(db.clone()).with_limit(5));
    }

    for (tenant, response) in engine.serve_batch(&requests).iter().enumerate() {
        let response = response.as_ref().expect("request served");
        println!(
            "tenant {tenant}: {} answers{} over {} shard(s) ({} chased facts, {} memo hits)",
            response.answers.len(),
            if response.truncated {
                "+ (truncated)"
            } else {
                ""
            },
            response.stats.shards,
            response.stats.chased_facts,
            response.stats.memo_hits,
        );
    }

    // The lazy path: pull answers straight off the cursor; stopping early
    // costs O(answers pulled) beyond the preprocessing.
    let sample = dbs[0].clone();
    let mut stream = engine.serve_stream(
        &Request::new(full, Semantics::MinimalPartial).with_database(sample.clone()),
    )?;
    println!("\nstreaming tenant 0 ({} semantics):", stream.semantics());
    for answer in stream.by_ref().take(3) {
        println!(
            "    {}",
            answer.display_with(|c| sample.const_name(c).to_owned())
        );
    }
    drop(stream); // dropping mid-way abandons the rest of the enumeration

    // The same machinery, one level down: shard one database explicitly.
    let db = tenant_database(&schema, 42)?;
    println!(
        "\ntenant 42's database has {} Gaifman components",
        db.component_count()
    );
    let plan = engine.plan(full)?;
    let sequential = plan.execute(&*db)?;
    let parallel = plan.execute_parallel(&*db, 4)?;
    assert_eq!(
        sequential.answers(Semantics::MinimalPartial)?.count(),
        parallel.answers(Semantics::MinimalPartial)?.count()
    );
    println!(
        "parallel execution over {} shards agrees with the sequential path",
        parallel.shard_count()
    );
    Ok(())
}
