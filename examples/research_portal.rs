//! A larger OBDA scenario: a research portal integrating an incomplete HR
//! export.  Demonstrates how the incompleteness ratio of the data shows up as
//! wildcard answers, and the "complete answers first" ordering of
//! Proposition 2.1.
//!
//! Run with `cargo run --release --example research_portal`.

use omq::prelude::*;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ontology = Ontology::parse(
        "# Organisational knowledge.
         Researcher(x) -> exists y. MemberOf(x, y)
         MemberOf(x, y) -> Group(y)
         Group(x) -> exists y. PartOf(x, y)
         PartOf(x, y) -> Institute(y)
         # Every researcher works on some project.
         Researcher(x) -> exists y. WorksOn(x, y)
         WorksOn(x, y) -> Project(y)",
    )?;
    let query = ConjunctiveQuery::parse(
        "q(person, group, institute) :- MemberOf(person, group), PartOf(group, institute)",
    )?;
    let omq = OntologyMediatedQuery::new(ontology, query)?;

    // Synthesise an incomplete HR export: 40% of researchers have no listed
    // group, 30% of groups have no listed institute.
    let mut builder = Database::builder(omq.data_schema().clone());
    let groups = ["dbs", "kr", "ml", "sys"];
    let institutes = ["cs-institute", "ai-institute"];
    for (i, institute) in institutes.iter().enumerate() {
        // Only the first institute assignment is exported.
        if i == 0 {
            builder = builder.fact("PartOf", [groups[0], institute]);
            builder = builder.fact("PartOf", [groups[1], institute]);
        }
    }
    builder = builder.fact("PartOf", [groups[2], institutes[1]]);
    for i in 0..200usize {
        let person = format!("researcher{i}");
        builder = builder.fact("Researcher", [person.as_str()]);
        if i % 5 != 0 {
            // 80% have a listed group.
            let group = groups[i % groups.len()];
            builder = builder.fact("MemberOf", [person.as_str(), group]);
        }
    }
    let db = builder.build()?;

    let engine = OmqEngine::preprocess(&omq, &db)?;
    let answers = engine.enumerate_minimal_partial_complete_first()?;

    // Summarise: how many answers are fully known, partially known, unknown?
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for answer in &answers {
        *histogram.entry(answer.star_count()).or_insert(0) += 1;
    }
    println!("portal contains {} facts", db.len());
    println!("minimal partial answers: {}", answers.len());
    for (stars, count) in &histogram {
        println!("  answers with {stars} unknown position(s): {count}");
    }
    println!("\nfirst five answers (complete answers first, Proposition 2.1):");
    for answer in answers.iter().take(5) {
        println!("  {}", engine.format_partial(answer));
    }
    println!("\nlast three answers (most incomplete):");
    for answer in answers.iter().rev().take(3) {
        println!("  {}", engine.format_partial(answer));
    }
    Ok(())
}
