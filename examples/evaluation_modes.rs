//! Demonstrates every evaluation mode studied in the paper on one generated
//! workload, and measures the constant-delay behaviour (maximum delay between
//! consecutive answers vs database size).
//!
//! Run with `cargo run --release --example evaluation_modes`.

use omq::prelude::*;
use std::time::Instant;

fn build_workload(researchers: usize) -> (OntologyMediatedQuery, Database) {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .expect("static ontology");
    let query = ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
        .expect("static query");
    let omq = OntologyMediatedQuery::new(ontology, query).expect("well-formed OMQ");
    let mut db = Database::new(omq.data_schema().clone());
    for i in 0..researchers {
        let person = format!("p{i}");
        db.add_named_fact("Researcher", &[person.as_str()]).unwrap();
        if i % 3 != 0 {
            let office = format!("o{i}");
            db.add_named_fact("HasOffice", &[person.as_str(), office.as_str()])
                .unwrap();
            if i % 2 == 0 {
                let building = format!("b{}", i % 10);
                db.add_named_fact("InBuilding", &[office.as_str(), building.as_str()])
                    .unwrap();
            }
        }
    }
    (omq, db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("size      preprocess(µs)  answers  mean delay(ns)  max delay(ns)");
    for researchers in [1_000usize, 4_000, 16_000] {
        let (omq, db) = build_workload(researchers);
        let start = Instant::now();
        let engine = OmqEngine::preprocess(&omq, &db)?;
        // The cursor's own preprocessing (Algorithm 1's trees lists) also
        // counts as preprocessing; the delay is measured between `next()`s.
        let stream = engine.answers(Semantics::MinimalPartial)?;
        let preprocess = start.elapsed().as_micros();

        let mut count = 0usize;
        let mut last = Instant::now();
        let mut max_delay = 0u128;
        let mut total_delay = 0u128;
        for _answer in stream {
            let now = Instant::now();
            let delay = now.duration_since(last).as_nanos();
            last = now;
            count += 1;
            total_delay += delay;
            max_delay = max_delay.max(delay);
        }
        println!(
            "{researchers:<8}  {preprocess:<14}  {count:<7}  {:<14}  {max_delay}",
            total_delay / count.max(1) as u128
        );
    }

    // The other evaluation modes on the smallest workload.
    let (omq, db) = build_workload(1_000);
    let engine = OmqEngine::preprocess(&omq, &db)?;

    // All-testing: constant time per candidate after linear preprocessing.
    let tester = engine.all_tester()?;
    let answers: Vec<Answer> = engine.answers(Semantics::Complete)?.collect();
    let first = answers[0].as_complete().expect("complete semantics");
    let hit: Vec<Value> = first.iter().map(|&c| Value::Const(c)).collect();
    println!("\nall-testing a true answer:  {}", tester.test(&hit)?);

    // Single-testing of a partial answer.
    let candidate = Answer::Partial(engine.parse_partial(&["p1", "o1", "*"])?);
    println!(
        "single-testing (p1, o1, *) as a minimal partial answer: {}",
        engine.test(&candidate)?
    );

    // Brute-force baseline agreement on a small instance.
    let (omq_small, db_small) = build_workload(100);
    let engine_small = OmqEngine::preprocess(&omq_small, &db_small)?;
    let brute = BruteForce::new(&omq_small, &db_small, &ChaseConfig::default())?;
    println!(
        "\nbaseline agreement on 100 researchers: engine={} answers, baseline={} answers",
        engine_small.answers(Semantics::MinimalPartial)?.count(),
        brute.minimal_partial().len()
    );
    Ok(())
}
