//! The network front end: an in-process `omq-server` on an ephemeral
//! loopback port, driven by the blocking wire client.
//!
//! Everything the in-process serving layer guarantees survives the wire:
//! queries register over the protocol, commits are transactional and
//! advance the store epoch, cursors page answers in `O(k)` per fetch, and
//! a cursor opened at a pinned snapshot keeps replaying that epoch no
//! matter what commits after it.
//!
//! Run with `cargo run --example server_client`.

use omq::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // An empty engine behind a TCP listener on an ephemeral port: the OS
    // picks the port, `local_addr` reports it.
    let server = Server::start(ServingEngine::new(1), ServerConfig::default())?;
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())?;

    // Register the running example's OMQ — ontology and query travel as
    // text and are parsed, classified and compiled server-side.
    let id = client.register_query(
        "offices",
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
        "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)",
    )?;
    println!("registered query `offices` (id {id})");

    // Commit a batch of facts.  Registration merged the query's schema
    // into the store (one epoch), so this commit lands at the next one.
    let commit = client.commit(vec![
        TxnOp::Insert {
            relation: "Researcher".into(),
            tuple: vec!["mary".into()],
        },
        TxnOp::Insert {
            relation: "Researcher".into(),
            tuple: vec!["mike".into()],
        },
        TxnOp::Insert {
            relation: "HasOffice".into(),
            tuple: vec!["mary".into(), "room1".into()],
        },
        TxnOp::Insert {
            relation: "InBuilding".into(),
            tuple: vec!["room1".into(), "main1".into()],
        },
    ])?;
    println!(
        "committed {} facts at epoch {}",
        commit.new_facts, commit.epoch
    );

    // Page the answers: each fetch costs O(k) server-side after the
    // linear preprocessing, and the aggregate paths never materialise.
    let count = client.count(QueryTarget::Id(id), Semantics::MinimalPartial, None)?;
    let cursor = client.open_cursor(
        QueryTarget::Name("offices".into()),
        Semantics::MinimalPartial,
        None,
    )?;
    println!(
        "cursor pinned at epoch {}, {} answers to page:",
        cursor.epoch, count.count
    );
    let mut pages = 0;
    loop {
        let page = client.fetch(cursor, 2)?;
        pages += 1;
        for answer in &page.answers {
            println!("    ({})", answer.join(", "));
        }
        if page.done {
            break;
        }
    }
    println!("drained in {pages} pages of k = 2");
    client.close_cursor(cursor)?;

    // Epochs advance commit by commit, and a pinned snapshot keeps
    // answering at its epoch after later commits.
    let pinned = client.pin()?;
    let later = client.insert_all("Researcher", [vec!["erika"]])?;
    assert!(later.epoch > pinned.epoch, "commits advance the epoch");
    let frozen = client.count(
        QueryTarget::Id(id),
        Semantics::MinimalPartial,
        Some(pinned.handle),
    )?;
    let head = client.count(QueryTarget::Id(id), Semantics::MinimalPartial, None)?;
    assert_eq!(frozen.count, count.count, "the pinned view is frozen");
    assert_eq!(head.count, count.count + 1, "the head sees the new fact");
    println!(
        "epoch {} -> {}: pinned view still {} answers, head {}",
        pinned.epoch, later.epoch, frozen.count, head.count
    );
    client.release(pinned)?;

    client.bye()?;
    server.shutdown();
    Ok(())
}
