//! Quickstart: the running example of the paper (Examples 1.1 and 2.2).
//!
//! Run with `cargo run --example quickstart`.

use omq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ontology: every researcher has an office, offices are offices, and
    // every office is in some building.
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )?;
    let query = ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")?;
    let omq = OntologyMediatedQuery::new(ontology, query)?;
    println!("ontology is guarded: {}", omq.is_guarded());
    println!("ontology is ELI:     {}", omq.is_eli());
    println!("query classification: {:?}", omq.classify());

    // The database of Example 1.1: mike has no listed office, john's office
    // has no listed building.
    let db = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["mary"])
        .fact("Researcher", ["john"])
        .fact("Researcher", ["mike"])
        .fact("HasOffice", ["mary", "room1"])
        .fact("HasOffice", ["john", "room4"])
        .fact("InBuilding", ["room1", "main1"])
        .build()?;

    // Linear-time preprocessing: the query-directed chase.
    let engine = OmqEngine::preprocess(&omq, &db)?;
    println!(
        "\npreprocessing: {} input facts -> {} chased facts in {} µs",
        engine.stats().input_facts,
        engine.stats().chased_facts,
        engine.stats().chase_micros
    );

    // One lazy cursor API over all three semantics: `answers(Semantics)`
    // returns an `Iterator<Item = Answer>` with constant work per `next()`.
    println!("\ncomplete (certain) answers:");
    for answer in engine.answers(Semantics::Complete)? {
        println!("  {}", engine.format_answer(&answer));
    }

    println!("\nminimal partial answers (single wildcard, Algorithm 1):");
    for answer in engine.answers(Semantics::MinimalPartial)? {
        println!("  {}", engine.format_answer(&answer));
    }

    println!("\nminimal partial answers with multi-wildcards (Algorithm 2):");
    for answer in engine.answers(Semantics::MinimalPartialMulti)? {
        println!("  {}", engine.format_answer(&answer));
    }

    // Early termination: the first answer of a stream costs O(1) beyond the
    // preprocessing, however large the database.
    if let Some(first) = engine.answers(Semantics::MinimalPartial)?.next() {
        println!(
            "\nfirst partial answer off a fresh cursor: {}",
            engine.format_answer(&first)
        );
    }

    // Single-testing (Theorem 3.1).
    println!("\nsingle tests:");
    println!(
        "  (mary, room1, main1) complete?  {}",
        engine.test_complete_names(&["mary", "room1", "main1"])?
    );
    let candidate = Answer::Partial(engine.parse_partial(&["john", "room4", "*"])?);
    println!(
        "  (john, room4, *) minimal partial?  {}",
        engine.test(&candidate)?
    );
    Ok(())
}
