//! Quickstart: the running example of the paper (Examples 1.1 and 2.2),
//! served through the session API — a `ServingEngine` owning a long-lived
//! `Store` plus a catalogue of registered queries.
//!
//! Run with `cargo run --example quickstart`.

use omq::prelude::*;

fn main() -> omq::Result<()> {
    // The ontology: every researcher has an office, offices are offices, and
    // every office is in some building.
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )?;
    let query = ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")?;
    let omq = OntologyMediatedQuery::new(ontology, query)?;
    println!("ontology is guarded: {}", omq.is_guarded());
    println!("ontology is ELI:     {}", omq.is_eli());
    println!("query classification: {:?}", omq.classify());

    // The session: registering the query compiles its plan exactly once and
    // merges its data schema into the engine's store.
    let mut engine = ServingEngine::new(2);
    let offices = engine.register_query("offices", &omq)?;

    // The database of Example 1.1, ingested as one atomic transaction: mike
    // has no listed office, john's office has no listed building.
    let receipt = engine.register_data(
        Txn::new()
            .insert("Researcher", ["mary"])
            .insert("Researcher", ["john"])
            .insert("Researcher", ["mike"])
            .insert("HasOffice", ["mary", "room1"])
            .insert("HasOffice", ["john", "room4"])
            .insert("InBuilding", ["room1", "main1"]),
    )?;
    println!(
        "\ningested {} facts in one commit -> store epoch {}",
        receipt.new_facts, receipt.epoch
    );

    // Serve the three semantics off the store head.  Each request pins a
    // snapshot, runs the linear-time preprocessing (query-directed chase),
    // and enumerates through the constant-delay cursor.
    let snapshot = engine.snapshot();
    for (title, semantics) in [
        ("complete (certain) answers", Semantics::Complete),
        (
            "minimal partial answers (single wildcard, Algorithm 1)",
            Semantics::MinimalPartial,
        ),
        (
            "minimal partial answers with multi-wildcards (Algorithm 2)",
            Semantics::MinimalPartialMulti,
        ),
    ] {
        println!("\n{title}:");
        for answer in engine.serve_stream(&Request::new(offices, semantics))? {
            println!(
                "  {}",
                answer.display_with(|c| snapshot.const_name(c).to_owned())
            );
        }
    }

    // Snapshot isolation: pin the current epoch, then commit more data.  The
    // pinned snapshot keeps answering exactly as before; fresh requests see
    // the new facts through the same compiled plan.
    let pinned = engine.snapshot();
    engine.register_data(
        Txn::new()
            .insert("HasOffice", ["mike", "room9"])
            .insert("InBuilding", ["room9", "main1"]),
    )?;
    let old = engine.serve_one(&Request::new(offices, Semantics::Complete).at(pinned.clone()))?;
    let new = engine.serve_one(&Request::new(offices, Semantics::Complete))?;
    println!(
        "\nafter a concurrent commit: pinned snapshot (epoch {}) still has {} complete answer(s), \
         the head (epoch {}) has {}",
        pinned.epoch(),
        old.answers.len(),
        engine.epoch(),
        new.answers.len()
    );

    // Early termination: the first answer of a stream costs O(1) beyond the
    // preprocessing, however large the store.  (Rendering uses a snapshot of
    // the same epoch as the stream — the pre-commit snapshot's interner does
    // not know the constants committed after it.)
    let head = engine.snapshot();
    if let Some(first) = engine
        .serve_stream(&Request::new(offices, Semantics::MinimalPartial))?
        .next()
    {
        println!(
            "\nfirst partial answer off a fresh cursor: {}",
            first.display_with(|c| head.const_name(c).to_owned())
        );
    }

    // Single-testing (Theorem 3.1) through the plan layer, evaluated over a
    // pinned snapshot without recomputing any index.
    let instance = engine.plan(offices)?.execute(&pinned)?;
    println!("\nsingle tests (against the pinned snapshot):");
    println!(
        "  (mary, room1, main1) complete?  {}",
        instance.test_complete_names(&["mary", "room1", "main1"])?
    );
    let candidate = Answer::Partial(instance.parse_partial(&["john", "room4", "*"])?);
    println!(
        "  (john, room4, *) minimal partial?  {}",
        instance.test(&candidate)?
    );
    Ok(())
}
