//! Property tests of the unified answer cursor: laziness, prefix
//! equivalence, shard soundness, ownership, and the serving-layer window.
//!
//! The contract under test (`PreparedInstance::answers(Semantics)`):
//!
//! * **prefix property** — `answers(sem)?.take(k)` yields exactly the first
//!   `k` answers of the full enumeration, for every `k` and every semantics,
//!   on sequential *and* sharded (`execute_parallel`) instances;
//! * **batch equivalence** — `next_batch(k)` produces exactly the answers of
//!   `k` successive `next()` calls, under arbitrary mid-stream interleaving
//!   of the pull styles (`next` / `next_batch` / `fill`);
//! * **wrapper equivalence** — the deprecated `enumerate_*` wrappers return
//!   the same sequences as draining the cursor;
//! * **drop soundness** — a stream dropped mid-way (including before the
//!   cross-shard merge flush) has no effect on the instance or later streams;
//! * **ownership** — a stream outlives the `PreparedInstance` it came from;
//! * **serving window** — `limit`/`offset` pagination through
//!   `ServingEngine` reassembles the unbounded response exactly.

use omq::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// Same ontology, but only the building is asked for: researchers without
/// any listed office/building answer with the all-star tuple `(*)`, whose
/// minimality is a cross-shard property — the stress case for the merge
/// filter folded into the cursor.
fn building_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query = ConjunctiveQuery::parse("q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// A random office database assembled from independent researcher/office/
/// building wirings; disjoint constant ranges per "island" make the Gaifman
/// component count scale with the input.
#[derive(Debug, Clone)]
struct RandomDb {
    researchers: Vec<usize>,
    offices: Vec<(usize, usize)>,
    buildings: Vec<(usize, usize)>,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        prop::collection::vec(0..10usize, 1..10),
        prop::collection::vec((0..10usize, 0..6usize), 0..8),
        prop::collection::vec((0..6usize, 0..4usize), 0..6),
    )
        .prop_map(|(researchers, offices, buildings)| RandomDb {
            researchers,
            offices,
            buildings,
        })
}

impl RandomDb {
    fn to_database(&self, schema: &Schema) -> Database {
        let mut builder = Database::builder(schema.clone());
        for &r in &self.researchers {
            builder = builder.fact("Researcher", [format!("p{r}")]);
        }
        for &(r, o) in &self.offices {
            builder = builder.fact("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        for &(o, b) in &self.buildings {
            builder = builder.fact("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
        builder.build().unwrap()
    }
}

/// Full drain of a stream, asserting clean termination.
fn drain(instance: &PreparedInstance, semantics: Semantics) -> Vec<Answer> {
    let mut stream = instance.answers(semantics).unwrap();
    let answers: Vec<Answer> = (&mut stream).collect();
    assert!(stream.error().is_none(), "stream ended with an error");
    assert_eq!(stream.emitted(), answers.len());
    // A drained stream is fused.
    assert!(stream.next().is_none());
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The prefix property on all three semantics, sequential and sharded:
    /// `take(k)` equals the first k of the full enumeration, and the
    /// deprecated wrappers agree with the drained cursor.
    #[test]
    fn take_k_is_a_prefix_of_the_full_enumeration(
        random_db in db_strategy(),
        threads in 1..5usize,
        ks in prop::collection::vec(0..12usize, 3),
    ) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let db = random_db.to_database(omq.data_schema());
            for instance in [plan.execute(&db).unwrap(), plan.execute_parallel(&db, threads).unwrap()] {
                for semantics in Semantics::ALL {
                    let full = drain(&instance, semantics);
                    // Every yielded answer is of the stream's variant.
                    for answer in &full {
                        prop_assert_eq!(answer.semantics(), semantics);
                    }
                    for &k in &ks {
                        let prefix: Vec<Answer> = instance
                            .answers(semantics)
                            .unwrap()
                            .take(k)
                            .collect();
                        prop_assert_eq!(
                            &prefix[..],
                            &full[..k.min(full.len())],
                            "take({}) is not a prefix ({:?}, {} shards)",
                            k, semantics, instance.shard_count()
                        );
                    }
                }
            }
        }
    }

    /// `next_batch(k)` ≡ `k × next()`: a random interleaving of `next()`,
    /// `next_batch(k)` and `fill` pulls reproduces the plain drain exactly —
    /// same answers, same order — on all three semantics, sequential and
    /// sharded, with batch boundaries landing at arbitrary offsets
    /// (mid-shard, across shard handovers, into the merge flush).
    #[test]
    fn next_batch_interleaves_with_next(
        random_db in db_strategy(),
        threads in 1..5usize,
        schedule in prop::collection::vec((0..3usize, 1..5usize), 1..24),
    ) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let db = random_db.to_database(omq.data_schema());
            for instance in [plan.execute(&db).unwrap(), plan.execute_parallel(&db, threads).unwrap()] {
                for semantics in Semantics::ALL {
                    let full = drain(&instance, semantics);
                    let mut stream = instance.answers(semantics).unwrap();
                    let mut got: Vec<Answer> = Vec::new();
                    'pulls: for &(style, k) in schedule.iter().cycle().take(schedule.len() * 8) {
                        match style {
                            0 => match stream.next() {
                                Some(answer) => got.push(answer),
                                None => break 'pulls,
                            },
                            1 => {
                                // The prefix invariant holds mid-stream,
                                // not just at exhaustion.
                                prop_assert_eq!(&got[..], &full[..got.len()]);
                                if stream.next_batch(&mut got, k) == 0 {
                                    break 'pulls;
                                }
                            }
                            _ => {
                                let mut buf = vec![Answer::Complete(Vec::new()); k];
                                let n = stream.fill(&mut buf);
                                got.extend(buf.into_iter().take(n));
                                if n < k {
                                    break 'pulls;
                                }
                            }
                        }
                    }
                    // Whatever the schedule left unpulled, finish batched;
                    // the complete drains must agree answer-for-answer.
                    while stream.next_batch(&mut got, 7) > 0 {}
                    prop_assert_eq!(
                        &got[..],
                        &full[..],
                        "batched drain diverges ({:?}, {} shards)",
                        semantics,
                        instance.shard_count()
                    );
                    prop_assert_eq!(stream.emitted(), full.len());
                    prop_assert!(stream.error().is_none());
                }
            }
        }
    }

    /// Sharded streams and sequential streams agree as answer multisets —
    /// the merge and Boolean dedup folded into the cursor are sound.
    #[test]
    fn sharded_streams_agree_with_sequential(random_db in db_strategy(), threads in 2..6usize) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let db = random_db.to_database(omq.data_schema());
            let sequential = plan.execute(&db).unwrap();
            let parallel = plan.execute_parallel(&db, threads).unwrap();
            for semantics in Semantics::ALL {
                let count = |instance: &PreparedInstance| -> BTreeMap<Answer, usize> {
                    let mut m = BTreeMap::new();
                    for a in drain(instance, semantics) {
                        *m.entry(a).or_default() += 1;
                    }
                    m
                };
                prop_assert_eq!(
                    count(&sequential),
                    count(&parallel),
                    "{:?} diverges across {} shards",
                    semantics,
                    parallel.shard_count()
                );
            }
        }
    }

    /// Dropping a stream mid-way (before shard boundaries, before the merge
    /// flush) never panics and leaves the instance fully usable.
    #[test]
    fn drop_mid_stream_is_sound(random_db in db_strategy(), threads in 1..5usize, cut in 0..6usize) {
        let omq = building_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let db = random_db.to_database(omq.data_schema());
        let instance = plan.execute_parallel(&db, threads).unwrap();
        for semantics in Semantics::ALL {
            let full = drain(&instance, semantics);
            let mut stream = instance.answers(semantics).unwrap();
            for _ in 0..cut {
                if stream.next().is_none() {
                    break;
                }
            }
            drop(stream);
            // The instance is untouched: a fresh stream reproduces the
            // full sequence.
            prop_assert_eq!(drain(&instance, semantics), full);
        }
    }

    /// `for_each_answer` honours `ControlFlow::Break` and reports the number
    /// of delivered answers.
    #[test]
    fn for_each_answer_breaks_early(random_db in db_strategy(), stop_after in 1..5usize) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let db = random_db.to_database(omq.data_schema());
        let instance = plan.execute(&db).unwrap();
        let full = drain(&instance, Semantics::MinimalPartial);
        let mut seen: Vec<Answer> = Vec::new();
        let delivered = instance
            .for_each_answer(Semantics::MinimalPartial, |answer| {
                seen.push(answer);
                if seen.len() >= stop_after {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            })
            .unwrap();
        prop_assert_eq!(delivered, seen.len());
        prop_assert!(seen.len() <= stop_after);
        prop_assert_eq!(&seen[..], &full[..seen.len()]);
    }

    /// Serving-layer pagination: stepping `offset` by `limit`-sized pages
    /// reassembles the unbounded response exactly, and `truncated` is the
    /// correct continuation signal.
    #[test]
    fn serving_pagination_reassembles(random_db in db_strategy(), page_size in 1..5usize) {
        let omq = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("office", &omq).unwrap();
        let db = std::sync::Arc::new(random_db.to_database(omq.data_schema()));
        let full = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial).with_database(db.clone()))
            .unwrap();
        prop_assert!(!full.truncated);
        let AnswerSet::Partial(full) = full.answers else {
            panic!("semantics mismatch");
        };
        let mut paged: Vec<PartialTuple> = Vec::new();
        let mut offset = 0usize;
        loop {
            let page = engine
                .serve_one(
                    &Request::new(id, Semantics::MinimalPartial)
                        .with_database(db.clone())
                        .with_offset(offset)
                        .with_limit(page_size),
                )
                .unwrap();
            let AnswerSet::Partial(answers) = page.answers else {
                panic!("semantics mismatch");
            };
            prop_assert!(answers.len() <= page_size);
            let done = !page.truncated;
            offset += answers.len();
            paged.extend(answers);
            if done {
                break;
            }
        }
        prop_assert_eq!(paged, full);
    }
}

/// Answer streams own their data: they survive the `PreparedInstance` (and
/// the `OmqEngine`) they came from.
#[test]
fn streams_outlive_their_instance() {
    let omq = office_omq();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["mary"])
        .fact("Researcher", ["john"])
        .fact("HasOffice", ["mary", "room1"])
        .fact("InBuilding", ["room1", "main1"])
        .build()
        .unwrap();

    let make_stream = |semantics: Semantics| -> AnswerStream {
        let instance = plan.execute(&db).unwrap();
        let mut stream = instance.answers(semantics).unwrap();
        // Pull one answer while the instance is alive...
        let _ = stream.next();
        // ...then drop the instance; the stream keeps going.
        drop(instance);
        stream
    };
    for semantics in Semantics::ALL {
        let instance = plan.execute(&db).unwrap();
        let expected = instance.answers(semantics).unwrap().count();
        let mut stream = make_stream(semantics);
        let rest = stream.by_ref().count();
        assert!(stream.error().is_none());
        assert_eq!(stream.emitted(), expected);
        assert_eq!(rest + 1, expected.max(1));
    }
}

/// The unified single-tester agrees with the streams it mirrors, across
/// shards.
#[test]
fn unified_test_confirms_streamed_answers() {
    let omq = building_omq();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["ada"]) // chase-only component
        .fact("Researcher", ["bob"])
        .fact("HasOffice", ["bob", "lab"])
        .fact("InBuilding", ["lab", "west"])
        .build()
        .unwrap();
    for instance in [
        plan.execute(&db).unwrap(),
        plan.execute_parallel(&db, 2).unwrap(),
    ] {
        for semantics in Semantics::ALL {
            for answer in instance.answers(semantics).unwrap() {
                assert!(
                    instance.test(&answer).unwrap(),
                    "{answer:?} not confirmed on {} shard(s)",
                    instance.shard_count()
                );
            }
        }
        // A non-minimal candidate is rejected.
        let starred = Answer::Partial(instance.parse_partial(&["*"]).unwrap());
        assert!(!instance.test(&starred).unwrap());
    }
}

/// Boolean queries through the cursor: the empty tuple appears exactly once,
/// on every semantics, however many satisfiable shards exist.
#[test]
fn boolean_dedup_inside_the_cursor() {
    let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
    let query = ConjunctiveQuery::parse("q() :- HasOffice(x, y)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["a"])
        .fact("Researcher", ["b"])
        .fact("Researcher", ["c"])
        .build()
        .unwrap();
    let parallel = plan.execute_parallel(&db, 3).unwrap();
    assert_eq!(parallel.shard_count(), 3);
    for semantics in Semantics::ALL {
        let answers: Vec<Answer> = parallel.answers(semantics).unwrap().collect();
        assert_eq!(answers.len(), 1, "{semantics:?}");
        assert!(answers[0].is_empty());
        // Laziness: the very first pull already yields the tuple.
        assert!(parallel.answers(semantics).unwrap().next().is_some());
    }
    // Unsatisfiable case: empty streams everywhere.
    let empty_db = Database::new(omq.data_schema().clone());
    let instance = plan.execute_parallel(&empty_db, 3).unwrap();
    for semantics in Semantics::ALL {
        assert_eq!(instance.answers(semantics).unwrap().count(), 0);
    }
}

/// Intractable queries fail at `answers()` (stream construction), not
/// mid-stream.
#[test]
fn intractable_queries_fail_at_stream_construction() {
    let ontology = Ontology::new();
    let query = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let plan = QueryPlan::compile(&omq).unwrap();
    let mut s = Schema::new();
    s.add_relation("R", 2).unwrap();
    s.add_relation("S", 2).unwrap();
    let db = Database::builder(s)
        .fact("R", ["a", "b"])
        .fact("S", ["b", "c"])
        .build()
        .unwrap();
    let instance = plan.execute(&db).unwrap();
    for semantics in Semantics::ALL {
        assert!(instance.answers(semantics).is_err(), "{semantics:?}");
    }
}
