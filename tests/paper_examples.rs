//! End-to-end integration tests reproducing the worked examples of the paper.

// The deprecated `enumerate_*`/`stream_*`/`test_minimal_*` wrappers are
// exercised on purpose: they are thin shims over the `answers()` cursor now,
// and this suite is their regression harness (the cursor itself is covered
// by `tests/answer_stream.rs`).
#![allow(deprecated)]

use omq::prelude::*;

fn office_db(omq: &OntologyMediatedQuery) -> Database {
    Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["mary"])
        .fact("Researcher", ["john"])
        .fact("Researcher", ["mike"])
        .fact("HasOffice", ["mary", "room1"])
        .fact("HasOffice", ["john", "room4"])
        .fact("InBuilding", ["room1", "main1"])
        .build()
        .unwrap()
}

fn office_ontology_text() -> &'static str {
    "Researcher(x) -> exists y. HasOffice(x, y)\n\
     HasOffice(x, y) -> Office(y)\n\
     Office(x) -> exists y. InBuilding(x, y)"
}

/// Example 1.1: the minimal partial answers of the running example.
#[test]
fn example_1_1_minimal_partial_answers() {
    let ontology = Ontology::parse(office_ontology_text()).unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = office_db(&omq);
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();

    let rendered: std::collections::BTreeSet<String> = engine
        .enumerate_minimal_partial()
        .unwrap()
        .iter()
        .map(|t| engine.format_partial(t))
        .collect();
    let expected: std::collections::BTreeSet<String> =
        ["(mary,room1,main1)", "(john,room4,*)", "(mike,*,*)"]
            .into_iter()
            .map(str::to_owned)
            .collect();
    assert_eq!(rendered, expected);

    // The traditional certain answers are a subset of the minimal partial
    // answers (Q(D) ⊆ Q(D)*).
    let complete: Vec<String> = engine
        .enumerate_complete()
        .unwrap()
        .iter()
        .map(|a| engine.format_complete(a))
        .collect();
    assert_eq!(complete, vec!["(mary,room1,main1)".to_owned()]);
}

/// Example 2.2 (first part): the multi-wildcard answers of the running
/// example.
#[test]
fn example_2_2_multi_wildcard_answers() {
    let ontology = Ontology::parse(office_ontology_text()).unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = office_db(&omq);
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let rendered: std::collections::BTreeSet<String> = engine
        .enumerate_minimal_partial_multi()
        .unwrap()
        .iter()
        .map(|t| engine.format_multi(t))
        .collect();
    let expected: std::collections::BTreeSet<String> =
        ["(mary,room1,main1)", "(john,room4,*1)", "(mike,*1,*2)"]
            .into_iter()
            .map(str::to_owned)
            .collect();
    assert_eq!(rendered, expected);
}

/// Example 2.2 (second part): the `Prof` / `LargeOffice` extension `Q'` where
/// the same anonymous office occurs twice in a minimal answer.
#[test]
fn example_2_2_prof_extension() {
    let ontology = Ontology::parse(&format!(
        "{}\nProf(x), HasOffice(x, y) -> LargeOffice(y)",
        office_ontology_text()
    ))
    .unwrap();
    let query = ConjunctiveQuery::parse(
        "q(x1, x2, x3, x4) :- HasOffice(x1, x2), LargeOffice(x2), HasOffice(x1, x3), InBuilding(x3, x4)",
    )
    .unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let mut db = office_db(&omq);
    db.add_named_fact("Prof", &["mike"]).unwrap();
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let rendered: std::collections::BTreeSet<String> = engine
        .enumerate_minimal_partial_multi()
        .unwrap()
        .iter()
        .map(|t| engine.format_multi(t))
        .collect();
    // The paper: Q'(D')^W contains (mike, *1, *1, *2) but not the
    // non-minimal (mike, *1, *2, *3).
    assert!(
        rendered.contains("(mike,*1,*1,*2)"),
        "answers: {rendered:?}"
    );
    assert!(!rendered.contains("(mike,*1,*2,*3)"));
    // Single-testing agrees.
    let minimal = MultiTuple(vec![
        MultiValue::Const(engine.resolve(&["mike"]).unwrap()[0]),
        MultiValue::Wild(1),
        MultiValue::Wild(1),
        MultiValue::Wild(2),
    ]);
    assert!(engine.test_minimal_partial_multi(&minimal).unwrap());
    let non_minimal = MultiTuple(vec![
        MultiValue::Const(engine.resolve(&["mike"]).unwrap()[0]),
        MultiValue::Wild(1),
        MultiValue::Wild(2),
        MultiValue::Wild(3),
    ]);
    assert!(!engine.test_minimal_partial_multi(&non_minimal).unwrap());
}

/// Example 2.2 (third part): the `OfficeMate` extension `Q''` where two named
/// people share an anonymous office/building.
#[test]
fn example_2_2_office_mate_extension() {
    let ontology = Ontology::parse(&format!(
        "{}\nOfficeMate(x, y) -> exists z. HasOffice(x, z), HasOffice(y, z)",
        office_ontology_text()
    ))
    .unwrap();
    let query = ConjunctiveQuery::parse(
        "q(x1, x2, x3, x4) :- HasOffice(x1, x3), HasOffice(x2, x4), InBuilding(x3, w), InBuilding(x4, w)",
    )
    .unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let mut db = office_db(&omq);
    db.add_named_fact("OfficeMate", &["mary", "mike"]).unwrap();
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();

    // Q'' is acyclic but not free-connex acyclic (the quantified building
    // variable connects x3 and x4), so constant-delay enumeration is not
    // available — the engine says so — but single-testing (Theorem 3.1(3))
    // still applies.
    assert!(!omq.classify().free_connex_acyclic);
    assert!(engine.enumerate_minimal_partial_multi().is_err());

    let mary = engine.resolve(&["mary"]).unwrap()[0];
    let mike = engine.resolve(&["mike"]).unwrap()[0];
    // Q''(D'')^W contains (mary, mike, *1, *1): the office mates share an
    // anonymous office and hence a building.
    let shared = MultiTuple(vec![
        MultiValue::Const(mary),
        MultiValue::Const(mike),
        MultiValue::Wild(1),
        MultiValue::Wild(1),
    ]);
    assert!(engine.test_minimal_partial_multi(&shared).unwrap());
    // The brute-force oracle confirms it as well.
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    let rendered: std::collections::BTreeSet<String> = brute
        .minimal_partial_multi()
        .iter()
        .map(|t| t.display_with(|c| brute.chased.const_name(c).to_owned()))
        .collect();
    assert!(
        rendered.contains("(mary,mike,*1,*1)"),
        "answers: {rendered:?}"
    );
}

/// Example 3.5: rewriting an OMQ into an equivalent self-join-free OMQ by
/// introducing copies of the relation symbols preserves the answers.
#[test]
fn example_3_5_self_join_free_rewriting() {
    // Original: a query with a self join.
    let ontology = Ontology::parse("A(x) -> exists y. R(x, y)").unwrap();
    let query = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), R(y, z)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    assert!(!omq.query().is_self_join_free());

    // Rewritten: each atom gets its own fresh symbol, linked by TGDs in both
    // directions.
    let ontology2 = Ontology::parse(
        "A(x) -> exists y. R(x, y)\n\
         R(x, y) -> R1(x, y)\n\
         R1(x, y) -> R(x, y)\n\
         R(x, y) -> R2(x, y)\n\
         R2(x, y) -> R(x, y)",
    )
    .unwrap();
    let query2 = ConjunctiveQuery::parse("q(x, y, z) :- R1(x, y), R2(y, z)").unwrap();
    let omq2 =
        OntologyMediatedQuery::with_data_schema(ontology2, omq.data_schema().clone(), query2)
            .unwrap();
    assert!(omq2.query().is_self_join_free());

    let db = Database::builder(omq.data_schema().clone())
        .fact("A", ["a"])
        .fact("R", ["a", "b"])
        .fact("R", ["b", "c"])
        .build()
        .unwrap();
    let brute1 = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    let brute2 = BruteForce::new(&omq2, &db, &ChaseConfig::default()).unwrap();
    let answers1: std::collections::BTreeSet<String> = brute1
        .minimal_partial()
        .iter()
        .map(|t| t.display_with(|c| brute1.chased.const_name(c).to_owned()))
        .collect();
    let answers2: std::collections::BTreeSet<String> = brute2
        .minimal_partial()
        .iter()
        .map(|t| t.display_with(|c| brute2.chased.const_name(c).to_owned()))
        .collect();
    assert_eq!(answers1, answers2);
}

/// Example C.6: a non-acyclic, self-join-free OMQ from (G, CQ) that is
/// nevertheless easy because the ontology makes it equivalent to an atomic
/// query — the triangle exists below every A-element.
#[test]
fn example_c_6_guarded_triangle_is_easy() {
    let ontology = Ontology::parse("A(x) -> exists y, z. R(x, y), S(y, z), T(z, x)").unwrap();
    let query = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y, z), T(z, x)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    assert!(!omq.classify().acyclic);
    let db = Database::builder(omq.data_schema().clone())
        .fact("A", ["a"])
        .fact("A", ["b"])
        .build()
        .unwrap();
    // Q ≡ (∅, S, A(x)): every A-element is an answer.
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    let answers = brute.complete_answers();
    assert_eq!(answers.len(), 2);
}

/// Disconnected queries (as used in Proposition 4.5's construction, where the
/// extra answer variables live in their own connected component) are handled
/// by the engine: the answer set is the cross product of the component
/// answers.
#[test]
fn disconnected_queries_are_supported() {
    let ontology = Ontology::parse("A1(x) -> A2(x)\nB1(x) -> B2(x)\nC1(x) -> C2(x)").unwrap();
    let query = ConjunctiveQuery::parse(
        "q(x1, y1, x2, y2, z2) :- L(x1, y1), A1(x1), A2(x2), B2(y2), C2(z2)",
    )
    .unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("L", ["a", "b"])
        .fact("L", ["a", "c"])
        .fact("A1", ["a"])
        .fact("B1", ["b"])
        .fact("C1", ["c"])
        .build()
        .unwrap();
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let fast: std::collections::BTreeSet<String> = engine
        .enumerate_complete()
        .unwrap()
        .iter()
        .map(|a| engine.format_complete(a))
        .collect();
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    let slow: std::collections::BTreeSet<String> = brute
        .complete_answers()
        .iter()
        .map(|a| {
            let names: Vec<&str> = a
                .iter()
                .map(|v| match v {
                    Value::Const(c) => brute.chased.const_name(*c),
                    Value::Null(_) => unreachable!(),
                })
                .collect();
            format!("({})", names.join(","))
        })
        .collect();
    assert_eq!(fast, slow);
    assert!(!fast.is_empty());
}

/// Proposition 2.1: complete answers can always be produced first.
#[test]
fn proposition_2_1_complete_answers_first() {
    let ontology = Ontology::parse(office_ontology_text()).unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = office_db(&omq);
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let ordered = engine.enumerate_minimal_partial_complete_first().unwrap();
    let first_wildcard = ordered.iter().position(|t| !t.is_complete());
    let complete_count = ordered.iter().filter(|t| t.is_complete()).count();
    assert_eq!(complete_count, engine.enumerate_complete().unwrap().len());
    if let Some(cut) = first_wildcard {
        assert!(ordered[..cut].iter().all(PartialTuple::is_complete));
        assert!(ordered[cut..].iter().all(|t| !t.is_complete()));
    }
}

/// Lemma 2.3 / Lemma 3.2: evaluating over the query-directed chase gives the
/// same minimal partial answers as evaluating over the (bounded) full chase.
#[test]
fn lemma_3_2_query_directed_chase_preserves_answers() {
    let ontology = Ontology::parse(office_ontology_text()).unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = office_db(&omq);

    let chased = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
    let over_qchase = omq_core::baseline::cq_minimal_partial(omq.query(), &chased.database);
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    let over_full = brute.minimal_partial();

    let render = |answers: &[PartialTuple], db: &Database| -> std::collections::BTreeSet<String> {
        answers
            .iter()
            .map(|t| t.display_with(|c| db.const_name(c).to_owned()))
            .collect()
    };
    assert_eq!(
        render(&over_qchase, &chased.database),
        render(&over_full, &brute.chased)
    );
}
