//! Property-based equivalence of the shared-nothing parallel pipeline:
//! `QueryPlan::execute_parallel` over random databases and thread counts
//! must produce, on all three answer semantics, the same answer *multiset*
//! as the sequential `QueryPlan::execute` — including the 1-thread
//! fall-back, the single-component case, and databases with (far) more
//! Gaifman components than threads.
//!
//! Two OMQs are exercised: the full office query (whose answers always
//! carry a constant, so shard-local minimality is global) and a
//! building-projection query whose answer can degenerate to the all-star
//! tuple `(*)` — the one case where minimality is a cross-shard property
//! and the merge filter has to drop or keep wildcard-only answers based on
//! what *other* shards produced.

// The deprecated `enumerate_*`/`stream_*`/`test_minimal_*` wrappers are
// exercised on purpose: they are thin shims over the `answers()` cursor now,
// and this suite is their regression harness (the cursor itself is covered
// by `tests/answer_stream.rs`).
#![allow(deprecated)]

use omq::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// Same ontology, but only the building is asked for: researchers without
/// any listed office/building answer with the all-star tuple `(*)`.
fn building_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query = ConjunctiveQuery::parse("q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// A random office database assembled from independent researcher/office/
/// building wirings; disjoint constant ranges per "island" make the
/// Gaifman component count scale with the input, so shard counts above,
/// below and equal to the component count all occur.
#[derive(Debug, Clone)]
struct RandomDb {
    researchers: Vec<usize>,
    offices: Vec<(usize, usize)>,
    buildings: Vec<(usize, usize)>,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        prop::collection::vec(0..10usize, 1..10),
        prop::collection::vec((0..10usize, 0..6usize), 0..8),
        prop::collection::vec((0..6usize, 0..4usize), 0..6),
    )
        .prop_map(|(researchers, offices, buildings)| RandomDb {
            researchers,
            offices,
            buildings,
        })
}

impl RandomDb {
    fn to_database(&self, schema: &Schema) -> Database {
        let mut builder = Database::builder(schema.clone());
        for &r in &self.researchers {
            builder = builder.fact("Researcher", [format!("p{r}")]);
        }
        for &(r, o) in &self.offices {
            builder = builder.fact("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        for &(o, b) in &self.buildings {
            builder = builder.fact("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
        builder.build().unwrap()
    }
}

/// Answer multiset of every semantics, rendered with constant names so the
/// comparison is independent of internal identifiers.
fn answer_multisets(instance: &PreparedInstance) -> [BTreeMap<String, usize>; 3] {
    let mut complete: BTreeMap<String, usize> = BTreeMap::new();
    for a in instance.enumerate_complete().unwrap() {
        *complete.entry(instance.format_complete(&a)).or_default() += 1;
    }
    let mut partial: BTreeMap<String, usize> = BTreeMap::new();
    for t in instance.enumerate_minimal_partial().unwrap() {
        *partial.entry(instance.format_partial(&t)).or_default() += 1;
    }
    let mut multi: BTreeMap<String, usize> = BTreeMap::new();
    for t in instance.enumerate_minimal_partial_multi().unwrap() {
        *multi.entry(instance.format_multi(&t)).or_default() += 1;
    }
    [complete, partial, multi]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel execution equals sequential execution as answer multisets,
    /// on all three semantics, for both OMQ shapes and arbitrary thread
    /// counts (including 1 = fall-back and thread counts exceeding the
    /// component count).
    #[test]
    fn parallel_equals_sequential(random_db in db_strategy(), threads in 1..6usize) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let db = random_db.to_database(omq.data_schema());
            let sequential = plan.execute(&db).unwrap();
            let parallel = plan.execute_parallel(&db, threads).unwrap();
            prop_assert!(parallel.shard_count() <= threads.max(1));
            prop_assert!(parallel.shard_count() <= db.component_count().max(1));
            let seq = answer_multisets(&sequential);
            let par = answer_multisets(&parallel);
            prop_assert_eq!(&seq[0], &par[0], "complete answers diverge");
            prop_assert_eq!(&seq[1], &par[1], "minimal partial answers diverge");
            prop_assert_eq!(&seq[2], &par[2], "multi-wildcard answers diverge");
            // Sharding never changes the chase itself, only its partition.
            prop_assert_eq!(
                sequential.stats().chased_facts,
                parallel.stats().chased_facts
            );
            // Every merged partial answer round-trips through the
            // shard-aware single-tester.
            for t in parallel.enumerate_minimal_partial().unwrap() {
                prop_assert!(parallel.test_minimal_partial(&t).unwrap());
            }
        }
    }

    /// Components ≫ threads: many isolated researchers force every shard to
    /// group several components, and (for the projection query) every shard
    /// produces the same wildcard-only answer, which must be deduplicated
    /// and survive only when no shard owns a better one.
    #[test]
    fn more_components_than_threads(extra in 8..40usize, threads in 2..5usize, building_flag in 0..2usize) {
        let with_building = building_flag == 1;
        let omq = building_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut builder = Database::builder(omq.data_schema().clone());
        for r in 0..extra {
            builder = builder.fact("Researcher", [format!("lone{r}")]);
        }
        if with_building {
            builder = builder
                .fact("HasOffice", ["anchor", "lab"])
                .fact("InBuilding", ["lab", "west"]);
        }
        let db = builder.build().unwrap();
        prop_assert!(db.component_count() > threads);
        let sequential = plan.execute(&db).unwrap();
        let parallel = plan.execute_parallel(&db, threads).unwrap();
        prop_assert_eq!(parallel.shard_count(), threads);
        let seq = answer_multisets(&sequential);
        let par = answer_multisets(&parallel);
        prop_assert_eq!(&seq[1], &par[1]);
        // The expected shape: with a real building the all-star answer is
        // dominated cross-shard; without one it is the unique answer.
        let partial_answers: Vec<String> = par[1].keys().cloned().collect();
        if with_building {
            prop_assert_eq!(partial_answers, vec!["(west)".to_owned()]);
        } else {
            prop_assert_eq!(partial_answers, vec!["(*)".to_owned()]);
        }
    }
}

/// Boolean queries: every satisfiable shard would emit the empty tuple; the
/// merged stream must emit it exactly once.
#[test]
fn boolean_query_is_deduplicated_across_shards() {
    let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
    let query = ConjunctiveQuery::parse("q() :- HasOffice(x, y)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["a"])
        .fact("Researcher", ["b"])
        .fact("Researcher", ["c"])
        .build()
        .unwrap();
    assert_eq!(db.component_count(), 3);
    let parallel = plan.execute_parallel(&db, 3).unwrap();
    assert_eq!(parallel.shard_count(), 3);
    assert_eq!(parallel.enumerate_complete().unwrap(), vec![Vec::new()]);
    let sequential = plan.execute(&db).unwrap();
    assert_eq!(
        sequential.enumerate_complete().unwrap(),
        parallel.enumerate_complete().unwrap()
    );
    // The unsatisfiable case yields no answer from any shard.
    let empty = Database::new(omq.data_schema().clone());
    let parallel = plan.execute_parallel(&empty, 3).unwrap();
    assert!(parallel.enumerate_complete().unwrap().is_empty());
}

/// The 1-shard edge case: a single connected component must take the
/// sequential path unchanged, whatever the thread count.
#[test]
fn single_component_falls_back_to_one_shard() {
    let omq = office_omq();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("HasOffice", ["mary", "room1"])
        .fact("InBuilding", ["room1", "main1"])
        .build()
        .unwrap();
    assert_eq!(db.component_count(), 1);
    let parallel = plan.execute_parallel(&db, 8).unwrap();
    assert_eq!(parallel.shard_count(), 1);
    assert_eq!(parallel.stats().shards, 1);
    // Single-shard instances keep the structure-level APIs.
    assert!(parallel.complete_structure().is_ok());
    let sequential = plan.execute(&db).unwrap();
    assert_eq!(answer_multisets(&sequential), answer_multisets(&parallel));
}
