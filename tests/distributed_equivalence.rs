//! Differential suite for the distributed coordinator/worker path: a
//! cluster run over **real worker processes** must produce, on all three
//! answer semantics, the same answer *multiset* as the in-process parallel
//! pipeline (`QueryPlan::execute_parallel`) and the sequential engine —
//! including the 1-worker degenerate case, skewed shard sizes (one
//! component dwarfing the rest, where the work-stealing queue earns its
//! keep), and a worker killed mid-shard whose work must be reassigned
//! without changing the answers.
//!
//! The worker processes are this very test binary: the coordinator spawns
//! `current_exe() worker_process_entry --exact`, and the
//! [`worker_process_entry`] "test" sees the cluster environment variables
//! and becomes a worker instead of asserting anything.

use omq::cluster::{execute, ClusterConfig, ClusterStats, Kill, WorkerSpawn};
use omq::prelude::*;
use omq_wire::render_answer;
use std::collections::BTreeMap;
use std::time::Duration;

/// Self-spawn hook: when run normally this is an empty test; when the
/// coordinator spawns the test binary with `OMQ_CLUSTER_WORKER_ADDR` set,
/// it runs the worker loop until the coordinator says bye.
#[test]
fn worker_process_entry() {
    omq::cluster::maybe_run_worker();
}

const ONTOLOGY: &str = "Researcher(x) -> exists y. HasOffice(x, y)\n\
                        HasOffice(x, y) -> Office(y)\n\
                        Office(x) -> exists y. InBuilding(x, y)";
const QUERY: &str = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";
/// Projection to the building only: answers can degenerate to the all-star
/// tuple, the one case where minimality is a cross-shard property.
const BUILDING_QUERY: &str = "q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";

fn omq(query: &str) -> OntologyMediatedQuery {
    let ontology = Ontology::parse(ONTOLOGY).unwrap();
    let query = ConjunctiveQuery::parse(query).unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// `islands` disjoint researcher/office/building components; island `i`
/// carries `offices(i)` offices.  Disjoint constants keep the Gaifman
/// components independent, so the shard count tracks the island count.
fn island_db(schema: &Schema, islands: usize, offices: impl Fn(usize) -> usize) -> Database {
    let mut builder = Database::builder(schema.clone());
    for i in 0..islands {
        builder = builder.fact("Researcher", [format!("p{i}")]);
        for o in 0..offices(i) {
            builder = builder
                .fact("HasOffice", [format!("p{i}"), format!("o{i}_{o}")])
                .fact("InBuilding", [format!("o{i}_{o}"), format!("b{i}")]);
        }
    }
    builder.build().unwrap()
}

fn uniform_db(schema: &Schema) -> Database {
    island_db(schema, 6, |_| 2)
}

/// One island holds 12 of the 17 offices: the classic straggler shape the
/// largest-first queue is built for.
fn skewed_db(schema: &Schema) -> Database {
    island_db(schema, 6, |i| if i == 0 { 12 } else { 1 })
}

/// Renders a whole stream into a name-keyed multiset; fails the test if the
/// stream ended with an error.
fn drain(stream: &mut AnswerStream, db: &Database) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for answer in &mut *stream {
        *counts
            .entry(render_answer(&answer, db).join(","))
            .or_default() += 1;
    }
    assert!(
        stream.error().is_none(),
        "stream failed: {:?}",
        stream.error()
    );
    counts
}

/// Spawn workers as fresh processes of this very test binary (see
/// [`worker_process_entry`]).
fn process_spawn() -> WorkerSpawn {
    WorkerSpawn::Command {
        program: std::env::current_exe().unwrap(),
        args: vec!["worker_process_entry".into(), "--exact".into()],
    }
}

fn cluster_multiset(
    query: &str,
    db: &Database,
    semantics: Semantics,
    config: &ClusterConfig,
) -> (BTreeMap<String, usize>, ClusterStats) {
    let run = execute(ONTOLOGY, query, db, semantics, config).unwrap();
    let mut stream = run.stream;
    let counts = drain(&mut stream, db);
    (counts, run.handle.finish())
}

/// The differential matrix: three semantics × both queries × 1/2/4 workers
/// × uniform and skewed databases, distributed-over-processes versus
/// `execute_parallel` versus sequential.
#[test]
fn distributed_processes_match_in_process_parallel() {
    for query in [QUERY, BUILDING_QUERY] {
        let omq = omq(query);
        let plan = QueryPlan::compile(&omq).unwrap();
        for db in [uniform_db(omq.data_schema()), skewed_db(omq.data_schema())] {
            for semantics in [
                Semantics::Complete,
                Semantics::MinimalPartial,
                Semantics::MinimalPartialMulti,
            ] {
                let sequential = {
                    let instance = plan.execute(&db).unwrap();
                    drain(&mut instance.answers(semantics).unwrap(), &db)
                };
                for workers in [1usize, 2, 4] {
                    let parallel = {
                        let instance = plan.execute_parallel(&db, workers).unwrap();
                        drain(&mut instance.answers(semantics).unwrap(), &db)
                    };
                    assert_eq!(
                        parallel, sequential,
                        "parallel diverged ({workers} threads)"
                    );
                    let config = ClusterConfig {
                        workers,
                        worker_timeout: Duration::from_secs(20),
                        spawn: process_spawn(),
                        ..ClusterConfig::default()
                    };
                    let (distributed, stats) = cluster_multiset(query, &db, semantics, &config);
                    assert_eq!(
                        distributed, sequential,
                        "distributed diverged ({workers} workers, {semantics:?})"
                    );
                    assert_eq!(stats.workers, workers);
                    assert_eq!(stats.worker_failures, 0);
                    if workers > 1 {
                        assert!(stats.shards > 1, "expected sharding: {stats:?}");
                        // Every take beyond a worker's first is a steal, so
                        // the floor is exact whatever the interleaving.
                        assert!(
                            stats.steals >= stats.shards - stats.workers,
                            "stats: {stats:?}"
                        );
                    } else {
                        assert_eq!(stats.shards, 1);
                    }
                }
            }
        }
    }
}

/// Kill a worker process mid-shard: with one answer per page and a fault
/// that drops the connection after the first page, worker 0 dies holding an
/// uncommitted shard.  The run must reassign it to the survivor and the
/// final multiset must not change.
#[test]
fn killed_worker_process_is_reassigned_without_losing_answers() {
    let omq = omq(QUERY);
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = island_db(omq.data_schema(), 8, |_| 2);
    let sequential = {
        let instance = plan.execute(&db).unwrap();
        drain(&mut instance.answers(Semantics::Complete).unwrap(), &db)
    };
    let config = ClusterConfig {
        workers: 2,
        worker_timeout: Duration::from_secs(20),
        spawn: process_spawn(),
        page_answers: Some(1),
        kill: Some(Kill {
            worker: 0,
            after_pages: 1,
        }),
        ..ClusterConfig::default()
    };
    let (distributed, stats) = cluster_multiset(QUERY, &db, Semantics::Complete, &config);
    assert_eq!(distributed, sequential);
    assert_eq!(stats.worker_failures, 1, "stats: {stats:?}");
    assert!(stats.reassignments >= 1, "stats: {stats:?}");
}

/// Setup failures stay on the coordinator: a query that does not parse is
/// rejected before any process is spawned, with a client-fault wire code —
/// through the facade error, like every other layer.
#[test]
fn coordinator_rejects_bad_input_with_the_shared_taxonomy() {
    let omq = omq(QUERY);
    let db = island_db(omq.data_schema(), 1, |_| 1);
    let err: omq::Error = execute(
        ONTOLOGY,
        "q(x :-",
        &db,
        Semantics::Complete,
        &ClusterConfig::default(),
    )
    .err()
    .expect("unparsable query must fail")
    .into();
    assert!(matches!(err, omq::Error::Cluster(_)));
    assert!(err.wire_code().is_client_error());
}
