//! Property tests of the session layer: snapshot isolation, transactional
//! atomicity, and stream ownership across concurrent commits.
//!
//! The contract under test (`Store` / `Txn` / `Snapshot` + `ServingEngine`):
//!
//! * **snapshot stability** — commits after `snapshot()` never change that
//!   snapshot's answer multiset (in fact, not even the answer *order*);
//! * **stream ownership** — an `AnswerStream` opened on a snapshot keeps
//!   yielding after concurrent commits and after the store/engine is
//!   dropped;
//! * **rollback** — an uncommitted (or rejected) transaction leaves the
//!   store byte-identical: the head is the very same allocation;
//! * **freshness** — a fresh snapshot sees committed facts through the same
//!   compiled plan, agreeing with a from-scratch evaluation of the merged
//!   database;
//! * **refresh isolation** — incremental refreshes
//!   ([`PreparedInstance::refresh`]) landing behind a parked stream never
//!   perturb it, and each refreshed instance shares its untouched shards
//!   with its predecessor by pointer.

use omq::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// A random office workload split into an initial load and a sequence of
/// later commits (each commit is a batch of facts).
#[derive(Debug, Clone)]
struct RandomWorkload {
    initial: Vec<(usize, usize, usize)>,
    commits: Vec<Vec<(usize, usize, usize)>>,
}

/// Each `(r, o, b)` triple wires researcher `p{r}` to office `o{o}` in
/// building `b{b}` — with the office/building facts dropped modulo small
/// primes so incomplete chains (wildcard answers) keep showing up.
fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    let triple = || (0..12usize, 0..8usize, 0..4usize);
    (
        prop::collection::vec(triple(), 1..12),
        prop::collection::vec(prop::collection::vec(triple(), 1..6), 0..4),
    )
        .prop_map(|(initial, commits)| RandomWorkload { initial, commits })
}

fn txn_of(batch: &[(usize, usize, usize)]) -> Txn {
    let mut txn = Txn::new();
    for &(r, o, b) in batch {
        txn = txn.insert("Researcher", [format!("p{r}")]);
        if r % 3 != 0 {
            txn = txn.insert("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        if b % 2 == 0 {
            txn = txn.insert("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
    }
    txn
}

/// Applies the same batch to a plain `Database` (the reference path).
fn apply_to_database(db: &mut Database, batch: &[(usize, usize, usize)]) {
    for &(r, o, b) in batch {
        db.add_named_fact("Researcher", &[format!("p{r}")]).unwrap();
        if r % 3 != 0 {
            db.add_named_fact("HasOffice", &[format!("p{r}"), format!("o{o}")])
                .unwrap();
        }
        if b % 2 == 0 {
            db.add_named_fact("InBuilding", &[format!("o{o}"), format!("b{b}")])
                .unwrap();
        }
    }
}

/// Renders an instance's answers as a sorted multiset of strings.
fn answer_multiset(instance: &PreparedInstance, semantics: Semantics) -> Vec<String> {
    let mut rendered: Vec<String> = instance
        .answers(semantics)
        .unwrap()
        .map(|a| instance.format_answer(&a))
        .collect();
    rendered.sort();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Commits after `snapshot()` never change that snapshot's answers:
    /// the exact sequence (order included) is replayed after every commit,
    /// and a fresh snapshot agrees with a from-scratch reference database.
    #[test]
    fn commits_never_change_a_pinned_snapshots_answers(workload in workload_strategy()) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();
        let mut reference = Database::new(omq.data_schema().clone());
        apply_to_database(&mut reference, &workload.initial);

        let pinned = store.snapshot();
        let pinned_answers: Vec<Vec<Answer>> = Semantics::ALL
            .into_iter()
            .map(|sem| plan.execute(&pinned).unwrap().answers(sem).unwrap().collect())
            .collect();

        for batch in &workload.commits {
            store.commit(txn_of(batch)).unwrap();
            apply_to_database(&mut reference, batch);
            for (sem, before) in Semantics::ALL.into_iter().zip(&pinned_answers) {
                // Identical sequence from the pinned snapshot, not just an
                // equal multiset.
                let after: Vec<Answer> = plan
                    .execute(&pinned)
                    .unwrap()
                    .answers(sem)
                    .unwrap()
                    .collect();
                prop_assert_eq!(&after, before);
                // The fresh snapshot agrees with the reference database.
                let fresh_instance = plan.execute(store.snapshot()).unwrap();
                let reference_instance = plan.execute(&reference).unwrap();
                prop_assert_eq!(
                    answer_multiset(&fresh_instance, sem),
                    answer_multiset(&reference_instance, sem)
                );
            }
        }
    }

    /// (b) An `AnswerStream` taken from a snapshot survives concurrent
    /// commits and the drop of the store: the suffix pulled afterwards is
    /// exactly the suffix of the pre-commit enumeration.
    #[test]
    fn streams_survive_concurrent_commits_and_store_drop(
        workload in workload_strategy(),
        pulled_before in 0..4usize,
    ) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();

        let full: Vec<Answer> = plan
            .execute(store.snapshot())
            .unwrap()
            .answers(Semantics::MinimalPartial)
            .unwrap()
            .collect();
        let mut stream = plan
            .execute(store.snapshot())
            .unwrap()
            .answers(Semantics::MinimalPartial)
            .unwrap();
        let head: Vec<Answer> = (&mut stream).take(pulled_before).collect();
        prop_assert_eq!(&head[..], &full[..head.len()]);

        // Commits land while the stream is parked — on another thread, so
        // writer and reader genuinely interleave.
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                for batch in &workload.commits {
                    store.commit(txn_of(batch)).unwrap();
                }
                store.commit(txn_of(&[(11, 7, 2)])).unwrap();
                drop(store);
            });
            handle.join().unwrap();
        });

        // The parked stream finishes its pinned enumeration untouched.
        let tail: Vec<Answer> = stream.collect();
        prop_assert_eq!(&tail[..], &full[head.len()..]);
    }

    /// (c) Rollback (dropping a transaction, or a rejected commit) leaves
    /// the store byte-identical — the head is the very same allocation, the
    /// epoch unchanged.
    #[test]
    fn rollback_leaves_the_store_byte_identical(
        workload in workload_strategy(),
        reject_at in 0..6usize,
    ) {
        let omq = office_omq();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();
        let before = store.snapshot();
        let facts_before = store.len();

        // Dropping an uncommitted transaction never touches the store.
        let staged = workload
            .commits
            .iter()
            .fold(Txn::new(), |txn, batch| {
                batch.iter().fold(txn, |t, &(r, _, _)| {
                    t.insert("Researcher", [format!("p{r}")])
                })
            });
        staged.rollback();
        prop_assert!(store.snapshot().ptr_eq(&before));
        prop_assert_eq!(store.epoch(), before.epoch());
        prop_assert_eq!(store.len(), facts_before);

        // A rejected commit (valid prefix, invalid operation at `reject_at`)
        // is a rollback too: nothing of the batch lands.
        let mut txn = Txn::new();
        for i in 0..reject_at {
            txn = txn.insert("Researcher", [format!("valid{i}")]);
        }
        txn = txn.insert("NoSuchRelation", ["boom"]);
        prop_assert!(store.commit(txn).is_err());
        prop_assert!(store.snapshot().ptr_eq(&before));
        prop_assert_eq!(store.epoch(), before.epoch());
        prop_assert_eq!(store.len(), facts_before);
    }

    /// (d) A stream parked on the pre-refresh instance replays its exact
    /// byte-identical suffix while a chain of incremental refreshes lands;
    /// and every shard a refresh reports as reused is pointer-shared (the
    /// same `Arc` allocation) with its predecessor instance.
    #[test]
    fn refreshes_share_shards_and_leave_parked_streams_untouched(
        workload in workload_strategy(),
        pulled_before in 0..4usize,
    ) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();

        let mut maintained = plan.execute_tracked(store.snapshot()).unwrap();
        let full: Vec<Answer> = maintained
            .answers(Semantics::MinimalPartial)
            .unwrap()
            .collect();
        let mut parked = maintained.answers(Semantics::MinimalPartial).unwrap();
        let head: Vec<Answer> = (&mut parked).take(pulled_before).collect();
        prop_assert_eq!(&head[..], &full[..head.len()]);

        for batch in &workload.commits {
            let receipt = store.commit(txn_of(batch)).unwrap();
            let prev = maintained;
            maintained = prev.refresh(store.snapshot(), &receipt).unwrap();
            // Reused shards are *the* predecessor allocations, not copies —
            // and nothing else is (fresh shards are freshly chased).
            let shared = maintained
                .shards()
                .iter()
                .filter(|s| prev.shards().iter().any(|p| Arc::ptr_eq(p, s)))
                .count();
            prop_assert_eq!(shared, maintained.stats().reused_shards);
        }

        // The parked stream, opened before any refresh, drains the exact
        // suffix of the pre-refresh enumeration.
        let tail: Vec<Answer> = parked.collect();
        prop_assert_eq!(&tail[..], &full[head.len()..]);
    }
}

/// The acceptance scenario, end to end through `ServingEngine`: a registered
/// query returns identical answer multisets from a pinned snapshot before
/// and after a concurrent `Txn` commit, and a fresh snapshot sees the new
/// facts without the plan being recompiled.
#[test]
fn served_snapshots_are_isolated_and_fresh_requests_see_commits() {
    let omq = office_omq();
    let mut engine = ServingEngine::new(2);
    let q = engine.register_query("office", &omq).unwrap();
    engine
        .register_data(
            Txn::new()
                .insert("Researcher", ["mary"])
                .insert("Researcher", ["john"])
                .insert("HasOffice", ["mary", "room1"])
                .insert("InBuilding", ["room1", "main1"]),
        )
        .unwrap();

    let pinned = engine.snapshot();
    let chase_types_before = engine.plan(q).unwrap().chase_plan().memoized_bag_types();
    let before = engine
        .serve_one(&Request::new(q, Semantics::MinimalPartial).at(pinned.clone()))
        .unwrap();

    // The commit races an in-flight stream on another thread.
    let mut parked = engine
        .serve_stream(&Request::new(q, Semantics::MinimalPartial).at(pinned.clone()))
        .unwrap();
    let first = parked.next();
    std::thread::scope(|scope| {
        let engine = &mut engine;
        scope
            .spawn(move || {
                engine
                    .register_data(
                        Txn::new()
                            .insert("Researcher", ["ada"])
                            .insert("HasOffice", ["ada", "lab2"])
                            .insert("InBuilding", ["lab2", "west"]),
                    )
                    .unwrap();
            })
            .join()
            .unwrap();
    });

    // Pinned snapshot: identical answer multiset after the commit.
    let after = engine
        .serve_one(&Request::new(q, Semantics::MinimalPartial).at(pinned.clone()))
        .unwrap();
    assert_eq!(before.answers, after.answers);
    assert_eq!(after.epoch, Some(pinned.epoch()));

    // The parked stream drains its pinned epoch: first + rest == before.
    let rest = parked.count();
    assert_eq!(first.is_some() as usize + rest, before.answers.len());

    // A fresh request sees ada's complete chain; the compiled plan was
    // reused, not recompiled (its chase memo only grew or stayed).
    let fresh = engine
        .serve_one(&Request::new(q, Semantics::MinimalPartial))
        .unwrap();
    assert_eq!(fresh.answers.len(), before.answers.len() + 1);
    assert_eq!(fresh.epoch, Some(engine.epoch()));
    assert!(engine.plan(q).unwrap().chase_plan().memoized_bag_types() >= chase_types_before);
}
