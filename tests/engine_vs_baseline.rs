//! Randomised integration tests: the constant-delay engines must agree with
//! the brute-force chase-and-join baseline on every evaluation mode.

// The deprecated `enumerate_*`/`stream_*`/`test_minimal_*` wrappers are
// exercised on purpose: they are thin shims over the `answers()` cursor now,
// and this suite is their regression harness (the cursor itself is covered
// by `tests/answer_stream.rs`).
#![allow(deprecated)]

use omq::prelude::*;
use omq_bench::generators::{university, UniversityConfig};
use std::collections::BTreeSet;

fn render_partial(answers: &[PartialTuple], db: &Database) -> BTreeSet<String> {
    answers
        .iter()
        .map(|t| t.display_with(|c| db.const_name(c).to_owned()))
        .collect()
}

fn render_multi(answers: &[MultiTuple], db: &Database) -> BTreeSet<String> {
    answers
        .iter()
        .map(|t| t.display_with(|c| db.const_name(c).to_owned()))
        .collect()
}

fn render_complete(answers: &[Vec<Value>], db: &Database) -> BTreeSet<String> {
    answers
        .iter()
        .map(|a| {
            let names: Vec<&str> = a
                .iter()
                .map(|v| match v {
                    Value::Const(c) => db.const_name(*c),
                    Value::Null(_) => "<null>",
                })
                .collect();
            format!("({})", names.join(","))
        })
        .collect()
}

fn check_workload(config: &UniversityConfig) {
    let (omq, db) = university(config);
    let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).expect("chase runs");

    // Complete answers.
    let fast_complete: BTreeSet<String> = engine
        .enumerate_complete()
        .unwrap()
        .iter()
        .map(|a| engine.format_complete(a))
        .collect();
    let slow_complete = render_complete(&brute.complete_answers(), &brute.chased);
    assert_eq!(fast_complete, slow_complete, "complete answers, {config:?}");

    // Minimal partial answers.
    let fast_partial: BTreeSet<String> = engine
        .enumerate_minimal_partial()
        .unwrap()
        .iter()
        .map(|t| engine.format_partial(t))
        .collect();
    let slow_partial = render_partial(&brute.minimal_partial(), &brute.chased);
    assert_eq!(fast_partial, slow_partial, "partial answers, {config:?}");

    // Multi-wildcard answers.
    let fast_multi: BTreeSet<String> = engine
        .enumerate_minimal_partial_multi()
        .unwrap()
        .iter()
        .map(|t| engine.format_multi(t))
        .collect();
    let slow_multi = render_multi(&brute.minimal_partial_multi(), &brute.chased);
    assert_eq!(fast_multi, slow_multi, "multi answers, {config:?}");

    // All-testing agrees with the enumerated complete answers, and
    // single-testing accepts exactly the enumerated minimal partial answers
    // among a small candidate pool.
    let tester = engine.all_tester().unwrap();
    for answer in engine.enumerate_complete().unwrap().iter().take(50) {
        let values: Vec<Value> = answer.iter().map(|&c| Value::Const(c)).collect();
        assert!(tester.test(&values).unwrap());
    }
    for answer in engine.enumerate_minimal_partial().unwrap().iter().take(50) {
        assert!(engine.test_minimal_partial(answer).unwrap());
    }
    for answer in engine
        .enumerate_minimal_partial_multi()
        .unwrap()
        .iter()
        .take(50)
    {
        assert!(engine.test_minimal_partial_multi(answer).unwrap());
    }
}

#[test]
fn small_workloads_all_modes_agree() {
    for seed in 0..4u64 {
        check_workload(&UniversityConfig {
            researchers: 30,
            office_ratio: 0.6,
            building_ratio: 0.5,
            buildings: 4,
            seed,
        });
    }
}

#[test]
fn fully_complete_data_has_no_wildcards() {
    let config = UniversityConfig {
        researchers: 40,
        office_ratio: 1.0,
        building_ratio: 1.0,
        buildings: 3,
        seed: 11,
    };
    let (omq, db) = university(&config);
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let partial = engine.enumerate_minimal_partial().unwrap();
    assert!(partial.iter().all(PartialTuple::is_complete));
    assert_eq!(partial.len(), engine.enumerate_complete().unwrap().len());
    check_workload(&config);
}

#[test]
fn fully_incomplete_data_is_all_wildcards() {
    let config = UniversityConfig {
        researchers: 25,
        office_ratio: 0.0,
        building_ratio: 0.0,
        buildings: 2,
        seed: 3,
    };
    let (omq, db) = university(&config);
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    assert!(engine.enumerate_complete().unwrap().is_empty());
    let partial = engine.enumerate_minimal_partial().unwrap();
    // One answer per researcher, with both the office and the building
    // anonymous.
    assert_eq!(partial.len(), 25);
    assert!(partial.iter().all(|t| t.star_count() == 2));
    check_workload(&config);
}

#[test]
fn star_shaped_query_with_shared_nulls() {
    // A query with three atoms sharing the answer variable x; the OfficeMate
    // style ontology introduces shared nulls, exercising multi-wildcard
    // minimality.
    let ontology = Ontology::parse(
        "Seed(x) -> exists y. R(x, y), S(x, y)\n\
         Seed(x) -> exists z. T(x, z)",
    )
    .unwrap();
    let query = ConjunctiveQuery::parse("q(x, a, b, c) :- R(x, a), S(x, b), T(x, c)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("Seed", ["s1"])
        .fact("Seed", ["s2"])
        .fact("R", ["s2", "r"])
        .build()
        .unwrap();
    let engine = OmqEngine::preprocess(&omq, &db).unwrap();
    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
    assert_eq!(
        engine
            .enumerate_minimal_partial_multi()
            .unwrap()
            .iter()
            .map(|t| engine.format_multi(t))
            .collect::<BTreeSet<_>>(),
        render_multi(&brute.minimal_partial_multi(), &brute.chased)
    );
    assert_eq!(
        engine
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| engine.format_partial(t))
            .collect::<BTreeSet<_>>(),
        render_partial(&brute.minimal_partial(), &brute.chased)
    );
}
