use omq_answers::{Database, Ontology, OntologyMediatedQuery, QueryPlan};
use omq_cq::ConjunctiveQuery;

#[test]
fn nullary_side_atom_tgd_parallel_vs_sequential() {
    // Guarded TGD with a nullary side atom: P(x), Flag() -> Q(x).
    let ontology = match Ontology::parse("P(x), Flag() -> Q(x)") {
        Ok(o) => o,
        Err(e) => {
            eprintln!("parse rejected nullary atom: {e}");
            return;
        }
    };
    let query = ConjunctiveQuery::parse("q(x) :- Q(x)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let plan = match QueryPlan::compile(&omq) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile rejected: {e}");
            return;
        }
    };
    let mut builder = Database::builder(omq.data_schema().clone());
    builder = builder.fact("P", ["a"]).fact("P", ["b"]).fact("Flag", Vec::<String>::new());
    let db = builder.build().unwrap();
    eprintln!("components: {}", db.component_count());
    let seq = plan.execute(&db).unwrap();
    let par = plan.execute_parallel(&db, 4).unwrap();
    let s: Vec<_> = seq
        .enumerate_complete()
        .unwrap()
        .iter()
        .map(|a| seq.format_complete(a))
        .collect();
    let p: Vec<_> = par
        .enumerate_complete()
        .unwrap()
        .iter()
        .map(|a| par.format_complete(a))
        .collect();
    eprintln!("sequential: {s:?}  parallel(shards={}): {p:?}", par.shard_count());
    assert_eq!(s, p, "parallel execution lost answers");
}
