//! Regression: a guarded TGD with a *nullary* side atom (`P(x), Flag() ->
//! Q(x)`) must chase and enumerate identically on the sequential and the
//! Gaifman-sharded parallel paths.  Nullary facts touch no Gaifman node, so
//! sharding must not lose the `Flag()` trigger in any shard.

use omq::prelude::*;
use std::collections::BTreeMap;

#[test]
fn nullary_side_atom_tgd_parallel_vs_sequential() {
    let ontology = Ontology::parse("P(x), Flag() -> Q(x)").unwrap();
    let query = ConjunctiveQuery::parse("q(x) :- Q(x)").unwrap();
    let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db = Database::builder(omq.data_schema().clone())
        .fact("P", ["a"])
        .fact("P", ["b"])
        .fact("Flag", Vec::<String>::new())
        .build()
        .unwrap();
    let seq = plan.execute(&db).unwrap();
    let par = plan.execute_parallel(&db, 4).unwrap();
    // Cross-shard answer *order* is not a documented guarantee; compare
    // multisets, like the rest of the parallel-equivalence suite.
    let multiset = |instance: &PreparedInstance| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for a in instance.answers(Semantics::Complete).unwrap() {
            *m.entry(instance.format_answer(&a)).or_default() += 1;
        }
        m
    };
    let s = multiset(&seq);
    assert_eq!(
        s.keys().cloned().collect::<Vec<_>>(),
        vec!["(a)".to_owned(), "(b)".to_owned()],
        "nullary side atom must fire for every P-fact"
    );
    assert_eq!(s, multiset(&par), "parallel execution lost answers");
}
