//! Property-based tests (proptest): the optimised engines must agree with
//! brute-force oracles on randomly generated queries and databases, and the
//! core data structures must satisfy their invariants.

// The deprecated `enumerate_*`/`stream_*`/`test_minimal_*` wrappers are
// exercised on purpose: they are thin shims over the `answers()` cursor now,
// and this suite is their regression harness (the cursor itself is covered
// by `tests/answer_stream.rs`).
#![allow(deprecated)]

use omq::prelude::*;
use omq_core::baseline;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Random conjunctive queries and databases over a fixed small schema.
// ---------------------------------------------------------------------------

const VARS: [&str; 4] = ["x", "y", "z", "w"];
const UNARY: [&str; 2] = ["A", "B"];
const BINARY: [&str; 2] = ["R", "S"];

#[derive(Debug, Clone)]
struct RandomAtom {
    relation: String,
    vars: Vec<usize>,
}

fn atom_strategy() -> impl Strategy<Value = RandomAtom> {
    prop_oneof![
        (0..UNARY.len(), 0..VARS.len()).prop_map(|(r, v)| RandomAtom {
            relation: UNARY[r].to_owned(),
            vars: vec![v],
        }),
        (0..BINARY.len(), 0..VARS.len(), 0..VARS.len()).prop_map(|(r, v1, v2)| RandomAtom {
            relation: BINARY[r].to_owned(),
            vars: vec![v1, v2],
        }),
    ]
}

#[derive(Debug, Clone)]
struct RandomQuery {
    atoms: Vec<RandomAtom>,
    answer_vars: Vec<usize>,
}

fn query_strategy() -> impl Strategy<Value = RandomQuery> {
    (
        prop::collection::vec(atom_strategy(), 1..4),
        prop::collection::vec(0..VARS.len(), 0..3),
    )
        .prop_map(|(atoms, answer_vars)| RandomQuery { atoms, answer_vars })
}

impl RandomQuery {
    /// Renders the query, keeping only answer variables that occur in the
    /// body (so that the query is well-formed).
    fn to_cq(&self) -> Option<ConjunctiveQuery> {
        let used: BTreeSet<usize> = self.atoms.iter().flat_map(|a| a.vars.clone()).collect();
        let answer: Vec<&str> = self
            .answer_vars
            .iter()
            .filter(|v| used.contains(v))
            .map(|&v| VARS[v])
            .collect();
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let args: Vec<&str> = a.vars.iter().map(|&v| VARS[v]).collect();
                format!("{}({})", a.relation, args.join(", "))
            })
            .collect();
        let text = format!("q({}) :- {}", answer.join(", "), body.join(", "));
        ConjunctiveQuery::parse(&text).ok()
    }
}

#[derive(Debug, Clone)]
struct RandomDb {
    unary_facts: Vec<(usize, usize)>,
    binary_facts: Vec<(usize, usize, usize)>,
    nulls: Vec<(usize, usize, usize)>,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        prop::collection::vec((0..UNARY.len(), 0..5usize), 0..8),
        prop::collection::vec((0..BINARY.len(), 0..5usize, 0..5usize), 0..10),
        prop::collection::vec((0..BINARY.len(), 0..5usize, 0..3usize), 0..4),
    )
        .prop_map(|(unary_facts, binary_facts, nulls)| RandomDb {
            unary_facts,
            binary_facts,
            nulls,
        })
}

impl RandomDb {
    /// Builds a database with constants `c0..c4` and a few labelled nulls in
    /// the second position of binary facts (mimicking a chased instance).
    fn to_database(&self) -> Database {
        let mut schema = Schema::new();
        for r in UNARY {
            schema.add_relation(r, 1).unwrap();
        }
        for r in BINARY {
            schema.add_relation(r, 2).unwrap();
        }
        let mut db = Database::new(schema);
        for (r, c) in &self.unary_facts {
            db.add_named_fact(UNARY[*r], &[format!("c{c}")]).unwrap();
        }
        for (r, c1, c2) in &self.binary_facts {
            db.add_named_fact(BINARY[*r], &[format!("c{c1}"), format!("c{c2}")])
                .unwrap();
        }
        for (r, c, n) in &self.nulls {
            let rel = db.schema().relation_id(BINARY[*r]).unwrap();
            let constant = Value::Const(db.intern_const(&format!("c{c}")));
            // A bounded pool of nulls so that shared nulls occur.
            let null = Value::Null(NullId(*n as u32));
            db.add_fact(Fact::new(rel, vec![constant, null])).unwrap();
        }
        db
    }
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GYO: whenever a query is classified acyclic, the returned join tree is
    /// a valid join tree for its atoms.
    #[test]
    fn join_trees_are_valid(query in query_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        if let Some(tree) = omq_cq::acyclicity::join_tree(&q) {
            prop_assert!(tree.is_valid_for(&omq_cq::acyclicity::atom_vertex_sets(&q)));
        }
        // Acyclicity and free-connex acyclicity each imply weak acyclicity.
        let report = AcyclicityReport::classify(&q);
        if report.acyclic || report.free_connex_acyclic {
            prop_assert!(report.weakly_acyclic);
        }
    }

    /// Constant-delay enumeration of complete answers agrees with the
    /// brute-force evaluation for every tractable random query.
    #[test]
    fn complete_enumeration_matches_brute_force(query in query_strategy(), db in db_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        let database = db.to_database();
        let report = AcyclicityReport::classify(&q);
        if !report.enumeration_tractable() {
            return Ok(());
        }
        let structure = omq_core::FreeConnexStructure::build(&q, &database, false).unwrap();
        let mut fast = omq_core::collect_answers(&structure);
        let mut slow = baseline::cq_answers(&q, &database);
        fast.sort();
        slow.sort();
        prop_assert_eq!(&fast, &slow);
        // No duplicates.
        let dedup: BTreeSet<Vec<Value>> = fast.iter().cloned().collect();
        prop_assert_eq!(dedup.len(), fast.len());
    }

    /// Algorithm 1 produces exactly the minimal partial answers, without
    /// repetition.
    #[test]
    fn algorithm_1_matches_oracle(query in query_strategy(), db in db_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        let database = db.to_database();
        if !AcyclicityReport::classify(&q).enumeration_tractable() {
            return Ok(());
        }
        let fast = omq_core::partial_enum::minimal_partial_answers(&q, &database).unwrap();
        let oracle = baseline::cq_minimal_partial(&q, &database);
        let fast_set: BTreeSet<PartialTuple> = fast.iter().cloned().collect();
        let oracle_set: BTreeSet<PartialTuple> = oracle.iter().cloned().collect();
        prop_assert_eq!(&fast_set, &oracle_set);
        prop_assert_eq!(fast_set.len(), fast.len());
    }

    /// Algorithm 2 produces exactly the minimal partial answers with
    /// multi-wildcards, without repetition.
    #[test]
    fn algorithm_2_matches_oracle(query in query_strategy(), db in db_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        let database = db.to_database();
        if !AcyclicityReport::classify(&q).enumeration_tractable() {
            return Ok(());
        }
        let fast = omq_core::multi_enum::minimal_partial_multi_answers(&q, &database).unwrap();
        let oracle = baseline::cq_minimal_partial_multi(&q, &database);
        let fast_set: BTreeSet<MultiTuple> = fast.iter().cloned().collect();
        let oracle_set: BTreeSet<MultiTuple> = oracle.iter().cloned().collect();
        prop_assert_eq!(&fast_set, &oracle_set);
        prop_assert_eq!(fast_set.len(), fast.len());
    }

    /// The all-tester accepts exactly the complete answers (checked against a
    /// sample of candidate tuples).
    #[test]
    fn all_tester_matches_answers(query in query_strategy(), db in db_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        if q.arity() == 0 || q.arity() > 3 {
            return Ok(());
        }
        let database = db.to_database();
        if !omq_cq::acyclicity::is_free_connex_acyclic(&q) {
            return Ok(());
        }
        let tester = AllTester::build(&q, &database, false).unwrap();
        let answers: BTreeSet<Vec<Value>> =
            baseline::cq_answers(&q, &database).into_iter().collect();
        // Sample candidates: all answers plus a grid over the active domain.
        let mut candidates: Vec<Vec<Value>> = answers.iter().cloned().collect();
        let adom: Vec<Value> = database.adom().to_vec();
        for (i, &a) in adom.iter().enumerate().take(6) {
            let tuple: Vec<Value> = (0..q.arity()).map(|k| adom[(i + k) % adom.len()]).collect();
            candidates.push(tuple);
            candidates.push(vec![a; q.arity()]);
        }
        for c in candidates {
            prop_assert_eq!(tester.test(&c).unwrap(), answers.contains(&c));
        }
    }

    /// Single-testing of minimal partial answers agrees with the oracle set.
    #[test]
    fn single_testing_matches_oracle(query in query_strategy(), db in db_strategy()) {
        let Some(q) = query.to_cq() else { return Ok(()); };
        if q.arity() == 0 || q.arity() > 2 {
            return Ok(());
        }
        let database = db.to_database();
        let oracle: BTreeSet<PartialTuple> =
            baseline::cq_minimal_partial(&q, &database).into_iter().collect();
        // Candidates: every tuple over (a sample of the constants) ∪ {*}.
        let consts: Vec<PartialValue> = database
            .adom_consts()
            .into_iter()
            .take(4)
            .map(PartialValue::Const)
            .chain(std::iter::once(PartialValue::Star))
            .collect();
        let mut candidates: Vec<PartialTuple> = vec![PartialTuple(Vec::new())];
        for _ in 0..q.arity() {
            let mut next = Vec::new();
            for t in &candidates {
                for &v in &consts {
                    let mut extended = t.clone();
                    extended.0.push(v);
                    next.push(extended);
                }
            }
            candidates = next;
        }
        for candidate in candidates {
            let tested =
                single_testing::test_minimal_partial(&q, &database, &candidate).unwrap();
            prop_assert_eq!(tested, oracle.contains(&candidate), "candidate {}", candidate);
        }
    }

    /// The single-wildcard preference order is a partial order and the
    /// minimality filter is sound and complete.
    #[test]
    fn partial_order_properties(
        tuples in prop::collection::vec(
            prop::collection::vec(prop_oneof![
                (0u32..4).prop_map(|c| PartialValue::Const(ConstId(c))),
                Just(PartialValue::Star)
            ], 3),
            1..8)
    ) {
        let tuples: Vec<PartialTuple> = tuples.into_iter().map(PartialTuple).collect();
        // Reflexivity and antisymmetry.
        for a in &tuples {
            prop_assert!(a.preferred_leq(a));
            for b in &tuples {
                if a.preferred_leq(b) && b.preferred_leq(a) {
                    prop_assert_eq!(a, b);
                }
                // Transitivity against every third element.
                for c in &tuples {
                    if a.preferred_leq(b) && b.preferred_leq(c) {
                        prop_assert!(a.preferred_leq(c));
                    }
                }
            }
        }
        // The minimality filter keeps exactly the non-dominated tuples.
        let minimal = PartialTuple::minimal(&tuples);
        for m in &minimal {
            prop_assert!(!tuples.iter().any(|other| other.preferred_lt(m)));
        }
        for t in &tuples {
            let dominated = tuples.iter().any(|other| other.preferred_lt(t));
            prop_assert_eq!(minimal.contains(t), !dominated);
        }
    }

    /// The chase produces a model of the ontology (when not truncated), and
    /// the query-directed chase only derives sound ground facts.
    #[test]
    fn chase_soundness(db in db_strategy()) {
        let ontology = Ontology::parse(
            "A(x) -> exists y. R(x, y)\n\
             R(x, y) -> B(y)\n\
             B(x) -> exists y. S(x, y)",
        ).unwrap();
        let database = {
            // Restrict to constants only (input databases contain no nulls).
            let raw = db.to_database();
            let mut clean = Database::new(raw.schema().clone());
            for fact in raw.facts() {
                if fact.is_ground() {
                    let names: Vec<String> = fact
                        .args
                        .iter()
                        .map(|v| raw.display_value(*v))
                        .collect();
                    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    clean
                        .add_named_fact(raw.schema().name(fact.rel), &name_refs)
                        .unwrap();
                }
            }
            clean
        };
        let result = chase(&database, &ontology, &ChaseConfig::default()).unwrap();
        if !result.truncated {
            prop_assert!(omq_chase::chase::satisfies(&result.database, &ontology));
        }
        // Every ground fact of the query-directed chase also appears in the
        // full bounded chase (soundness of the saturation).
        let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y), B(y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let qchase = query_directed_chase(&database, &omq, &QchaseConfig::default()).unwrap();
        for fact in qchase.database.facts() {
            if fact.is_ground() {
                let rendered: Vec<String> = fact
                    .args
                    .iter()
                    .map(|v| qchase.database.display_value(*v))
                    .collect();
                let rel_name = qchase.database.schema().name(fact.rel);
                let found = result.database.facts().iter().any(|f| {
                    result.database.schema().name(f.rel) == rel_name
                        && f.args.len() == fact.args.len()
                        && f.args
                            .iter()
                            .map(|v| result.database.display_value(*v))
                            .collect::<Vec<_>>()
                            == rendered
                });
                prop_assert!(found, "unsound ground fact {rel_name}({rendered:?})");
            }
        }
    }
}
