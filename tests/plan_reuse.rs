//! Property-based tests for the plan/instance split: a `QueryPlan` compiled
//! once and executed over N random databases must agree answer-for-answer
//! with a fresh `OmqEngine::preprocess` per database, on all three answer
//! semantics (complete, minimal partial, minimal partial multi-wildcard).
//!
//! This exercises exactly the reuse path the compile-once/execute-many
//! architecture adds: shared `PlanSkeleton`, shared chase rule-trigger
//! tables, and the dense columnar enumeration structures rebuilt per
//! database.

// The deprecated `enumerate_*`/`stream_*`/`test_minimal_*` wrappers are
// exercised on purpose: they are thin shims over the `answers()` cursor now,
// and this suite is their regression harness (the cursor itself is covered
// by `tests/answer_stream.rs`).
#![allow(deprecated)]

use omq::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// A random S-database over the office schema: researcher/office/building
/// constants wired together with random gaps, so every run mixes complete
/// chains, office-less researchers, and building-less offices.
#[derive(Debug, Clone)]
struct RandomOfficeDb {
    researchers: Vec<usize>,
    offices: Vec<(usize, usize)>,
    buildings: Vec<(usize, usize)>,
}

fn db_strategy() -> impl Strategy<Value = RandomOfficeDb> {
    (
        prop::collection::vec(0..6usize, 1..6),
        prop::collection::vec((0..6usize, 0..4usize), 0..6),
        prop::collection::vec((0..4usize, 0..3usize), 0..5),
    )
        .prop_map(|(researchers, offices, buildings)| RandomOfficeDb {
            researchers,
            offices,
            buildings,
        })
}

impl RandomOfficeDb {
    fn to_database(&self, schema: &Schema) -> Database {
        let mut builder = Database::builder(schema.clone());
        for &r in &self.researchers {
            builder = builder.fact("Researcher", [format!("p{r}")]);
        }
        for &(r, o) in &self.offices {
            builder = builder.fact("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        for &(o, b) in &self.buildings {
            builder = builder.fact("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
        builder.build().unwrap()
    }
}

fn complete_set(
    instance_answers: Vec<Vec<ConstId>>,
    format: impl Fn(&[ConstId]) -> String,
) -> BTreeSet<String> {
    instance_answers.iter().map(|a| format(a)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One plan, N random databases: `QueryPlan::execute` agrees with a
    /// fresh `OmqEngine::preprocess` on every semantics.
    #[test]
    fn plan_reuse_matches_fresh_engines(dbs in prop::collection::vec(db_strategy(), 1..4)) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for random_db in dbs {
            let db = random_db.to_database(omq.data_schema());
            let instance = plan.execute(&db).unwrap();
            let engine = OmqEngine::preprocess(&omq, &db).unwrap();

            // Complete answers.
            let via_plan = complete_set(instance.enumerate_complete().unwrap(),
                |a| instance.format_complete(a));
            let via_engine = complete_set(engine.enumerate_complete().unwrap(),
                |a| engine.format_complete(a));
            prop_assert_eq!(&via_plan, &via_engine);

            // Minimal partial answers (single wildcard).
            let via_plan: BTreeSet<String> = instance
                .enumerate_minimal_partial().unwrap()
                .iter().map(|t| instance.format_partial(t)).collect();
            let via_engine: BTreeSet<String> = engine
                .enumerate_minimal_partial().unwrap()
                .iter().map(|t| engine.format_partial(t)).collect();
            prop_assert_eq!(&via_plan, &via_engine);

            // Minimal partial answers with multi-wildcards.
            let via_plan: BTreeSet<String> = instance
                .enumerate_minimal_partial_multi().unwrap()
                .iter().map(|t| instance.format_multi(t)).collect();
            let via_engine: BTreeSet<String> = engine
                .enumerate_minimal_partial_multi().unwrap()
                .iter().map(|t| engine.format_multi(t)).collect();
            prop_assert_eq!(&via_plan, &via_engine);

            // Every answer set also round-trips through the single testers.
            for answer in instance.enumerate_minimal_partial().unwrap() {
                prop_assert!(instance.test_minimal_partial(&answer).unwrap());
            }
        }
    }

    /// The chase memo accumulated by earlier executions never changes
    /// results: executing the same database before and after warming the
    /// memo on other databases yields identical answers.
    #[test]
    fn warm_memo_is_transparent(probe in db_strategy(), warmers in prop::collection::vec(db_strategy(), 0..3)) {
        let omq = office_omq();
        let cold_plan = QueryPlan::compile(&omq).unwrap();
        let warm_plan = QueryPlan::compile(&omq).unwrap();
        for warmer in &warmers {
            let db = warmer.to_database(omq.data_schema());
            warm_plan.execute(&db).unwrap();
        }
        let db = probe.to_database(omq.data_schema());
        let cold = cold_plan.execute(&db).unwrap();
        let warm = warm_plan.execute(&db).unwrap();
        let cold_answers: BTreeSet<String> = cold
            .enumerate_minimal_partial().unwrap()
            .iter().map(|t| cold.format_partial(t)).collect();
        let warm_answers: BTreeSet<String> = warm
            .enumerate_minimal_partial().unwrap()
            .iter().map(|t| warm.format_partial(t)).collect();
        prop_assert_eq!(cold_answers, warm_answers);
        prop_assert_eq!(cold.stats().chased_facts, warm.stats().chased_facts);
    }
}

/// Deterministic spot check: the acceptance scenario — one compiled plan,
/// two structurally different databases, all semantics equal to the
/// per-database engine path.
#[test]
fn two_distinct_databases_one_plan() {
    let omq = office_omq();
    let plan = QueryPlan::compile(&omq).unwrap();
    let db1 = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["mary"])
        .fact("Researcher", ["john"])
        .fact("Researcher", ["mike"])
        .fact("HasOffice", ["mary", "room1"])
        .fact("HasOffice", ["john", "room4"])
        .fact("InBuilding", ["room1", "main1"])
        .build()
        .unwrap();
    let db2 = Database::builder(omq.data_schema().clone())
        .fact("Researcher", ["ada"])
        .fact("HasOffice", ["ada", "lab1"])
        .fact("HasOffice", ["grace", "lab2"])
        .fact("InBuilding", ["lab2", "west"])
        .build()
        .unwrap();
    for db in [db1, db2] {
        let instance = plan.execute(&db).unwrap();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        let plan_partial: BTreeSet<String> = instance
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| instance.format_partial(t))
            .collect();
        let engine_partial: BTreeSet<String> = engine
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| engine.format_partial(t))
            .collect();
        assert_eq!(plan_partial, engine_partial);
        assert_eq!(
            instance.enumerate_complete().unwrap().len(),
            engine.enumerate_complete().unwrap().len()
        );
    }
}
