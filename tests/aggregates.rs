//! Property tests of the aggregate fast paths: `count` and `exists` never
//! materialise an `Answer`, yet must agree exactly with draining the cursor.
//!
//! The contract under test (`PreparedInstance::count` / `exists`):
//!
//! * **count equivalence** — `count(sem) == answers(sem)?.count()` for every
//!   semantics, on sequential *and* sharded (`execute_parallel`) instances,
//!   over random databases (the sharded case exercises the borrowed-tuple
//!   minimality merge and its associative `absorb` reduce);
//! * **exists equivalence** — `exists(sem) == answers(sem)?.next().is_some()`
//!   under the same sweep, including the Lemma 5.4 shortcut for the wildcard
//!   semantics (non-empty structure ⇒ some minimal answer);
//! * **commit stability** — the equivalences keep holding across store
//!   commits, on the freshly executed head and on instances refreshed
//!   incrementally from a predecessor;
//! * **serving parity** — `ServingEngine::count` reports the drained length
//!   of the unbounded request at the served epoch, ignoring the
//!   `limit`/`offset` window.

use omq::prelude::*;
use proptest::prelude::*;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// Same ontology, projected to the building only: researchers without any
/// listed office/building answer with the all-star tuple, whose minimality
/// (and hence whose *count* contribution) is a cross-shard property — the
/// stress case for counting through the merge filter.
fn building_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query = ConjunctiveQuery::parse("q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// A random office database assembled from independent researcher/office/
/// building wirings; disjoint constant ranges per "island" make the Gaifman
/// component count scale with the input.
#[derive(Debug, Clone)]
struct RandomDb {
    researchers: Vec<usize>,
    offices: Vec<(usize, usize)>,
    buildings: Vec<(usize, usize)>,
}

fn db_strategy() -> impl Strategy<Value = RandomDb> {
    (
        prop::collection::vec(0..10usize, 1..10),
        prop::collection::vec((0..10usize, 0..6usize), 0..8),
        prop::collection::vec((0..6usize, 0..4usize), 0..6),
    )
        .prop_map(|(researchers, offices, buildings)| RandomDb {
            researchers,
            offices,
            buildings,
        })
}

impl RandomDb {
    fn to_database(&self, schema: &Schema) -> Database {
        let mut builder = Database::builder(schema.clone());
        for &r in &self.researchers {
            builder = builder.fact("Researcher", [format!("p{r}")]);
        }
        for &(r, o) in &self.offices {
            builder = builder.fact("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        for &(o, b) in &self.buildings {
            builder = builder.fact("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
        builder.build().unwrap()
    }

    fn to_txn(&self, tag: &str) -> Txn {
        let mut txn = Txn::new();
        for &r in &self.researchers {
            txn = txn.insert("Researcher", [format!("{tag}p{r}")]);
        }
        for &(r, o) in &self.offices {
            txn = txn.insert("HasOffice", [format!("{tag}p{r}"), format!("{tag}o{o}")]);
        }
        for &(o, b) in &self.buildings {
            txn = txn.insert("InBuilding", [format!("{tag}o{o}"), format!("{tag}b{b}")]);
        }
        txn
    }
}

/// Asserts `count`/`exists` against a full drain of the cursor, for one
/// instance and one semantics.
fn assert_aggregates_match(instance: &PreparedInstance, semantics: Semantics) {
    let mut stream = instance.answers(semantics).unwrap();
    let drained = (&mut stream).count() as u64;
    assert!(stream.error().is_none(), "stream ended with an error");
    assert_eq!(
        instance.count(semantics).unwrap(),
        drained,
        "count() diverges from drain ({semantics:?}, {} shards)",
        instance.shard_count()
    );
    assert_eq!(
        instance.exists(semantics).unwrap(),
        drained > 0,
        "exists() diverges from next().is_some() ({semantics:?})",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Count and exists equivalence across semantics × sharding × random
    /// databases.
    #[test]
    fn count_and_exists_agree_with_draining(
        random_db in db_strategy(),
        threads in 1..5usize,
    ) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let db = random_db.to_database(omq.data_schema());
            for instance in [
                plan.execute(&db).unwrap(),
                plan.execute_parallel(&db, threads).unwrap(),
            ] {
                for semantics in Semantics::ALL {
                    assert_aggregates_match(&instance, semantics);
                }
            }
        }
    }

    /// The equivalences hold across store commits: on instances executed
    /// from each head and on instances refreshed incrementally from their
    /// predecessor.
    #[test]
    fn count_and_exists_survive_commits(
        first in db_strategy(),
        second in db_strategy(),
    ) {
        for omq in [office_omq(), building_omq()] {
            let plan = QueryPlan::compile(&omq).unwrap();
            let mut store = Store::new(omq.data_schema().clone());
            store.commit(first.to_txn("a")).unwrap();
            let head_one = store.snapshot();
            let base = plan.execute_tracked(head_one.database()).unwrap();
            for semantics in Semantics::ALL {
                assert_aggregates_match(&base, semantics);
            }
            let receipt = store.commit(second.to_txn("b")).unwrap();
            let head_two = store.snapshot();
            let refreshed = base.refresh(head_two.database(), &receipt).unwrap();
            let rebuilt = plan.execute(head_two.database()).unwrap();
            for semantics in Semantics::ALL {
                assert_aggregates_match(&refreshed, semantics);
                assert_aggregates_match(&rebuilt, semantics);
                prop_assert_eq!(
                    refreshed.count(semantics).unwrap(),
                    rebuilt.count(semantics).unwrap(),
                    "refreshed and rebuilt counts diverge ({:?})", semantics
                );
            }
        }
    }
}

/// `ServingEngine::count` reports the drained length of the unbounded
/// request, at the served epoch, ignoring the request's window.
#[test]
fn served_counts_match_served_answer_sets() {
    let omq = building_omq();
    let mut engine = ServingEngine::new(2);
    let id = engine.register_query("buildings", &omq).unwrap();
    engine
        .register_data(
            Txn::new()
                .insert("Researcher", ["mary"])
                .insert("Researcher", ["john"])
                .insert("HasOffice", ["mary", "room1"])
                .insert("InBuilding", ["room1", "main"]),
        )
        .unwrap();
    for semantics in Semantics::ALL {
        let windowed = Request::new(id, semantics).with_offset(1).with_limit(1);
        let counted = engine.count(&windowed).unwrap();
        let drained = engine
            .serve_stream(&Request::new(id, semantics))
            .unwrap()
            .count() as u64;
        assert_eq!(counted.count, drained, "{semantics:?}");
        assert_eq!(counted.epoch, Some(engine.epoch()));
        assert_eq!(counted.exists, drained > 0);
        assert_eq!(engine.exists(&windowed).unwrap(), drained > 0);
    }
}
