//! Differential harness for incremental maintenance: a chain of
//! [`PreparedInstance::refresh`] calls over a random commit workload must be
//! observationally identical to evaluating every head from scratch.
//!
//! The contract under test:
//!
//! * **equivalence** — after every commit, the maintained instance's answer
//!   multiset equals a from-scratch [`QueryPlan::execute`] *and* a
//!   from-scratch [`QueryPlan::execute_parallel`] of the new head, under all
//!   three [`Semantics`];
//! * **fallback soundness** — commits the delta-chase cannot absorb
//!   component-locally (new relations mid-stream, component-merging
//!   inserts) silently degrade to a full rebuild, never to a wrong answer;
//! * **no-effect commits** — empty and all-duplicate transactions keep the
//!   answers unchanged (and, per the unit tests, reuse every shard);
//! * **self-healing** — refreshing with a stale or skipped receipt (or from
//!   an untracked instance) rebuilds instead of splicing garbage.
//!
//! The unit tests in `omq-core` pin down *how* each case is handled
//! (pointer reuse counts, fallback triggers); this suite only asserts the
//! end-to-end semantics, so it stays valid under any future refresh
//! strategy.

use omq::prelude::*;
use proptest::prelude::*;

/// The office OMQ of the running example: guarded, acyclic, free-connex.
fn office_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "Researcher(x) -> exists y. HasOffice(x, y)\n\
         HasOffice(x, y) -> Office(y)\n\
         Office(x) -> exists y. InBuilding(x, y)",
    )
    .unwrap();
    let query =
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
    OntologyMediatedQuery::new(ontology, query).unwrap()
}

/// One commit of the random workload.  The non-`Facts` variants target the
/// paths where the delta-chase must refuse to be incremental.
#[derive(Debug, Clone)]
enum CommitOp {
    /// A plain batch of office facts — the common, component-local case.
    Facts(Vec<(usize, usize, usize)>),
    /// Replays the initial load verbatim: every fact is a duplicate, so the
    /// commit has no effect (`new_facts == 0`).
    Duplicate,
    /// Wires offices `o{a}` and `o{b}` into one building, merging their
    /// Gaifman components when they were previously separate.
    Bridge(usize, usize),
    /// Adds a relation the query never mentions (idempotent on repeats) and
    /// a fact in it — schema growth forces a full rebuild, and on repeats
    /// the delta lands in a component that contributes no answers.
    AddRelation(usize),
    /// A transaction with no operations at all.
    Empty,
}

impl CommitOp {
    fn to_txn(&self, initial: &[(usize, usize, usize)]) -> Txn {
        match self {
            CommitOp::Facts(batch) => txn_of(batch),
            CommitOp::Duplicate => txn_of(initial),
            CommitOp::Bridge(a, b) => Txn::new()
                .insert("InBuilding", [format!("o{a}"), "bridged".to_owned()])
                .insert("InBuilding", [format!("o{b}"), "bridged".to_owned()]),
            CommitOp::AddRelation(i) => {
                let name = format!("Aux{i}");
                Txn::new()
                    .add_relation(&name, 1)
                    .insert(&name, [format!("aux{i}")])
            }
            CommitOp::Empty => Txn::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct RandomWorkload {
    initial: Vec<(usize, usize, usize)>,
    commits: Vec<CommitOp>,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    let triple = || (0..12usize, 0..8usize, 0..4usize);
    // Plain fact batches listed twice: they should dominate the mix, with
    // the fallback-triggering variants sprinkled in.
    let batch = || prop::collection::vec(triple(), 1..6).prop_map(CommitOp::Facts);
    let op = prop_oneof![
        batch(),
        batch(),
        Just(CommitOp::Duplicate),
        (0..8usize, 0..8usize).prop_map(|(a, b)| CommitOp::Bridge(a, b)),
        (0..3usize).prop_map(CommitOp::AddRelation),
        Just(CommitOp::Empty),
    ];
    (
        prop::collection::vec(triple(), 1..10),
        prop::collection::vec(op, 1..6),
    )
        .prop_map(|(initial, commits)| RandomWorkload { initial, commits })
}

/// Same fact-dropping scheme as `tests/store_sessions.rs`, so incomplete
/// chains (wildcard answers) keep showing up in every semantics.
fn txn_of(batch: &[(usize, usize, usize)]) -> Txn {
    let mut txn = Txn::new();
    for &(r, o, b) in batch {
        txn = txn.insert("Researcher", [format!("p{r}")]);
        if r % 3 != 0 {
            txn = txn.insert("HasOffice", [format!("p{r}"), format!("o{o}")]);
        }
        if b % 2 == 0 {
            txn = txn.insert("InBuilding", [format!("o{o}"), format!("b{b}")]);
        }
    }
    txn
}

/// Renders an instance's answers as a sorted multiset of strings.
fn answer_multiset(instance: &PreparedInstance, semantics: Semantics) -> Vec<String> {
    let mut rendered: Vec<String> = instance
        .answers(semantics)
        .unwrap()
        .map(|a| instance.format_answer(&a))
        .collect();
    rendered.sort();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The central differential property: after every commit of a random
    /// workload, the incrementally maintained instance agrees with
    /// from-scratch sequential *and* parallel evaluation of the head, under
    /// every semantics.
    #[test]
    fn refresh_chain_matches_from_scratch_evaluation(workload in workload_strategy()) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();
        let mut maintained = plan.execute_tracked(store.snapshot()).unwrap();

        for op in &workload.commits {
            let receipt = store.commit(op.to_txn(&workload.initial)).unwrap();
            let head = store.snapshot();
            maintained = maintained.refresh(&head, &receipt).unwrap();

            let scratch = plan.execute(&head).unwrap();
            let parallel = plan.execute_parallel(&head, 3).unwrap();
            for sem in Semantics::ALL {
                let want = answer_multiset(&scratch, sem);
                prop_assert_eq!(answer_multiset(&maintained, sem), want.clone());
                prop_assert_eq!(answer_multiset(&parallel, sem), want);
            }
        }
    }

    /// Receipts may be dropped on the floor: refreshing with only the
    /// *latest* receipt after several unseen commits must still converge to
    /// the head (by rebuilding), and the chain stays incremental afterwards.
    #[test]
    fn refresh_self_heals_across_skipped_receipts(
        workload in workload_strategy(),
        skip in 1..4usize,
    ) {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = Store::new(omq.data_schema().clone());
        store.commit(txn_of(&workload.initial)).unwrap();
        let mut maintained = plan.execute_tracked(store.snapshot()).unwrap();

        let mut last_receipt = None;
        for (i, op) in workload.commits.iter().enumerate() {
            let receipt = store.commit(op.to_txn(&workload.initial)).unwrap();
            // Only every `skip`-th receipt is delivered to the maintainer.
            if i % skip == 0 {
                last_receipt = Some(receipt);
            }
        }
        if let Some(receipt) = last_receipt {
            let head = store.snapshot();
            maintained = maintained.refresh(&head, &receipt).unwrap();
            let scratch = plan.execute(&head).unwrap();
            for sem in Semantics::ALL {
                prop_assert_eq!(
                    answer_multiset(&maintained, sem),
                    answer_multiset(&scratch, sem)
                );
            }
        }
    }
}

/// The named fallback cases, deterministically: a new relation mid-stream, a
/// component-merging insert, and an empty commit, refreshed in sequence over
/// one store, each checked against a from-scratch evaluation.
#[test]
fn fallback_cases_stay_equivalent() {
    let omq = office_omq();
    let plan = QueryPlan::compile(&omq).unwrap();
    let mut store = Store::new(omq.data_schema().clone());
    store
        .commit(
            Txn::new()
                .insert("Researcher", ["mary"])
                .insert("HasOffice", ["mary", "room1"])
                .insert("InBuilding", ["room1", "main1"])
                .insert("Researcher", ["john"])
                .insert("HasOffice", ["john", "room2"]),
        )
        .unwrap();
    let mut maintained = plan.execute_tracked(store.snapshot()).unwrap();

    let commits = [
        // Schema growth: the delta-chase cannot splice, must rebuild.
        Txn::new()
            .add_relation("Lab", 2)
            .insert("Lab", ["mary", "l1"]),
        // Component merge: room1's and room2's components become one.
        Txn::new().insert("InBuilding", ["room2", "main1"]),
        // No-effect: a duplicate of an existing fact.
        Txn::new().insert("Researcher", ["mary"]),
        // Empty transaction.
        Txn::new(),
        // And a plain component-local delta to show the chain recovered.
        Txn::new()
            .insert("Researcher", ["ada"])
            .insert("HasOffice", ["ada", "lab9"])
            .insert("InBuilding", ["lab9", "west"]),
    ];
    for txn in commits {
        let receipt = store.commit(txn).unwrap();
        let head = store.snapshot();
        maintained = maintained.refresh(&head, &receipt).unwrap();
        let scratch = plan.execute(&head).unwrap();
        for sem in Semantics::ALL {
            assert_eq!(
                answer_multiset(&maintained, sem),
                answer_multiset(&scratch, sem)
            );
        }
    }
    // The last delta was absorbed incrementally, not by rebuild.
    assert!(maintained.stats().reused_shards > 0);
}
