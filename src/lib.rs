//! # omq — efficiently enumerating answers to ontology-mediated queries
//!
//! A Rust implementation of *Efficiently Enumerating Answers to
//! Ontology-Mediated Queries* (Carsten Lutz, Marcin Przybyłko, PODS 2022).
//!
//! An **ontology-mediated query** (OMQ) `Q = (O, S, q)` pairs a conjunctive
//! query `q` with an ontology `O` — here a set of guarded tuple-generating
//! dependencies (TGDs) or an ELI description-logic ontology — that injects
//! domain knowledge when querying incomplete data.  This crate provides:
//!
//! * **complete (certain) answers**: single-testing in linear time,
//!   all-testing with constant-time tests, and enumeration with linear-time
//!   preprocessing and constant delay for acyclic, free-connex acyclic OMQs;
//! * **minimal partial answers**: answers that may contain the wildcard `*`
//!   (or multi-wildcards `*1, *2, …`) standing for objects whose existence is
//!   implied by the ontology but whose identity is unknown — enumerated with
//!   linear-time preprocessing and constant delay (Algorithms 1 and 2 of the
//!   paper);
//! * a **compile-once/execute-many pipeline**: `QueryPlan` compiles the
//!   query-side artefacts (acyclicity classification, join trees, reduced
//!   relation layout, chase rule-trigger tables) once per OMQ and evaluates
//!   them over any number of databases via `QueryPlan::execute` — see
//!   `examples/plan_reuse.rs`;
//! * **shared-nothing parallel execution**: `QueryPlan::execute_parallel`
//!   shards a database by Gaifman connected component (sound under
//!   guardedness — the chase never crosses components) and chases +
//!   enumerates the shards on scoped threads, merging answer streams
//!   without losing constant delay;
//! * a **unified lazy answer cursor**: `PreparedInstance::answers(Semantics)`
//!   returns an `AnswerStream` — an `Iterator<Item = Answer>` over any of the
//!   three semantics with constant work per `next()`, so `take(k)` costs
//!   `O(k)` beyond the linear preprocessing; the stream owns its data and
//!   survives the instance it came from (resumable pagination);
//! * a **batch-serving front end**: `ServingEngine` holds a catalogue of
//!   compiled plans and serves batches of (query, database) requests across
//!   a fixed worker pool, with per-request `limit`/`offset` windows and a
//!   `serve_stream` entry point handing out the lazy cursor itself;
//! * all the substrates required along the way: a relational data model with
//!   dense columnar indexes, conjunctive-query machinery (join trees,
//!   acyclicity notions), the chase, the query-directed chase, and a
//!   linear-time Horn minimal-model solver.
//!
//! ## Quick start
//!
//! ```
//! use omq::prelude::*;
//!
//! // The running example of the paper (Example 1.1).
//! let ontology = Ontology::parse(
//!     "Researcher(x) -> exists y. HasOffice(x, y)\n\
//!      HasOffice(x, y) -> Office(y)\n\
//!      Office(x) -> exists y. InBuilding(x, y)",
//! )?;
//! let query = ConjunctiveQuery::parse(
//!     "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)",
//! )?;
//! let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//! let db = Database::builder(omq.data_schema().clone())
//!     .fact("Researcher", ["mary"])
//!     .fact("Researcher", ["john"])
//!     .fact("Researcher", ["mike"])
//!     .fact("HasOffice", ["mary", "room1"])
//!     .fact("HasOffice", ["john", "room4"])
//!     .fact("InBuilding", ["room1", "main1"])
//!     .build()?;
//!
//! // Linear-time preprocessing (query-directed chase), then constant-delay
//! // enumeration through the unified lazy cursor.
//! let engine = OmqEngine::preprocess(&omq, &db)?;
//! let complete: Vec<Answer> = engine.answers(Semantics::Complete)?.collect();
//! assert_eq!(complete.len(), 1);
//!
//! // The cursor is pull-based: taking the first k answers costs O(k).
//! let first = engine.answers(Semantics::MinimalPartial)?.next();
//! assert!(first.is_some());
//!
//! let rendered: Vec<String> = engine
//!     .answers(Semantics::MinimalPartial)?
//!     .map(|a| engine.format_answer(&a))
//!     .collect();
//! assert_eq!(rendered.len(), 3); // (mary,room1,main1), (john,room4,*), (mike,*,*)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! experimental validation of the paper's theorems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use omq_chase as chase;
pub use omq_core as core;
pub use omq_cq as cq;
pub use omq_data as data;
pub use omq_serve as serve;

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use omq_chase::{
        chase, query_directed_chase, ChaseConfig, Ontology, OntologyMediatedQuery, QchaseConfig,
        QchasePlan, Tgd,
    };
    pub use omq_core::{
        all_testing::AllTester, baseline::BruteForce, single_testing, AnswerStream, EngineConfig,
        MultiEnumerator, OmqEngine, PartialEnumerator, PlanSkeleton, PreparedInstance,
        PreprocessStats, QueryPlan,
    };
    pub use omq_cq::{acyclicity::AcyclicityReport, Atom, ConjunctiveQuery, Term, VarId};
    pub use omq_data::{
        Answer, ColumnarIndex, ConstId, Database, Fact, MultiTuple, MultiValue, NullId,
        PartialTuple, PartialValue, RelId, Schema, Semantics, Value,
    };
    pub use omq_serve::{
        AnswerSet, Request, Response, ServeError, ServingEngine, StreamedResponse,
    };
}

/// Compile-time thread-safety contract of the serving stack.
///
/// The shared-nothing parallel pipeline hands these types across scoped
/// threads — compiled plans and interner/index artefacts are shared
/// read-only, instances and responses are moved between workers.  Each
/// assertion fails the *build* (not a test) if a refactor introduces a
/// non-`Send`/non-`Sync` field (an `Rc`, a raw pointer, a `RefCell`, …)
/// anywhere in these types.
mod thread_safety {
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync>() {}

    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[allow(dead_code)]
    fn assertions() {
        // Data substrate: databases (with their lazily built columnar
        // indexes and shared interner snapshots) are read concurrently by
        // every shard worker.
        assert_send_sync::<omq_data::Database>();
        assert_send_sync::<omq_data::ColumnarIndex>();
        assert_send_sync::<omq_data::Interner>();
        assert_send_sync::<omq_data::Schema>();
        // Chase: one compiled chase plan is shared by all executions, with
        // the bag-type memo behind a read-mostly lock.
        assert_send_sync::<omq_chase::QchasePlan>();
        // Core: compiled plans are shared, prepared instances are moved.
        assert_send_sync::<omq_core::QueryPlan>();
        assert_send_sync::<omq_core::PreparedInstance>();
        assert_send_sync::<omq_core::PlanSkeleton>();
        // Serving: one engine, many request threads.
        assert_send_sync::<omq_serve::ServingEngine>();
        assert_send_sync::<omq_serve::Request<'static>>();
        assert_send_sync::<omq_serve::Response>();
        // Cursors are moved into per-request handler tasks.
        assert_send::<omq_core::AnswerStream>();
        assert_send::<omq_serve::StreamedResponse>();
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let db = Database::builder(omq.data_schema().clone())
            .fact("A", ["a"])
            .build()
            .unwrap();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        assert_eq!(engine.answers(Semantics::Complete).unwrap().count(), 0);
        assert_eq!(
            engine.answers(Semantics::MinimalPartial).unwrap().count(),
            1
        );
    }
}
