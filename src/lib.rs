//! # omq — efficiently enumerating answers to ontology-mediated queries
//!
//! A Rust implementation of *Efficiently Enumerating Answers to
//! Ontology-Mediated Queries* (Carsten Lutz, Marcin Przybyłko, PODS 2022).
//!
//! An **ontology-mediated query** (OMQ) `Q = (O, S, q)` pairs a conjunctive
//! query `q` with an ontology `O` — here a set of guarded tuple-generating
//! dependencies (TGDs) or an ELI description-logic ontology — that injects
//! domain knowledge when querying incomplete data.  This crate provides:
//!
//! * **complete (certain) answers**: single-testing in linear time,
//!   all-testing with constant-time tests, and enumeration with linear-time
//!   preprocessing and constant delay for acyclic, free-connex acyclic OMQs;
//! * **minimal partial answers**: answers that may contain the wildcard `*`
//!   (or multi-wildcards `*1, *2, …`) standing for objects whose existence is
//!   implied by the ontology but whose identity is unknown — enumerated with
//!   linear-time preprocessing and constant delay (Algorithms 1 and 2 of the
//!   paper);
//! * a **compile-once/execute-many pipeline**: `QueryPlan` compiles the
//!   query-side artefacts once per OMQ and evaluates them over any number of
//!   databases (or store snapshots) via `QueryPlan::execute` — see
//!   `examples/plan_reuse.rs`;
//! * **shared-nothing parallel execution**: `QueryPlan::execute_parallel`
//!   shards a database by Gaifman connected component (sound under
//!   guardedness) and chases + enumerates the shards on scoped threads,
//!   merging answer streams without losing constant delay;
//! * **distributed execution**: `omq::cluster::execute` runs the same
//!   sharded pipeline across worker *processes* — a coordinator ships fact
//!   shards over the wire, places them with a work-stealing queue, survives
//!   worker death by reassigning unacknowledged shards, and reduces the
//!   returned pages into an ordinary `AnswerStream`;
//! * a **unified lazy answer cursor**: `PreparedInstance::answers(Semantics)`
//!   returns an `AnswerStream` — an `Iterator<Item = Answer>` over any of the
//!   three semantics with constant work per `next()`, so `take(k)` costs
//!   `O(k)` beyond the linear preprocessing; the stream owns its data and
//!   survives the instance it came from (resumable pagination);
//! * a **session-oriented serving layer**: a long-lived `Store` with
//!   transactional batch ingestion (`Txn`) and copy-on-write, epoch-tagged
//!   `Snapshot`s, plus a `ServingEngine` that owns one store and a catalogue
//!   of named compiled plans.  Owned `Request`s reference queries by
//!   id/name and data by snapshot; every request pins a snapshot, so
//!   concurrent commits never invalidate an in-flight answer stream — see
//!   `examples/live_store.rs`;
//! * all the substrates required along the way: a relational data model with
//!   dense columnar indexes, conjunctive-query machinery (join trees,
//!   acyclicity notions), the chase, the query-directed chase, and a
//!   linear-time Horn minimal-model solver.
//!
//! ## Quick start: a serving session
//!
//! ```
//! use omq::prelude::*;
//!
//! // The running example of the paper (Example 1.1).
//! let ontology = Ontology::parse(
//!     "Researcher(x) -> exists y. HasOffice(x, y)\n\
//!      HasOffice(x, y) -> Office(y)\n\
//!      Office(x) -> exists y. InBuilding(x, y)",
//! )?;
//! let query = ConjunctiveQuery::parse(
//!     "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)",
//! )?;
//! let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//! // A session: the engine owns a mutable fact store plus a catalogue of
//! // compiled plans.  Registering the query compiles it once and teaches
//! // the store its data schema.
//! let mut engine = ServingEngine::new(2);
//! let q = engine.register_query("offices", &omq)?;
//!
//! // Ingestion is transactional: a `Txn` commits atomically (or not at all).
//! engine.register_data(
//!     Txn::new()
//!         .insert("Researcher", ["mary"])
//!         .insert("Researcher", ["john"])
//!         .insert("Researcher", ["mike"])
//!         .insert("HasOffice", ["mary", "room1"])
//!         .insert("HasOffice", ["john", "room4"])
//!         .insert("InBuilding", ["room1", "main1"]),
//! )?;
//!
//! // Requests are owned values; by default they pin the store head.
//! let response = engine.serve_one(&Request::new(q, Semantics::MinimalPartial))?;
//! assert_eq!(response.answers.len(), 3); // (mary,room1,main1), (john,room4,*), (mike,*,*)
//!
//! // Snapshot isolation: a pinned snapshot never changes, however many
//! // commits happen — and fresh requests see new facts with no recompile.
//! let pinned = engine.snapshot();
//! engine.register_data(
//!     Txn::new()
//!         .insert("HasOffice", ["mike", "room9"])
//!         .insert("InBuilding", ["room9", "main1"]),
//! )?;
//! let old = engine.serve_one(&Request::new(q, Semantics::Complete).at(pinned))?;
//! let new = engine.serve_one(&Request::new(q, Semantics::Complete))?;
//! assert_eq!(old.answers.len(), 1); // (mary,room1,main1)
//! assert_eq!(new.answers.len(), 2); // + (mike,room9,main1)
//! # Ok::<(), omq::Error>(())
//! ```
//!
//! ## One error type across the stack
//!
//! Every layer has its own error; the facade's [`enum@Error`] unifies them so
//! one `?` works end to end, with [`std::error::Error::source`] chains back
//! to the originating layer:
//!
//! ```
//! use omq::prelude::*;
//!
//! fn pipeline() -> omq::Result<usize> {
//!     let ontology = Ontology::parse("A(x) -> exists y. R(x, y)")?; // chase layer
//!     let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y)")?; // cq layer
//!     let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//!     let mut store = Store::new(omq.data_schema().clone());
//!     store.commit(Txn::new().insert("A", ["a"]))?; // data layer
//!
//!     let plan = QueryPlan::compile(&omq)?; // core layer
//!     let instance = plan.execute(&store.snapshot())?;
//!     Ok(instance.answers(Semantics::MinimalPartial)?.count())
//! }
//! assert_eq!(pipeline().unwrap(), 1);
//!
//! // The layer stays inspectable through the source chain.
//! let err = omq::Error::from(omq::data::DataError::UnknownRelation("R".into()));
//! assert!(std::error::Error::source(&err).is_some());
//! ```
//!
//! See `DESIGN.md` for the system inventory (including the store/session
//! model) and `EXPERIMENTS.md` for the experimental validation of the
//! paper's theorems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use omq_chase as chase;
pub use omq_cluster as cluster;
pub use omq_core as core;
pub use omq_cq as cq;
pub use omq_data as data;
pub use omq_serve as serve;
pub use omq_server as server;

mod error;

pub use error::{Error, Result};

/// The most commonly used types, re-exported for convenient glob imports.
///
/// The facade [`enum@Error`]/[`Result`] deliberately stay at the crate root
/// (`omq::Error`, `omq::Result`): a glob import must not shadow
/// `std::result::Result` or the caller's own error type.
pub mod prelude {
    pub use omq_chase::{
        chase, query_directed_chase, ChaseConfig, Ontology, OntologyMediatedQuery, QchaseConfig,
        QchasePlan, Tgd,
    };
    pub use omq_core::{
        all_testing::AllTester, baseline::BruteForce, single_testing, AnswerStream, EngineConfig,
        MultiEnumerator, OmqEngine, PartialEnumerator, PlanSkeleton, PreparedInstance,
        PreprocessStats, QueryPlan,
    };
    pub use omq_cq::{acyclicity::AcyclicityReport, Atom, ConjunctiveQuery, Term, VarId};
    pub use omq_data::{
        Answer, ColumnarIndex, CommitReceipt, ConstId, Database, Fact, MultiTuple, MultiValue,
        NullId, PartialTuple, PartialValue, RelId, Schema, Semantics, Snapshot, Store, Txn, Value,
    };
    pub use omq_serve::{
        AnswerSet, CountResponse, DataRef, QueryId, QueryRef, Request, Response, ServeError,
        ServingEngine, StreamedResponse,
    };
    pub use omq_server::{Client, ErrorCode, QueryTarget, Server, ServerConfig, TxnOp};

    pub use omq_cluster::{ClusterConfig, ClusterRun, ClusterStats, WorkerSpawn};
}

/// Compile-time thread-safety contract of the serving stack.
///
/// The shared-nothing parallel pipeline hands these types across scoped
/// threads — compiled plans, store snapshots, and interner/index artefacts
/// are shared read-only; requests, instances, and responses are moved
/// between workers.  Each assertion fails the *build* (not a test) if a
/// refactor introduces a non-`Send`/non-`Sync` field (an `Rc`, a raw
/// pointer, a `RefCell`, …) anywhere in these types.
mod thread_safety {
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync>() {}

    #[allow(dead_code)]
    fn assert_send<T: Send>() {}

    #[allow(dead_code)]
    fn assertions() {
        // Data substrate: databases (with their lazily built columnar
        // indexes and shared interner snapshots) are read concurrently by
        // every shard worker; stores move into writer tasks and snapshots
        // fan out to arbitrarily many reader threads.
        assert_send_sync::<omq_data::Database>();
        assert_send_sync::<omq_data::ColumnarIndex>();
        assert_send_sync::<omq_data::Interner>();
        assert_send_sync::<omq_data::Schema>();
        assert_send_sync::<omq_data::Store>();
        assert_send_sync::<omq_data::Snapshot>();
        assert_send_sync::<omq_data::Txn>();
        // Chase: one compiled chase plan is shared by all executions, with
        // the bag-type memo behind a read-mostly lock.
        assert_send_sync::<omq_chase::QchasePlan>();
        // Core: compiled plans are shared, prepared instances are moved.
        assert_send_sync::<omq_core::QueryPlan>();
        assert_send_sync::<omq_core::PreparedInstance>();
        assert_send_sync::<omq_core::PlanSkeleton>();
        // Serving: one engine, many request threads; requests are owned
        // values (no lifetime) shipped into workers.
        assert_send_sync::<omq_serve::ServingEngine>();
        assert_send_sync::<omq_serve::Request>();
        assert_send_sync::<omq_serve::Response>();
        assert_send_sync::<omq_serve::CountResponse>();
        // The facade error crosses thread boundaries inside responses.
        assert_send_sync::<crate::Error>();
        // Cursors are moved into per-request handler tasks.
        assert_send::<omq_core::AnswerStream>();
        assert_send::<omq_serve::StreamedResponse>();
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let db = Database::builder(omq.data_schema().clone())
            .fact("A", ["a"])
            .build()
            .unwrap();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        assert_eq!(engine.answers(Semantics::Complete).unwrap().count(), 0);
        assert_eq!(
            engine.answers(Semantics::MinimalPartial).unwrap().count(),
            1
        );
    }

    #[test]
    fn facade_session_types_work_together() {
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut engine = ServingEngine::new(2);
        let q = engine.register_query("r", &omq).unwrap();
        engine.register_data(Txn::new().insert("A", ["a"])).unwrap();
        let pinned = engine.snapshot();
        engine
            .register_data(Txn::new().insert("R", ["a", "b"]))
            .unwrap();
        let old = engine
            .serve_one(&Request::new(q, Semantics::Complete).at(pinned))
            .unwrap();
        assert!(old.answers.is_empty());
        let new = engine
            .serve_one(&Request::new(q, Semantics::Complete))
            .unwrap();
        assert_eq!(new.answers.len(), 1);
    }
}
