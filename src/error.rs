//! The facade-level error type: one [`enum@Error`] for the whole stack.
//!
//! Every layer of the workspace has its own error type (`omq_data::DataError`,
//! `omq_cq::CqError`, `omq_chase::ChaseError`, `omq_core::CoreError`,
//! `omq_serve::ServeError`).  [`enum@Error`] unifies them behind `From`
//! conversions, so one `?` works across layers in application code, and
//! implements [`std::error::Error::source`] so the originating layer stays
//! inspectable through the standard chain.

use std::fmt;

/// Any error of the OMQ stack, tagged by the layer it originated in.
///
/// Constructed via the `From` impls (i.e. by `?`); match on the variant to
/// dispatch by layer, or walk [`std::error::Error::source`] to find root
/// causes (layers wrap each other: a `Core` error may carry a `Chase` error
/// carrying a `Data` error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Data-model layer: schemas, databases, the store (`omq-data`).
    Data(omq_data::DataError),
    /// Conjunctive-query layer: parsing, acyclicity (`omq-cq`).
    Cq(omq_cq::CqError),
    /// Ontology/chase layer: TGDs, the query-directed chase (`omq-chase`).
    Chase(omq_chase::ChaseError),
    /// Core engine layer: plans, enumeration, testing (`omq-core`).
    Core(omq_core::CoreError),
    /// Serving layer: catalogue, sessions, requests (`omq-serve`).
    Serve(omq_serve::ServeError),
    /// Distributed layer: coordinator/worker runs (`omq-cluster`).
    Cluster(omq_cluster::ClusterError),
}

impl Error {
    /// The wire [`ErrorCode`](omq_server::ErrorCode) this error maps onto
    /// when it crosses the `omq-server` network boundary.
    ///
    /// The classification lives in `omq-server` (one table for in-process
    /// and over-the-wire callers); this method dispatches by originating
    /// layer.  Codes below 500 mean the request was at fault (unknown
    /// query, schema mismatch, ill-formed query text); 5xx codes mean the
    /// server side failed — see
    /// [`ErrorCode::is_client_error`](omq_server::ErrorCode::is_client_error).
    pub fn wire_code(&self) -> omq_server::ErrorCode {
        match self {
            Error::Data(e) => omq_server::ErrorCode::for_data(e),
            Error::Cq(e) => omq_server::ErrorCode::for_cq(e),
            Error::Chase(e) => omq_server::ErrorCode::for_chase(e),
            Error::Core(e) => omq_server::ErrorCode::for_core(e),
            Error::Serve(e) => omq_server::wire_code_for_serve(e),
            Error::Cluster(e) => e.wire_code(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prefix the originating layer (the workspace convention, cf.
        // `CoreError::Cq` → "query error: …") rather than delegating
        // verbatim, so chain printers that walk `source()` do not show the
        // identical message twice in a row.
        match self {
            Error::Data(e) => write!(f, "data layer: {e}"),
            Error::Cq(e) => write!(f, "query layer: {e}"),
            Error::Chase(e) => write!(f, "chase layer: {e}"),
            Error::Core(e) => write!(f, "core layer: {e}"),
            Error::Serve(e) => write!(f, "serving layer: {e}"),
            Error::Cluster(e) => write!(f, "cluster layer: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            Error::Cq(e) => Some(e),
            Error::Chase(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Cluster(e) => Some(e),
        }
    }
}

impl From<omq_data::DataError> for Error {
    fn from(e: omq_data::DataError) -> Self {
        Error::Data(e)
    }
}

impl From<omq_cq::CqError> for Error {
    fn from(e: omq_cq::CqError) -> Self {
        Error::Cq(e)
    }
}

impl From<omq_chase::ChaseError> for Error {
    fn from(e: omq_chase::ChaseError) -> Self {
        Error::Chase(e)
    }
}

impl From<omq_core::CoreError> for Error {
    fn from(e: omq_core::CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<omq_serve::ServeError> for Error {
    fn from(e: omq_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<omq_cluster::ClusterError> for Error {
    fn from(e: omq_cluster::ClusterError) -> Self {
        Error::Cluster(e)
    }
}

/// Convenient `Result` alias over the facade [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_sources_cover_every_layer() {
        let data: Error = omq_data::DataError::UnknownRelation("R".into()).into();
        assert!(matches!(data, Error::Data(_)));
        assert!(data.source().is_some());

        let cq: Error = omq_cq::CqError::Parse("bad".into()).into();
        assert!(matches!(cq, Error::Cq(_)));

        let chase: Error = omq_chase::ChaseError::NotGuarded("t".into()).into();
        assert!(matches!(chase, Error::Chase(_)));

        // A nested error keeps its full chain: Core -> Chase -> Data.
        let nested: Error = omq_core::CoreError::Chase(omq_chase::ChaseError::Data(
            omq_data::DataError::UnknownRelation("R".into()),
        ))
        .into();
        let chase_src = nested.source().unwrap().source().unwrap();
        assert!(chase_src.source().is_some());
        assert!(chase_src.source().unwrap().source().is_none());

        let serve: Error =
            omq_serve::ServeError::Data(omq_data::DataError::NonCanonicalWildcards).into();
        assert!(matches!(serve, Error::Serve(_)));
        assert!(serve.source().unwrap().source().is_some());

        let cluster: Error =
            omq_cluster::ClusterError::Cq(omq_cq::CqError::Parse("bad".into())).into();
        assert!(matches!(cluster, Error::Cluster(_)));
        assert!(cluster.source().unwrap().source().is_some());

        // Display prefixes the layer in front of the inner message.
        assert_eq!(
            Error::from(omq_data::DataError::UnknownRelation("R".into())).to_string(),
            format!(
                "data layer: {}",
                omq_data::DataError::UnknownRelation("R".into())
            )
        );
    }

    /// The table: one row per representative error, with the wire code a
    /// client sees and whose fault it is.  A client that gets a 4xx knows
    /// the request itself must change; a 5xx means retry-or-report.
    #[test]
    fn wire_codes_classify_every_layer() {
        use omq_server::ErrorCode;
        let table: &[(Error, ErrorCode, bool)] = &[
            // (error, expected wire code, is the client at fault?)
            (
                omq_data::DataError::UnknownRelation("R".into()).into(),
                ErrorCode::SchemaMismatch,
                true,
            ),
            (
                omq_data::DataError::ArityMismatch {
                    relation: "R".into(),
                    expected: 2,
                    actual: 3,
                }
                .into(),
                ErrorCode::SchemaMismatch,
                true,
            ),
            (
                omq_data::DataError::NonCanonicalWildcards.into(),
                ErrorCode::SchemaMismatch,
                true,
            ),
            (
                omq_data::DataError::StaleIndex {
                    index_revision: 1,
                    database_revision: 2,
                }
                .into(),
                ErrorCode::Internal,
                false,
            ),
            (
                omq_cq::CqError::Parse("bad".into()).into(),
                ErrorCode::BadQuery,
                true,
            ),
            (
                omq_cq::CqError::UnboundAnswerVariable("x".into()).into(),
                ErrorCode::BadQuery,
                true,
            ),
            (
                omq_chase::ChaseError::NotGuarded("t".into()).into(),
                ErrorCode::BadQuery,
                true,
            ),
            (
                omq_chase::ChaseError::ChaseBudgetExceeded { max_facts: 10 }.into(),
                ErrorCode::Internal,
                false,
            ),
            (
                omq_core::CoreError::NotFreeConnex("q".into()).into(),
                ErrorCode::BadQuery,
                true,
            ),
            (
                omq_core::CoreError::UnknownConstant("c".into()).into(),
                ErrorCode::SchemaMismatch,
                true,
            ),
            (
                omq_core::CoreError::Internal("bug".into()).into(),
                ErrorCode::Internal,
                false,
            ),
            (
                omq_serve::ServeError::UnknownQueryName("q".into()).into(),
                ErrorCode::UnknownQuery,
                true,
            ),
            (
                omq_serve::ServeError::UnknownQuery(7).into(),
                ErrorCode::UnknownQuery,
                true,
            ),
            (
                omq_serve::ServeError::DuplicateQuery("q".into()).into(),
                ErrorCode::DuplicateQuery,
                true,
            ),
            // Nested: the classification follows the root cause.
            (
                omq_core::CoreError::Chase(omq_chase::ChaseError::Data(
                    omq_data::DataError::UnknownRelation("R".into()),
                ))
                .into(),
                ErrorCode::SchemaMismatch,
                true,
            ),
            (
                omq_serve::ServeError::Core(omq_core::CoreError::Internal("bug".into())).into(),
                ErrorCode::Internal,
                false,
            ),
            // Distributed runs share the taxonomy: a bad query is the
            // client's fault wherever it fails to compile; infrastructure
            // trouble (no workers, dead sockets) is server-side.
            (
                omq_cluster::ClusterError::Cq(omq_cq::CqError::Parse("bad".into())).into(),
                ErrorCode::BadQuery,
                true,
            ),
            (
                omq_cluster::ClusterError::NoWorkers("timed out".into()).into(),
                ErrorCode::Internal,
                false,
            ),
            (
                omq_cluster::ClusterError::Protocol("stray frame".into()).into(),
                ErrorCode::MalformedFrame,
                true,
            ),
        ];
        for (error, expected, client_fault) in table {
            let code = error.wire_code();
            assert_eq!(code, *expected, "{error}");
            assert_eq!(code.is_client_error(), *client_fault, "{error}");
            // The code survives the wire: u16 round-trip is lossless.
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code), "{error}");
        }
    }
}
