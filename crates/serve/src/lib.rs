//! A session-oriented serving front end: one long-lived [`Store`] plus a
//! catalogue of named, compiled OMQ plans.
//!
//! The compile-once/execute-many split of `omq-core` (`QueryPlan` /
//! `PreparedInstance`) was built for serving workloads: a fixed catalogue of
//! ontology-mediated queries compiled up front, per-request evaluation only
//! charged the data-linear work.  [`ServingEngine`] is that front end, now
//! organised as a **session** over live data:
//!
//! * a **store**: the engine owns one [`Store`] — a mutable fact store with
//!   transactional batch ingestion ([`ServingEngine::register_data`] commits
//!   a [`Txn`]) and cheap copy-on-write [`Snapshot`]s
//!   ([`ServingEngine::snapshot`]).  Registering a query merges its data
//!   schema into the store, so the store always accepts the facts the
//!   catalogue can query;
//! * a **catalogue** of named, compiled [`QueryPlan`]s
//!   ([`ServingEngine::register_query`]), addressable by [`QueryId`] or by
//!   name;
//! * **owned requests**: a [`Request`] is a plain value naming a catalogued
//!   query (by id or name) and the data to evaluate it over — the store head,
//!   a pinned [`Snapshot`], or an ad-hoc database — with optional
//!   `limit`/`offset` work bounds.  Requests borrow nothing, so they can be
//!   built, queued, cloned, and shipped across threads freely;
//! * **snapshot pinning**: [`ServingEngine::serve_batch`] /
//!   [`ServingEngine::serve_stream`] pin one snapshot per request at open
//!   time, so concurrent commits never invalidate an in-flight enumeration —
//!   an [`AnswerStream`] opened on a snapshot keeps yielding after
//!   arbitrarily many commits, and after the engine itself is dropped;
//! * per-request **work bounds**: [`Request::with_limit`] /
//!   [`Request::with_offset`] page through an answer stream without ever
//!   materialising the full answer set (`O(offset + limit)` enumeration work
//!   thanks to the constant-delay cursor);
//! * per-request **data parallelism** via
//!   [`ServingEngine::with_data_parallelism`], which routes executions
//!   through `QueryPlan::execute_parallel` (Gaifman-component sharding).
//!
//! The catalogue and the store head are only mutated through `&mut self`
//! entry points; serving itself is `&self` and `ServingEngine` is
//! `Send + Sync`, so one engine can be shared by any number of reader
//! threads between writes.
//!
//! ```
//! use omq_chase::{Ontology, OntologyMediatedQuery};
//! use omq_cq::ConjunctiveQuery;
//! use omq_serve::{Request, Semantics, ServingEngine, Txn};
//!
//! let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)")?;
//! let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)")?;
//! let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//! // The session: one engine owning a store plus a catalogue.
//! let mut engine = ServingEngine::new(4);
//! let offices = engine.register_query("offices", &omq)?;
//! engine.register_data(
//!     Txn::new()
//!         .insert("Researcher", ["mary"])
//!         .insert("Researcher", ["ada"]),
//! )?;
//!
//! // Requests are owned values naming a query; by default they evaluate
//! // over the store head, pinned per request.
//! let responses = engine.serve_batch(&[
//!     Request::new(offices, Semantics::MinimalPartial).with_limit(1),
//! ]);
//! let response = responses[0].as_ref().unwrap();
//! assert_eq!(response.answers.len(), 1); // (mary, *) — or (ada, *)
//! assert!(response.truncated); // one more answer existed
//!
//! // Pin a snapshot: later commits never change what it answers.
//! let pinned = engine.snapshot();
//! engine.register_data(Txn::new().insert("Researcher", ["bob"]))?;
//! let before =
//!     engine.serve_one(&Request::new(offices, Semantics::MinimalPartial).at(pinned))?;
//! assert_eq!(before.answers.len(), 2);
//!
//! // A fresh request (here by name) sees the new facts — same compiled plan.
//! let after = engine.serve_stream(&Request::by_name("offices", Semantics::MinimalPartial))?;
//! assert_eq!(after.count(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omq_chase::OntologyMediatedQuery;
use omq_core::{
    AnswerStream, CoreError, EngineConfig, PreparedInstance, PreprocessStats, QueryPlan,
};
use omq_data::{Answer, ConstId, Database, MultiTuple, PartialTuple};
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use omq_data::{CommitReceipt, DataError, Semantics, Snapshot, Store, Txn};

/// The answer semantics of a request.
#[deprecated(note = "use `Semantics` — `AnswerMode` is a pre-cursor-API alias")]
pub type AnswerMode = Semantics;

/// Pre-session `Request<'a>` borrowed its database and therefore carried a
/// lifetime.  Requests are owned values now; this alias keeps old type
/// annotations compiling while they migrate.
#[deprecated(note = "requests are owned now — use `Request` (no lifetime parameter)")]
pub type BorrowedRequest<'a> = Request;

/// Errors raised by the serving front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A query name was registered twice.
    DuplicateQuery(String),
    /// A request referenced a query id that is not in the catalogue.
    UnknownQuery(usize),
    /// A request referenced a query name that is not in the catalogue.
    UnknownQueryName(String),
    /// A store/data error bubbled up from ingestion or schema merging.
    Data(DataError),
    /// A compilation or execution error bubbled up from the core engine.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateQuery(name) => {
                write!(f, "query `{name}` is already registered")
            }
            ServeError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            ServeError::UnknownQueryName(name) => write!(f, "unknown query name `{name}`"),
            ServeError::Data(e) => write!(f, "store error: {e}"),
            ServeError::Core(e) => write!(f, "core engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Data(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<DataError> for ServeError {
    fn from(e: DataError) -> Self {
        ServeError::Data(e)
    }
}

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Block size for the serving layer's batched pulls off an [`AnswerStream`]
/// (offset skipping and response collection).  Large enough to amortise the
/// per-block dispatch, small enough to keep bounded-window requests cheap.
const SERVE_BLOCK: usize = 256;

/// Handle to a compiled plan in a [`ServingEngine`] catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

impl QueryId {
    /// The catalogue index behind the handle.  Stable for the lifetime of
    /// the engine (plans are never evicted), so out-of-process front ends
    /// can carry it over a wire and rebuild the handle with
    /// [`QueryId::from_index`].
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a catalogue index (e.g. decoded off a wire).
    /// An index that names no catalogued plan is not an error here — it
    /// fails at use time with [`ServeError::UnknownQuery`].
    pub fn from_index(index: usize) -> QueryId {
        QueryId(index)
    }
}

/// Names a catalogued query inside a [`Request`]: by compiled handle or by
/// registration name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRef {
    /// A [`QueryId`] returned by [`ServingEngine::register_query`].
    Id(QueryId),
    /// The name the query was registered under.
    Name(String),
}

impl From<QueryId> for QueryRef {
    fn from(id: QueryId) -> Self {
        QueryRef::Id(id)
    }
}

impl From<&str> for QueryRef {
    fn from(name: &str) -> Self {
        QueryRef::Name(name.to_owned())
    }
}

impl From<String> for QueryRef {
    fn from(name: String) -> Self {
        QueryRef::Name(name)
    }
}

/// Names the data a [`Request`] evaluates over.
#[derive(Debug, Clone, Default)]
pub enum DataRef {
    /// The engine's store head, pinned to a fresh [`Snapshot`] when the
    /// request is opened (the default).
    #[default]
    Head,
    /// A caller-pinned snapshot: the request sees exactly this epoch, no
    /// matter how many commits happen in between.
    Snapshot(Snapshot),
    /// An ad-hoc database outside the engine's store (e.g. per-tenant data
    /// shipped with the request).
    Database(Arc<Database>),
}

/// One unit of serving work: evaluate a catalogued query over some data,
/// optionally bounded by a result window.
///
/// A request is an **owned value** — it names its query ([`QueryRef`]) and
/// its data ([`DataRef`]) instead of borrowing them, so requests can be
/// built ahead of time, queued, cloned, and moved across threads.  Built in
/// builder style:
///
/// ```ignore
/// Request::new(id, Semantics::MinimalPartial)  // store head…
///     .at(snapshot)                            // …or a pinned snapshot
///     .with_offset(100)
///     .with_limit(50)
/// ```
#[derive(Debug, Clone)]
pub struct Request {
    /// The catalogued query to evaluate (by id or by name).
    pub query: QueryRef,
    /// The data to evaluate it over (store head by default).
    pub data: DataRef,
    /// The answer semantics to produce.
    pub semantics: Semantics,
    /// Maximum number of answers to return (`None` = unbounded).  A bounded
    /// request performs `O(offset + limit)` enumeration work, never
    /// materialising the full answer set.
    pub limit: Option<usize>,
    /// Number of leading answers to skip — the pagination cursor.
    pub offset: usize,
}

impl Request {
    /// Builds an unbounded request over the engine's store head.
    pub fn new(query: impl Into<QueryRef>, semantics: Semantics) -> Self {
        Request {
            query: query.into(),
            data: DataRef::Head,
            semantics,
            limit: None,
            offset: 0,
        }
    }

    /// Builds a request addressing the query by its registration name.
    pub fn by_name(name: &str, semantics: Semantics) -> Self {
        Request::new(name, semantics)
    }

    /// Evaluates over a pinned [`Snapshot`] instead of the store head.  Use
    /// one snapshot across several requests for a consistent multi-request
    /// read (e.g. the pages of one pagination session).
    pub fn at(mut self, snapshot: Snapshot) -> Self {
        self.data = DataRef::Snapshot(snapshot);
        self
    }

    /// Evaluates over an ad-hoc database outside the engine's store.
    /// Accepts an owned [`Database`] or a shared `Arc<Database>` (use the
    /// latter to reuse one database across requests without copying).
    pub fn with_database(mut self, database: impl Into<Arc<Database>>) -> Self {
        self.data = DataRef::Database(database.into());
        self
    }

    /// Pre-session constructor: borrow a database for one request.  The
    /// database is **cloned** into the owned request; callers that reuse a
    /// database across requests should share an `Arc<Database>` via
    /// [`Request::with_database`] instead.
    #[deprecated(
        note = "use `Request::new(query, semantics).with_database(...)` — requests \
                         own their data now"
    )]
    pub fn for_database(query: QueryId, database: &Database, semantics: Semantics) -> Self {
        Request::new(query, semantics).with_database(database.clone())
    }

    /// Caps the number of answers returned.  A million-user front end sets
    /// this on every request: the engine stops enumerating right after the
    /// window (one extra probe detects truncation).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Skips the first `offset` answers — combine with
    /// [`Request::with_limit`] for stateless pagination (the enumeration
    /// order is deterministic for a fixed plan and database; pin one
    /// [`Snapshot`] across the pages to also fix the data).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }
}

/// The answers of one served request, in the semantics the request asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerSet {
    /// Complete answers as constant tuples.
    Complete(Vec<Vec<ConstId>>),
    /// Minimal partial answers.
    Partial(Vec<PartialTuple>),
    /// Minimal partial answers with multi-wildcards.
    Multi(Vec<MultiTuple>),
}

impl AnswerSet {
    /// An empty answer set of the given semantics.
    pub fn empty(semantics: Semantics) -> Self {
        match semantics {
            Semantics::Complete => AnswerSet::Complete(Vec::new()),
            Semantics::MinimalPartial => AnswerSet::Partial(Vec::new()),
            Semantics::MinimalPartialMulti => AnswerSet::Multi(Vec::new()),
        }
    }

    /// The semantics of this answer set.
    pub fn semantics(&self) -> Semantics {
        match self {
            AnswerSet::Complete(_) => Semantics::Complete,
            AnswerSet::Partial(_) => Semantics::MinimalPartial,
            AnswerSet::Multi(_) => Semantics::MinimalPartialMulti,
        }
    }

    /// Appends one answer; the variant must match the set's semantics (which
    /// holds by construction for answers pulled off a stream of the same
    /// semantics).
    fn push(&mut self, answer: Answer) {
        match (self, answer) {
            (AnswerSet::Complete(v), Answer::Complete(t)) => v.push(t),
            (AnswerSet::Partial(v), Answer::Partial(t)) => v.push(t),
            (AnswerSet::Multi(v), Answer::Multi(t)) => v.push(t),
            (set, answer) => unreachable!(
                "stream semantics {:?} yielded mismatched answer {answer:?}",
                set.semantics()
            ),
        }
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        match self {
            AnswerSet::Complete(a) => a.len(),
            AnswerSet::Partial(a) => a.len(),
            AnswerSet::Multi(a) => a.len(),
        }
    }

    /// Returns `true` iff the request produced no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The response to one [`Request`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The query that was evaluated (resolved to its catalogue id).
    pub query: QueryId,
    /// The store epoch the request was served at (`None` for ad-hoc
    /// databases outside the store).
    pub epoch: Option<u64>,
    /// The answers inside the request's `offset`/`limit` window, in the
    /// requested semantics.
    pub answers: AnswerSet,
    /// `true` iff more answers existed beyond the request's window.
    pub truncated: bool,
    /// Preprocessing statistics of the execution behind this response.
    pub stats: PreprocessStats,
}

/// The response to an aggregate request ([`ServingEngine::count`]): the
/// total number of answers of the request's query under its semantics at
/// the served epoch, with no answer tuples materialised along the way.
#[derive(Debug, Clone)]
pub struct CountResponse {
    /// The query that was counted (resolved to its catalogue id).
    pub query: QueryId,
    /// The store epoch the aggregate was served at (`None` for ad-hoc
    /// databases outside the store).
    pub epoch: Option<u64>,
    /// The semantics the answers were counted under.
    pub semantics: Semantics,
    /// Total number of answers — what draining an unbounded [`Request`] of
    /// the same semantics would return, computed without materialising it.
    pub count: u64,
    /// `count > 0`, for symmetry with [`ServingEngine::exists`].
    pub exists: bool,
    /// Preprocessing statistics of the execution behind this aggregate.
    pub stats: PreprocessStats,
}

/// The lazy counterpart of [`Response`]: the request's answer window as a
/// pullable cursor ([`Iterator<Item = Answer>`]).
///
/// The stream owns its data (plan handles plus chased shards), so it is
/// independent of the engine, the request, and the store: it can be parked,
/// resumed, or dropped mid-way, survives concurrent
/// [`ServingEngine::register_data`] commits, and every pulled answer costs
/// constant enumeration work.
#[derive(Debug)]
pub struct StreamedResponse {
    query: QueryId,
    epoch: Option<u64>,
    stats: PreprocessStats,
    stream: AnswerStream,
    /// Answers still to be yielded under the request's limit.
    remaining: Option<usize>,
}

impl StreamedResponse {
    /// The query this stream answers.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// The store epoch pinned by this stream (`None` for ad-hoc databases).
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Preprocessing statistics of the execution behind this stream.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The semantics of the yielded answers.
    pub fn semantics(&self) -> Semantics {
        self.stream.semantics()
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&CoreError> {
        self.stream.error()
    }

    /// Unwraps the underlying raw answer cursor (drops the limit bound).
    pub fn into_stream(self) -> AnswerStream {
        self.stream
    }

    /// Batched pull: appends up to `k` answers to `out` (clipped to the
    /// request's remaining `limit`) and returns how many were appended.
    /// Equivalent to `k` calls to `next()`, at a lower per-answer cost —
    /// see [`AnswerStream::next_batch`].
    pub fn next_batch(&mut self, out: &mut Vec<Answer>, k: usize) -> usize {
        let want = match self.remaining {
            Some(n) => k.min(n),
            None => k,
        };
        let produced = self.stream.next_batch(out, want);
        if let Some(n) = &mut self.remaining {
            *n -= produced;
        }
        produced
    }
}

impl Iterator for StreamedResponse {
    type Item = Answer;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.remaining {
            Some(0) => None,
            Some(n) => {
                let answer = self.stream.next()?;
                *n -= 1;
                Some(answer)
            }
            None => self.stream.next(),
        }
    }
}

impl std::iter::FusedIterator for StreamedResponse {}

/// A serving session: one [`Store`] plus a catalogue of compiled plans and a
/// fixed-size worker pool.  See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct ServingEngine {
    store: Store,
    plans: Vec<(String, QueryPlan)>,
    by_name: FxHashMap<String, usize>,
    workers: usize,
    data_parallelism: usize,
    /// Warm prepared instances over the store head, aligned with `plans`.
    /// Kept fresh by [`ServingEngine::register_data`] via incremental
    /// `PreparedInstance::refresh`; an entry is `None` when warming failed
    /// (the slow per-request path still serves the query).
    warm: Vec<Option<Arc<PreparedInstance>>>,
    /// The store epoch `warm` was computed at; `u64::MAX` marks the cache
    /// invalidated (e.g. after raw [`ServingEngine::store_mut`] access).
    warm_epoch: u64,
}

impl ServingEngine {
    /// Creates an engine with an empty store and a pool of `workers` threads
    /// for batch serving (clamped to at least one).  The store schema grows
    /// automatically as queries are registered; see
    /// [`ServingEngine::with_store`] to start from preloaded data.
    pub fn new(workers: usize) -> Self {
        ServingEngine {
            store: Store::new(omq_data::Schema::new()),
            plans: Vec::new(),
            by_name: FxHashMap::default(),
            workers: workers.max(1),
            data_parallelism: 1,
            warm: Vec::new(),
            warm_epoch: 0,
        }
    }

    /// Replaces the engine's store (e.g. with a bulk-preloaded one).  Any
    /// queries already registered keep their plans; their data schemas are
    /// re-merged into the new store and their warm instances are rebuilt
    /// over the new head.
    pub fn with_store(mut self, store: Store) -> Result<Self> {
        self.store = store;
        for (_, plan) in &self.plans {
            self.store.merge_schema(plan.omq().data_schema())?;
        }
        self.rewarm_all();
        Ok(self)
    }

    /// Additionally shards every execution over up to `threads` threads via
    /// `QueryPlan::execute_parallel` (Gaifman-component sharding).  Useful
    /// when batches are small but the databases are large and
    /// component-rich; for large batches the request-level pool already
    /// saturates the cores.
    pub fn with_data_parallelism(mut self, threads: usize) -> Self {
        self.data_parallelism = threads.max(1);
        self
    }

    /// Number of worker threads used by [`ServingEngine::serve_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's store (read access; commits go through
    /// [`ServingEngine::register_data`]).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store, for operations beyond
    /// [`ServingEngine::register_data`] (bulk preloads, manual schema
    /// merges).  Handing out raw access invalidates the engine's warm
    /// prepared cache; the next [`ServingEngine::register_data`] rebuilds it.
    pub fn store_mut(&mut self) -> &mut Store {
        // The epoch counter starts at 0 and increments, so `u64::MAX` can
        // never equal a real epoch: a permanent "stale" mark until rewarmed.
        self.warm_epoch = u64::MAX;
        &mut self.store
    }

    /// Pins the current store head (see [`Store::snapshot`]): cheap, and
    /// immune to later commits.
    pub fn snapshot(&self) -> Snapshot {
        self.store.snapshot()
    }

    /// The store's current epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Commits a transaction of data changes to the engine's store
    /// (commit-or-rollback; see [`Store::commit`]).  In-flight streams and
    /// pinned snapshots are unaffected; requests opened afterwards against
    /// the head see the new facts — through the same compiled plans, nothing
    /// is recompiled.
    ///
    /// After the commit, every catalogued query's warm prepared instance is
    /// brought forward incrementally via `PreparedInstance::refresh`: only
    /// the Gaifman components the commit touched are re-chased, untouched
    /// shards are shared with the previous instance, and subsequent
    /// store-head requests serve from the refreshed cache with
    /// time-to-first-answer proportional to the delta.
    pub fn register_data(&mut self, txn: Txn) -> Result<CommitReceipt> {
        let receipt = self.store.commit(txn)?;
        let head = self.store.snapshot();
        // Warming is best-effort: a refresh that cannot verify its lineage
        // falls back to a full tracked execution internally, and an entry
        // that errors outright is dropped (the slow path still serves it).
        let mut warm = std::mem::take(&mut self.warm);
        warm.resize(self.plans.len(), None);
        for (entry, (_, plan)) in warm.iter_mut().zip(&self.plans) {
            *entry = match entry.take() {
                Some(prev) => prev.refresh(&head, &receipt).ok().map(Arc::new),
                None => Self::warm_one(plan, &head),
            };
        }
        self.warm = warm;
        self.warm_epoch = self.store.epoch();
        Ok(receipt)
    }

    /// Compiles `omq` with default configuration, adds it to the catalogue
    /// under `name`, and merges its data schema into the store.
    pub fn register_query(&mut self, name: &str, omq: &OntologyMediatedQuery) -> Result<QueryId> {
        let plan = QueryPlan::compile(omq)?;
        self.register_plan(name, plan)
    }

    /// Compiles `omq` with an explicit configuration and catalogues it.
    pub fn register_query_with(
        &mut self,
        name: &str,
        omq: &OntologyMediatedQuery,
        config: &EngineConfig,
    ) -> Result<QueryId> {
        let plan = QueryPlan::compile_with(omq, config)?;
        self.register_plan(name, plan)
    }

    /// Adds an already-compiled plan to the catalogue under `name`, merging
    /// its data schema into the store and warming a prepared instance over
    /// the current head.
    pub fn register_plan(&mut self, name: &str, plan: QueryPlan) -> Result<QueryId> {
        if self.by_name.contains_key(name) {
            return Err(ServeError::DuplicateQuery(name.to_owned()));
        }
        let schema_grew = self.store.merge_schema(plan.omq().data_schema())?;
        let id = self.plans.len();
        self.plans.push((name.to_owned(), plan));
        self.by_name.insert(name.to_owned(), id);
        if schema_grew || self.warm_epoch != self.store.epoch() {
            // The merge moved the epoch (older warm instances bake in the
            // previous relation-id layout), or the cache was invalidated:
            // rebuild everything over the current head.
            self.rewarm_all();
        } else {
            let head = self.store.snapshot();
            let warmed = Self::warm_one(&self.plans[id].1, &head);
            self.warm.push(warmed);
        }
        Ok(QueryId(id))
    }

    /// Warms one plan over the store head.  An empty head is deliberately
    /// not executed: there is nothing to chase, and the execution would pin
    /// the plan's shared chase-memo fingerprint to the store's merged schema
    /// layout, disabling memoisation for ad-hoc databases laid out over the
    /// query's own data schema.
    fn warm_one(plan: &QueryPlan, head: &Snapshot) -> Option<Arc<PreparedInstance>> {
        if head.database().is_empty() {
            return None;
        }
        plan.execute_tracked(head).ok().map(Arc::new)
    }

    /// Rebuilds the warm prepared cache for every catalogued query over the
    /// current store head.
    fn rewarm_all(&mut self) {
        let head = self.store.snapshot();
        self.warm = self
            .plans
            .iter()
            .map(|(_, plan)| Self::warm_one(plan, &head))
            .collect();
        self.warm_epoch = self.store.epoch();
    }

    /// The warm prepared instance cached for `id` at the current store
    /// epoch, if one exists.  Store-head requests are served from this
    /// instance; it is refreshed incrementally by
    /// [`ServingEngine::register_data`].
    pub fn warm_instance(&self, id: QueryId) -> Option<Arc<PreparedInstance>> {
        if self.warm_epoch != self.store.epoch() {
            return None;
        }
        self.warm.get(id.0).cloned().flatten()
    }

    /// Pre-session name for [`ServingEngine::register_query`].
    #[deprecated(note = "use `register_query`")]
    pub fn register(&mut self, name: &str, omq: &OntologyMediatedQuery) -> Result<QueryId> {
        self.register_query(name, omq)
    }

    /// Pre-session name for [`ServingEngine::register_query_with`].
    #[deprecated(note = "use `register_query_with`")]
    pub fn register_with(
        &mut self,
        name: &str,
        omq: &OntologyMediatedQuery,
        config: &EngineConfig,
    ) -> Result<QueryId> {
        self.register_query_with(name, omq, config)
    }

    /// Looks up a catalogued query by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.by_name.get(name).copied().map(QueryId)
    }

    /// The name a catalogued query was registered under.
    pub fn query_name(&self, id: QueryId) -> Option<&str> {
        self.plans.get(id.0).map(|(name, _)| name.as_str())
    }

    /// The compiled plan behind a query id.
    pub fn plan(&self, id: QueryId) -> Result<&QueryPlan> {
        self.plans
            .get(id.0)
            .map(|(_, plan)| plan)
            .ok_or(ServeError::UnknownQuery(id.0))
    }

    /// Number of catalogued queries.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` iff the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Resolves a query reference to its catalogue id and compiled plan.
    fn resolve_query(&self, query: &QueryRef) -> Result<(QueryId, &QueryPlan)> {
        let id = match query {
            QueryRef::Id(id) => *id,
            QueryRef::Name(name) => self
                .query_id(name)
                .ok_or_else(|| ServeError::UnknownQueryName(name.clone()))?,
        };
        Ok((id, self.plan(id)?))
    }

    /// Executes the request's plan over its (pinned) data: the chase plus
    /// shard preparation, shared by the streaming and aggregate entry
    /// points.  Returns the prepared instance behind a shared handle — the
    /// warm head instance when the fast path hits, a freshly executed one
    /// otherwise.
    fn resolve_instance(
        &self,
        request: &Request,
    ) -> Result<(QueryId, Option<u64>, Arc<PreparedInstance>)> {
        let (id, plan) = self.resolve_query(&request.query)?;
        // Pin the data *before* executing: `Head` resolves to a snapshot of
        // the store at this instant, so the returned instance is isolated
        // from every later commit.
        let pinned;
        let (db, epoch): (&Database, Option<u64>) = match &request.data {
            DataRef::Head => {
                pinned = self.store.snapshot();
                // Warm fast path: the head was already executed (and kept
                // fresh incrementally across commits), so the request only
                // pays for opening its cursor — after a delta commit, time
                // to the first answer is proportional to the delta.
                if self.warm_epoch == pinned.epoch() {
                    if let Some(instance) = self.warm.get(id.0).and_then(Option::as_ref) {
                        return Ok((id, Some(pinned.epoch()), Arc::clone(instance)));
                    }
                }
                (pinned.database(), Some(pinned.epoch()))
            }
            // Caller-pinned snapshots always execute from scratch — even
            // when the snapshot still *is* the store head.  Serving the
            // warm (incrementally refreshed) instance here would be sound
            // multiset-wise, but its answer *order* differs from a fresh
            // execute (refreshed shards stream first), and the same pinned
            // snapshot must replay the same sequence whether or not the
            // head has moved on since.
            DataRef::Snapshot(snapshot) => (snapshot.database(), Some(snapshot.epoch())),
            DataRef::Database(db) => (db, None),
        };
        let instance = if self.data_parallelism > 1 {
            plan.execute_parallel(db, self.data_parallelism)?
        } else {
            plan.execute(db)?
        };
        Ok((id, epoch, Arc::new(instance)))
    }

    /// Opens the answer cursor of a request (every answer pulled afterwards
    /// is constant work).
    fn open_stream(
        &self,
        request: &Request,
    ) -> Result<(QueryId, Option<u64>, AnswerStream, PreprocessStats)> {
        let (id, epoch, instance) = self.resolve_instance(request)?;
        let stream = instance.answers(request.semantics)?;
        Ok((id, epoch, stream, *instance.stats()))
    }

    /// Serves the aggregate form of a request: how many answers the query
    /// has under the request's semantics at the served epoch, computed
    /// through the non-materialising fast paths of
    /// [`PreparedInstance::count`] — no answer tuple is ever built.  The
    /// request's `limit`/`offset` window describes an answer page and does
    /// not apply to aggregates; it is ignored.
    pub fn count(&self, request: &Request) -> Result<CountResponse> {
        let (query, epoch, instance) = self.resolve_instance(request)?;
        let count = instance.count(request.semantics)?;
        Ok(CountResponse {
            query,
            epoch,
            semantics: request.semantics,
            count,
            exists: count > 0,
            stats: *instance.stats(),
        })
    }

    /// Emptiness probe for a request — like [`ServingEngine::count`] but
    /// cheaper: per-shard constant-work probes through
    /// [`PreparedInstance::exists`], no enumeration at all.
    pub fn exists(&self, request: &Request) -> Result<bool> {
        let (_, _, instance) = self.resolve_instance(request)?;
        Ok(instance.exists(request.semantics)?)
    }

    /// Serves one request lazily: returns the cursor over the request's
    /// answer window instead of a materialised answer set.  The offset is
    /// applied eagerly (skipped answers are enumerated but not built into a
    /// response); the limit is enforced by the returned iterator.
    pub fn serve_stream(&self, request: &Request) -> Result<StreamedResponse> {
        let (query, epoch, mut stream, stats) = self.open_stream(request)?;
        // Skip the offset in batched blocks: same enumeration work as pulling
        // one-by-one, minus the per-answer dispatch, and bounded memory (the
        // skipped block is recycled, never accumulated).
        let mut to_skip = request.offset;
        let mut block: Vec<Answer> = Vec::new();
        while to_skip > 0 {
            let n = stream.next_batch(&mut block, to_skip.min(SERVE_BLOCK));
            if n == 0 {
                break;
            }
            to_skip -= n;
            block.clear();
        }
        if let Some(e) = stream.error() {
            return Err(e.clone().into());
        }
        Ok(StreamedResponse {
            query,
            epoch,
            stats,
            stream,
            remaining: request.limit,
        })
    }

    /// Serves one request on the calling thread, materialising the answers
    /// of the request's window.  `O(offset + limit)` enumeration work for
    /// bounded requests.
    pub fn serve_one(&self, request: &Request) -> Result<Response> {
        let mut streamed = self.serve_stream(request)?;
        let mut answers = AnswerSet::empty(request.semantics);
        let mut block: Vec<Answer> = Vec::new();
        while streamed.next_batch(&mut block, SERVE_BLOCK) > 0 {
            for answer in block.drain(..) {
                answers.push(answer);
            }
        }
        // The iterator stops at the limit; one extra probe on the raw stream
        // detects whether the window cut the enumeration short.
        let StreamedResponse {
            query,
            epoch,
            stats,
            mut stream,
            ..
        } = streamed;
        let truncated = request.limit.is_some() && stream.next().is_some();
        if let Some(e) = stream.error() {
            return Err(e.clone().into());
        }
        Ok(Response {
            query,
            epoch,
            answers,
            truncated,
            stats,
        })
    }

    /// Serves a batch of requests across the worker pool, returning one
    /// result per request in request order.
    ///
    /// Shared-nothing scheduling: workers claim request indices off an
    /// atomic cursor, evaluate against the immutable catalogue (warming the
    /// plans' shared chase memos as a side effect), and only the collected
    /// results are merged at the end.  Each request pins its own snapshot at
    /// open time.  A failed request does not affect the others.  Per-request
    /// `limit`/`offset` windows are honoured, so a batch of bounded requests
    /// never materialises an unbounded answer set.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<Response>> {
        let n = requests.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return requests.iter().map(|r| self.serve_one(r)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<Response>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, self.serve_one(&requests[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<Result<Response>>> = (0..n).map(|_| None).collect();
        for batch in collected {
            for (i, result) in batch {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request index was claimed exactly once"))
            .collect()
    }
}

// The whole point of the engine is to be shared across request threads, and
// requests/snapshots are the values shipped between them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ServingEngine>();
    assert_send_sync::<Request>();
    assert_send_sync::<Response>();
    assert_send_sync::<CountResponse>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<Txn>();
    assert_send::<StreamedResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::Ontology;
    use omq_core::OmqEngine;
    use omq_cq::ConjunctiveQuery;
    use std::collections::BTreeSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn researcher_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)").unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn db(i: usize, omq: &OntologyMediatedQuery) -> Database {
        let has_buildings = omq.data_schema().relation_id("InBuilding").is_some();
        let mut builder = Database::builder(omq.data_schema().clone());
        for r in 0..=i {
            builder = builder.fact("Researcher", [format!("p{i}_{r}")]);
            if r % 2 == 0 {
                builder = builder.fact("HasOffice", [format!("p{i}_{r}"), format!("o{i}_{r}")]);
            }
            if has_buildings && r % 4 == 0 {
                builder = builder.fact("InBuilding", [format!("o{i}_{r}"), format!("b{i}")]);
            }
        }
        builder.build().unwrap()
    }

    /// Drains a freshly opened stream for `request` into a vector — the
    /// reassembly step shared by the pagination/stream tests.
    fn collect_stream(engine: &ServingEngine, request: &Request) -> Vec<Answer> {
        engine.serve_stream(request).unwrap().collect()
    }

    /// Seeds the engine's own store with the same facts as `db(i, ..)`.
    fn seed_store(engine: &mut ServingEngine, i: usize, with_buildings: bool) {
        let mut txn = Txn::new();
        for r in 0..=i {
            txn = txn.insert("Researcher", [format!("p{i}_{r}")]);
            if r % 2 == 0 {
                txn = txn.insert("HasOffice", [format!("p{i}_{r}"), format!("o{i}_{r}")]);
            }
            if with_buildings && r % 4 == 0 {
                txn = txn.insert("InBuilding", [format!("o{i}_{r}"), format!("b{i}")]);
            }
        }
        engine.register_data(txn).unwrap();
    }

    #[test]
    fn count_requests_match_drained_answer_sets() {
        let office = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("office", &office).unwrap();
        seed_store(&mut engine, 6, true);

        for semantics in Semantics::ALL {
            // Against the warm store head: the served epoch is pinned.
            let request = Request::new(id, semantics);
            let counted = engine.count(&request).unwrap();
            let drained = collect_stream(&engine, &request).len() as u64;
            assert_eq!(counted.count, drained, "{semantics:?}");
            assert_eq!(counted.query, id);
            assert_eq!(counted.epoch, Some(engine.epoch()));
            assert_eq!(counted.semantics, semantics);
            assert_eq!(counted.exists, drained > 0);
            assert_eq!(engine.exists(&request).unwrap(), drained > 0);

            // Against an ad-hoc database: no epoch, window fields ignored.
            let adhoc = Arc::new(db(3, &office));
            let request = Request::new(id, semantics)
                .with_database(Arc::clone(&adhoc))
                .with_offset(1)
                .with_limit(2);
            let counted = engine.count(&request).unwrap();
            let unbounded = Request::new(id, semantics).with_database(adhoc);
            let drained = collect_stream(&engine, &unbounded).len() as u64;
            assert_eq!(counted.count, drained, "{semantics:?} ad-hoc");
            assert_eq!(counted.epoch, None);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn batch_serving_matches_per_request_engines() {
        let office = office_omq();
        let mut engine = ServingEngine::new(4);
        let office_id = engine.register_query("office", &office).unwrap();
        assert_eq!(engine.query_id("office"), Some(office_id));
        assert_eq!(engine.len(), 1);

        let dbs: Vec<Arc<Database>> = (0..12).map(|i| Arc::new(db(i, &office))).collect();
        let requests: Vec<Request> = dbs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let semantics = match i % 3 {
                    0 => Semantics::Complete,
                    1 => Semantics::MinimalPartial,
                    _ => Semantics::MinimalPartialMulti,
                };
                Request::new(office_id, semantics).with_database(d.clone())
            })
            .collect();
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        for ((request, database), response) in requests.iter().zip(&dbs).zip(&responses) {
            let response = response.as_ref().unwrap();
            assert!(!response.truncated, "unbounded requests never truncate");
            assert_eq!(response.epoch, None, "ad-hoc data has no store epoch");
            let reference = OmqEngine::preprocess(&office, database).unwrap();
            match (&response.answers, request.semantics) {
                (AnswerSet::Complete(got), Semantics::Complete) => {
                    let want = reference.enumerate_complete().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Partial(got), Semantics::MinimalPartial) => {
                    let want = reference.enumerate_minimal_partial().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Multi(got), Semantics::MinimalPartialMulti) => {
                    let want = reference.enumerate_minimal_partial_multi().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (answers, semantics) => panic!("semantics {semantics:?} produced {answers:?}"),
            }
        }
    }

    #[test]
    fn store_backed_requests_pin_snapshots() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &omq).unwrap();
        // Registering the query merged its data schema into the store.
        assert!(engine.store().schema().relation_id("Researcher").is_some());
        seed_store(&mut engine, 5, false);

        let head = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        assert_eq!(head.epoch, Some(engine.epoch()));
        let before = head.answers.len();
        assert!(before > 0);

        // Pin, then commit more researchers.
        let pinned = engine.snapshot();
        engine
            .register_data(
                Txn::new()
                    .insert("Researcher", ["fresh0"])
                    .insert("Researcher", ["fresh1"]),
            )
            .unwrap();

        // The pinned snapshot still answers exactly as before…
        let at_pin = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial).at(pinned.clone()))
            .unwrap();
        assert_eq!(at_pin.answers.len(), before);
        assert_eq!(at_pin.epoch, Some(pinned.epoch()));
        // …while the head (and a by-name request) sees the new facts.
        let at_head = engine
            .serve_one(&Request::by_name("q", Semantics::MinimalPartial))
            .unwrap();
        assert_eq!(at_head.answers.len(), before + 2);
        assert_eq!(at_head.epoch, Some(engine.epoch()));
    }

    #[test]
    fn streams_survive_commits_and_engine_drop() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &omq).unwrap();
        seed_store(&mut engine, 7, false);

        let full = collect_stream(&engine, &Request::new(id, Semantics::MinimalPartial));
        assert!(full.len() >= 4);

        let mut stream = engine
            .serve_stream(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        let first = stream.next().unwrap();
        assert_eq!(first, full[0]);
        // Commit between pulls: the in-flight stream is pinned.
        engine
            .register_data(Txn::new().insert("Researcher", ["late"]))
            .unwrap();
        // Drop the whole engine (store included): the stream owns its data.
        drop(engine);
        let rest: Vec<Answer> = stream.collect();
        assert_eq!(rest, full[1..]);
    }

    #[test]
    fn limits_bound_responses_and_flag_truncation() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &omq).unwrap();
        seed_store(&mut engine, 7, false); // 8 researchers -> 8 answers
        let full = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        let total = full.answers.len();
        assert!(total >= 2);
        assert!(!full.truncated);

        let bounded = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial).with_limit(2))
            .unwrap();
        assert_eq!(bounded.answers.len(), 2);
        assert!(bounded.truncated);

        // limit == total: everything fits, not truncated.
        let exact = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial).with_limit(total))
            .unwrap();
        assert_eq!(exact.answers.len(), total);
        assert!(!exact.truncated);

        // Offset past the end: empty, not truncated.
        let past = engine
            .serve_one(
                &Request::new(id, Semantics::MinimalPartial)
                    .with_offset(total + 5)
                    .with_limit(2),
            )
            .unwrap();
        assert!(past.answers.is_empty());
        assert!(!past.truncated);
    }

    #[test]
    fn pagination_over_a_pinned_snapshot_ignores_commits() {
        let omq = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("office", &omq).unwrap();
        seed_store(&mut engine, 11, true);
        let session = engine.snapshot();
        let full = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial).at(session.clone()))
            .unwrap();
        let AnswerSet::Partial(full) = full.answers else {
            panic!("semantics mismatch");
        };
        for page_size in [1usize, 2, 3, 7] {
            let mut paged: Vec<PartialTuple> = Vec::new();
            let mut offset = 0;
            loop {
                let page = engine
                    .serve_one(
                        &Request::new(id, Semantics::MinimalPartial)
                            .at(session.clone())
                            .with_offset(offset)
                            .with_limit(page_size),
                    )
                    .unwrap();
                let AnswerSet::Partial(answers) = page.answers else {
                    panic!("semantics mismatch");
                };
                let done = !page.truncated;
                offset += answers.len();
                paged.extend(answers);
                // A commit in the middle of the pagination session: pages
                // pinned to `session` must not notice.
                engine
                    .register_data(
                        Txn::new().insert("Researcher", [format!("mid{page_size}_{offset}")]),
                    )
                    .unwrap();
                if done {
                    break;
                }
            }
            assert_eq!(
                paged, full,
                "page size {page_size} loses or reorders answers"
            );
        }
    }

    #[test]
    fn streamed_responses_are_lazy_and_owned() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &omq).unwrap();
        seed_store(&mut engine, 9, false);
        let full = collect_stream(&engine, &Request::new(id, Semantics::MinimalPartial));
        assert!(!full.is_empty());

        // take(k) through the streamed response honours the request limit.
        let mut stream = engine
            .serve_stream(&Request::new(id, Semantics::MinimalPartial).with_limit(3))
            .unwrap();
        assert_eq!(stream.semantics(), Semantics::MinimalPartial);
        assert_eq!(stream.epoch(), Some(engine.epoch()));
        let first: Vec<Answer> = (&mut stream).collect();
        assert_eq!(first, full[..3.min(full.len())]);
        assert!(stream.error().is_none());

        // Offset streams resume exactly where the previous window ended.
        let rest = collect_stream(
            &engine,
            &Request::new(id, Semantics::MinimalPartial).with_offset(3),
        );
        assert_eq!(rest, full[3.min(full.len())..]);

        // Dropping a stream mid-way is fine.
        let mut abandoned = engine
            .serve_stream(&Request::new(id, Semantics::Complete))
            .unwrap();
        let _ = abandoned.next();
        drop(abandoned);
    }

    #[test]
    fn catalogue_names_are_unique_and_refs_checked() {
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &researcher_omq()).unwrap();
        assert!(matches!(
            engine.register_query("q", &researcher_omq()),
            Err(ServeError::DuplicateQuery(_))
        ));
        assert!(engine.plan(id).is_ok());
        assert!(matches!(
            engine.plan(QueryId(99)),
            Err(ServeError::UnknownQuery(99))
        ));
        let bad_id = Request::new(QueryId(99), Semantics::Complete);
        let responses = engine.serve_batch(&[bad_id]);
        assert!(matches!(responses[0], Err(ServeError::UnknownQuery(99))));
        let bad_name = Request::by_name("nope", Semantics::Complete);
        assert!(matches!(
            engine.serve_one(&bad_name),
            Err(ServeError::UnknownQueryName(_))
        ));
    }

    #[test]
    fn invalid_txns_do_not_move_the_epoch() {
        let mut engine = ServingEngine::new(1);
        engine.register_query("q", &researcher_omq()).unwrap();
        let epoch = engine.epoch();
        assert!(matches!(
            engine.register_data(Txn::new().insert("Nope", ["x"])),
            Err(ServeError::Data(DataError::UnknownRelation(_)))
        ));
        assert_eq!(engine.epoch(), epoch);
    }

    #[test]
    fn mixed_catalogue_and_more_requests_than_workers() {
        let office = office_omq();
        let researcher = researcher_omq();
        let mut engine = ServingEngine::new(3).with_data_parallelism(2);
        let office_id = engine.register_query("office", &office).unwrap();
        let researcher_id = engine.register_query("researcher", &researcher).unwrap();
        let office_dbs: Vec<Arc<Database>> = (0..8).map(|i| Arc::new(db(i, &office))).collect();
        let researcher_dbs: Vec<Arc<Database>> =
            (0..8).map(|i| Arc::new(db(i, &researcher))).collect();
        let mut requests = Vec::new();
        for d in &office_dbs {
            requests
                .push(Request::new(office_id, Semantics::MinimalPartial).with_database(d.clone()));
        }
        for d in &researcher_dbs {
            // Bounded requests mixed into the same batch, addressed by name.
            requests.push(
                Request::by_name("researcher", Semantics::MinimalPartial)
                    .with_database(d.clone())
                    .with_limit(2),
            );
        }
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), 16);
        for (i, (request, response)) in requests.iter().zip(&responses).enumerate() {
            let response = response.as_ref().unwrap();
            let expected = if i < 8 { office_id } else { researcher_id };
            assert_eq!(response.query, expected);
            assert!(!response.answers.is_empty());
            if let Some(limit) = request.limit {
                assert!(response.answers.len() <= limit);
            }
            assert!(response.stats.shards >= 1);
        }
        // Serving warmed the shared chase memos of both catalogued plans.
        assert!(
            engine
                .plan(office_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
        assert!(
            engine
                .plan(researcher_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_keep_working() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register("q", &omq).unwrap();
        let database = db(3, &omq);
        let response = engine
            .serve_one(&Request::for_database(
                id,
                &database,
                Semantics::MinimalPartial,
            ))
            .unwrap();
        assert!(!response.answers.is_empty());
        let _typed: BorrowedRequest<'static> = Request::new(id, Semantics::Complete);
    }

    #[test]
    fn with_store_preloads_and_remerges_schemas() {
        let omq = researcher_omq();
        let mut schema = omq_data::Schema::new();
        schema.add_relation("Researcher", 1).unwrap();
        let mut store = Store::new(schema);
        store
            .commit(Txn::new().insert("Researcher", ["pre"]))
            .unwrap();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("q", &omq).unwrap();
        let mut engine = engine.with_store(store).unwrap();
        // The re-merge added the query's remaining relations.
        assert!(engine.store().schema().relation_id("HasOffice").is_some());
        let response = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        assert_eq!(response.answers.len(), 1); // (pre, *)
        engine
            .register_data(Txn::new().insert("HasOffice", ["pre", "office"]))
            .unwrap();
        let response = engine
            .serve_one(&Request::new(id, Semantics::Complete))
            .unwrap();
        assert_eq!(response.answers.len(), 1); // (pre, office)
    }

    #[test]
    fn warm_cache_serves_the_head_and_refreshes_incrementally() {
        let omq = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("office", &omq).unwrap();
        // An empty store is never warmed (nothing to chase).
        assert!(engine.warm_instance(id).is_none());
        seed_store(&mut engine, 7, true);
        let warm = engine
            .warm_instance(id)
            .expect("the commit warms the cache");
        assert!(warm.shard_count() > 1, "component-rich head is sharded");
        // Head requests serve from the warm instance: the response carries
        // its exact execution stats.
        let response = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        assert_eq!(response.stats.shards, warm.stats().shards);
        assert_eq!(response.epoch, Some(engine.epoch()));

        // A single-component delta: the cache is refreshed incrementally —
        // every previous shard is reused, only the new component is chased.
        let before = warm.shard_count();
        engine
            .register_data(
                Txn::new()
                    .insert("Researcher", ["delta"])
                    .insert("HasOffice", ["delta", "delta_office"]),
            )
            .unwrap();
        let refreshed = engine.warm_instance(id).expect("still warm after commit");
        assert_eq!(refreshed.stats().reused_shards, before);

        // Answers served off the warm head agree with a from-scratch
        // execution over the same snapshot.
        let head = engine.snapshot();
        let response = engine
            .serve_one(&Request::new(id, Semantics::MinimalPartial))
            .unwrap();
        let AnswerSet::Partial(got) = response.answers else {
            panic!("semantics mismatch");
        };
        let scratch = engine.plan(id).unwrap().execute(&head).unwrap();
        let want: BTreeSet<PartialTuple> = scratch
            .answers(Semantics::MinimalPartial)
            .unwrap()
            .map(|a| a.into_partial().unwrap())
            .collect();
        assert_eq!(got.into_iter().collect::<BTreeSet<_>>(), want);

        // Raw store access invalidates the cache; the next commit rebuilds.
        let _ = engine.store_mut();
        assert!(engine.warm_instance(id).is_none());
        engine
            .register_data(Txn::new().insert("Researcher", ["post"]))
            .unwrap();
        assert!(engine.warm_instance(id).is_some());
    }

    #[test]
    fn batched_pulls_match_single_pulls_through_the_serving_layer() {
        let omq = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register_query("office", &omq).unwrap();
        seed_store(&mut engine, 11, true);
        for semantics in [
            Semantics::Complete,
            Semantics::MinimalPartial,
            Semantics::MinimalPartialMulti,
        ] {
            let full = collect_stream(&engine, &Request::new(id, semantics));
            // Reassemble the whole answer set through bounded windows pulled
            // with `next_batch`, in uneven block sizes.
            let mut batched: Vec<Answer> = Vec::new();
            let mut stream = engine.serve_stream(&Request::new(id, semantics)).unwrap();
            for k in [1usize, 2, 3, 5, 64] {
                stream.next_batch(&mut batched, k);
            }
            batched.extend(stream);
            assert_eq!(batched, full, "{semantics:?} batched pull diverges");
            // Limits clip batched pulls exactly like single pulls.
            let mut window: Vec<Answer> = Vec::new();
            let mut bounded = engine
                .serve_stream(&Request::new(id, semantics).with_limit(3))
                .unwrap();
            assert_eq!(bounded.next_batch(&mut window, 64), 3.min(full.len()));
            assert_eq!(window, full[..3.min(full.len())]);
            assert_eq!(bounded.next_batch(&mut window, 64), 0);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = ServingEngine::new(4);
        assert!(engine.serve_batch(&[]).is_empty());
        assert!(engine.is_empty());
        assert_eq!(engine.epoch(), 0);
    }
}
