//! A concurrent batch-serving front end over compiled OMQ query plans.
//!
//! The compile-once/execute-many split of `omq-core` (`QueryPlan` /
//! `PreparedInstance`) was built for serving workloads: a fixed catalogue of
//! ontology-mediated queries compiled up front, per-request databases only
//! charged the data-linear work.  [`ServingEngine`] is that front end:
//!
//! * a **catalogue** of named, compiled [`QueryPlan`]s ([`ServingEngine::register`]);
//! * [`ServingEngine::serve_batch`] evaluates a batch of
//!   (query-id, database, semantics) [`Request`]s across a fixed pool of
//!   scoped worker threads (shared-nothing: workers pull requests off an
//!   atomic cursor and never exchange state beyond the immutable catalogue);
//! * per-request **work bounds**: [`Request::with_limit`] /
//!   [`Request::with_offset`] page through an answer stream without ever
//!   materialising the full answer set — the engine stops enumerating after
//!   `offset + limit + 1` answers (the `+ 1` detects [`Response::truncated`]),
//!   which is `O(limit)` enumeration work thanks to the constant-delay
//!   cursor;
//! * [`ServingEngine::serve_stream`] hands out the **lazy cursor itself**
//!   ([`StreamedResponse`] wraps `omq_core::AnswerStream`): the caller pulls
//!   answers one at a time, can stop at any point for `O(answers pulled)`
//!   cost, and may park the stream across await points or requests — the
//!   stream owns its data (it borrows neither the engine nor the request);
//! * per-request **data parallelism** can be layered on top via
//!   [`ServingEngine::with_data_parallelism`], which routes executions
//!   through `QueryPlan::execute_parallel` (Gaifman-component sharding).
//!
//! All catalogue state is immutable during serving and `ServingEngine` is
//! `Send + Sync`, so one engine can be shared by any number of callers.
//!
//! ```
//! use omq_chase::{Ontology, OntologyMediatedQuery};
//! use omq_cq::ConjunctiveQuery;
//! use omq_data::Database;
//! use omq_serve::{Request, Semantics, ServingEngine};
//!
//! let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)")?;
//! let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)")?;
//! let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//! let mut engine = ServingEngine::new(4);
//! let offices = engine.register("offices", &omq)?;
//!
//! let db = Database::builder(omq.data_schema().clone())
//!     .fact("Researcher", ["mary"])
//!     .fact("Researcher", ["ada"])
//!     .build()?;
//!
//! // Batch path: bounded per-request work via the builder.
//! let responses = engine.serve_batch(&[
//!     Request::new(offices, &db, Semantics::MinimalPartial).with_limit(1),
//! ]);
//! let response = responses[0].as_ref().unwrap();
//! assert_eq!(response.answers.len(), 1); // (mary, *) — or (ada, *)
//! assert!(response.truncated); // one more answer existed
//!
//! // Streaming path: pull answers lazily off the cursor.
//! let stream = engine.serve_stream(&Request::new(offices, &db, Semantics::MinimalPartial))?;
//! assert_eq!(stream.count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omq_chase::OntologyMediatedQuery;
use omq_core::{AnswerStream, CoreError, EngineConfig, PreprocessStats, QueryPlan};
use omq_data::{Answer, ConstId, Database, MultiTuple, PartialTuple};
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use omq_data::Semantics;

/// The answer semantics of a request.
#[deprecated(note = "use `Semantics` — `AnswerMode` is a pre-cursor-API alias")]
pub type AnswerMode = Semantics;

/// Errors raised by the serving front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A query name was registered twice.
    DuplicateQuery(String),
    /// A request referenced a query id that is not in the catalogue.
    UnknownQuery(usize),
    /// A compilation or execution error bubbled up from the core engine.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateQuery(name) => {
                write!(f, "query `{name}` is already registered")
            }
            ServeError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            ServeError::Core(e) => write!(f, "core engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Handle to a compiled plan in a [`ServingEngine`] catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

/// The answers of one served request, in the semantics the request asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerSet {
    /// Complete answers as constant tuples.
    Complete(Vec<Vec<ConstId>>),
    /// Minimal partial answers.
    Partial(Vec<PartialTuple>),
    /// Minimal partial answers with multi-wildcards.
    Multi(Vec<MultiTuple>),
}

impl AnswerSet {
    /// An empty answer set of the given semantics.
    pub fn empty(semantics: Semantics) -> Self {
        match semantics {
            Semantics::Complete => AnswerSet::Complete(Vec::new()),
            Semantics::MinimalPartial => AnswerSet::Partial(Vec::new()),
            Semantics::MinimalPartialMulti => AnswerSet::Multi(Vec::new()),
        }
    }

    /// The semantics of this answer set.
    pub fn semantics(&self) -> Semantics {
        match self {
            AnswerSet::Complete(_) => Semantics::Complete,
            AnswerSet::Partial(_) => Semantics::MinimalPartial,
            AnswerSet::Multi(_) => Semantics::MinimalPartialMulti,
        }
    }

    /// Appends one answer; the variant must match the set's semantics (which
    /// holds by construction for answers pulled off a stream of the same
    /// semantics).
    fn push(&mut self, answer: Answer) {
        match (self, answer) {
            (AnswerSet::Complete(v), Answer::Complete(t)) => v.push(t),
            (AnswerSet::Partial(v), Answer::Partial(t)) => v.push(t),
            (AnswerSet::Multi(v), Answer::Multi(t)) => v.push(t),
            (set, answer) => unreachable!(
                "stream semantics {:?} yielded mismatched answer {answer:?}",
                set.semantics()
            ),
        }
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        match self {
            AnswerSet::Complete(a) => a.len(),
            AnswerSet::Partial(a) => a.len(),
            AnswerSet::Multi(a) => a.len(),
        }
    }

    /// Returns `true` iff the request produced no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One unit of serving work: evaluate a catalogued query over a database,
/// optionally bounded by a result window.
///
/// Built in builder style:
///
/// ```ignore
/// Request::new(id, &db, Semantics::MinimalPartial)
///     .with_offset(100)
///     .with_limit(50)
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Request<'a> {
    /// The catalogued query to evaluate.
    pub query: QueryId,
    /// The database to evaluate it over.
    pub database: &'a Database,
    /// The answer semantics to produce.
    pub semantics: Semantics,
    /// Maximum number of answers to return (`None` = unbounded).  A bounded
    /// request performs `O(offset + limit)` enumeration work, never
    /// materialising the full answer set.
    pub limit: Option<usize>,
    /// Number of leading answers to skip — the pagination cursor.
    pub offset: usize,
}

impl<'a> Request<'a> {
    /// Builds an unbounded request.
    pub fn new(query: QueryId, database: &'a Database, semantics: Semantics) -> Self {
        Request {
            query,
            database,
            semantics,
            limit: None,
            offset: 0,
        }
    }

    /// Caps the number of answers returned.  A million-user front end sets
    /// this on every request: the engine stops enumerating right after the
    /// window (one extra probe detects truncation).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Skips the first `offset` answers — combine with
    /// [`Request::with_limit`] for stateless pagination (the enumeration
    /// order is deterministic for a fixed plan and database).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }
}

/// The response to one [`Request`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The query that was evaluated.
    pub query: QueryId,
    /// The answers inside the request's `offset`/`limit` window, in the
    /// requested semantics.
    pub answers: AnswerSet,
    /// `true` iff more answers existed beyond the request's window.
    pub truncated: bool,
    /// Preprocessing statistics of the execution behind this response.
    pub stats: PreprocessStats,
}

/// The lazy counterpart of [`Response`]: the request's answer window as a
/// pullable cursor ([`Iterator<Item = Answer>`]).
///
/// The stream owns its data (plan handles plus chased shards), so it is
/// independent of the borrow on the [`ServingEngine`] and of the request's
/// database reference; it can be parked, resumed, or dropped mid-way, and
/// every pulled answer costs constant enumeration work.
#[derive(Debug)]
pub struct StreamedResponse {
    query: QueryId,
    stats: PreprocessStats,
    stream: AnswerStream,
    /// Answers still to be yielded under the request's limit.
    remaining: Option<usize>,
}

impl StreamedResponse {
    /// The query this stream answers.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Preprocessing statistics of the execution behind this stream.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The semantics of the yielded answers.
    pub fn semantics(&self) -> Semantics {
        self.stream.semantics()
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&CoreError> {
        self.stream.error()
    }

    /// Unwraps the underlying raw answer cursor (drops the limit bound).
    pub fn into_stream(self) -> AnswerStream {
        self.stream
    }
}

impl Iterator for StreamedResponse {
    type Item = Answer;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.remaining {
            Some(0) => None,
            Some(n) => {
                let answer = self.stream.next()?;
                *n -= 1;
                Some(answer)
            }
            None => self.stream.next(),
        }
    }
}

impl std::iter::FusedIterator for StreamedResponse {}

/// A catalogue of compiled plans plus a fixed-size worker pool serving
/// batches of (query, database) requests.  See the crate docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct ServingEngine {
    plans: Vec<(String, QueryPlan)>,
    by_name: FxHashMap<String, usize>,
    workers: usize,
    data_parallelism: usize,
}

impl ServingEngine {
    /// Creates an engine with a pool of `workers` threads for batch serving
    /// (clamped to at least one).  Requests are evaluated sequentially
    /// within a worker; see [`ServingEngine::with_data_parallelism`] to also
    /// shard individual executions.
    pub fn new(workers: usize) -> Self {
        ServingEngine {
            plans: Vec::new(),
            by_name: FxHashMap::default(),
            workers: workers.max(1),
            data_parallelism: 1,
        }
    }

    /// Additionally shards every execution over up to `threads` threads via
    /// `QueryPlan::execute_parallel` (Gaifman-component sharding).  Useful
    /// when batches are small but the databases are large and
    /// component-rich; for large batches the request-level pool already
    /// saturates the cores.
    pub fn with_data_parallelism(mut self, threads: usize) -> Self {
        self.data_parallelism = threads.max(1);
        self
    }

    /// Number of worker threads used by [`ServingEngine::serve_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Compiles `omq` with default configuration and adds it to the
    /// catalogue under `name`.
    pub fn register(&mut self, name: &str, omq: &OntologyMediatedQuery) -> Result<QueryId> {
        let plan = QueryPlan::compile(omq)?;
        self.register_plan(name, plan)
    }

    /// Compiles `omq` with an explicit configuration and catalogues it.
    pub fn register_with(
        &mut self,
        name: &str,
        omq: &OntologyMediatedQuery,
        config: &EngineConfig,
    ) -> Result<QueryId> {
        let plan = QueryPlan::compile_with(omq, config)?;
        self.register_plan(name, plan)
    }

    /// Adds an already-compiled plan to the catalogue under `name`.
    pub fn register_plan(&mut self, name: &str, plan: QueryPlan) -> Result<QueryId> {
        if self.by_name.contains_key(name) {
            return Err(ServeError::DuplicateQuery(name.to_owned()));
        }
        let id = self.plans.len();
        self.plans.push((name.to_owned(), plan));
        self.by_name.insert(name.to_owned(), id);
        Ok(QueryId(id))
    }

    /// Looks up a catalogued query by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.by_name.get(name).copied().map(QueryId)
    }

    /// The compiled plan behind a query id.
    pub fn plan(&self, id: QueryId) -> Result<&QueryPlan> {
        self.plans
            .get(id.0)
            .map(|(_, plan)| plan)
            .ok_or(ServeError::UnknownQuery(id.0))
    }

    /// Number of catalogued queries.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` iff the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Executes the request's plan over its database and opens the answer
    /// cursor (the chase plus the per-shard enumeration preprocessing; every
    /// answer pulled afterwards is constant work).
    fn open_stream(&self, request: &Request) -> Result<(AnswerStream, PreprocessStats)> {
        let plan = self.plan(request.query)?;
        let instance = if self.data_parallelism > 1 {
            plan.execute_parallel(request.database, self.data_parallelism)?
        } else {
            plan.execute(request.database)?
        };
        let stream = instance.answers(request.semantics)?;
        Ok((stream, *instance.stats()))
    }

    /// Serves one request lazily: returns the cursor over the request's
    /// answer window instead of a materialised answer set.  The offset is
    /// applied eagerly (skipped answers are enumerated but not built into a
    /// response); the limit is enforced by the returned iterator.
    pub fn serve_stream(&self, request: &Request) -> Result<StreamedResponse> {
        let (mut stream, stats) = self.open_stream(request)?;
        for _ in 0..request.offset {
            if stream.next().is_none() {
                break;
            }
        }
        if let Some(e) = stream.error() {
            return Err(e.clone().into());
        }
        Ok(StreamedResponse {
            query: request.query,
            stats,
            stream,
            remaining: request.limit,
        })
    }

    /// Serves one request on the calling thread, materialising the answers
    /// of the request's window.  `O(offset + limit)` enumeration work for
    /// bounded requests.
    pub fn serve_one(&self, request: &Request) -> Result<Response> {
        let mut streamed = self.serve_stream(request)?;
        let mut answers = AnswerSet::empty(request.semantics);
        for answer in &mut streamed {
            answers.push(answer);
        }
        // The iterator stops at the limit; one extra probe on the raw stream
        // detects whether the window cut the enumeration short.
        let stats = streamed.stats;
        let mut stream = streamed.stream;
        let truncated = request.limit.is_some() && stream.next().is_some();
        if let Some(e) = stream.error() {
            return Err(e.clone().into());
        }
        Ok(Response {
            query: request.query,
            answers,
            truncated,
            stats,
        })
    }

    /// Serves a batch of requests across the worker pool, returning one
    /// result per request in request order.
    ///
    /// Shared-nothing scheduling: workers claim request indices off an
    /// atomic cursor, evaluate against the immutable catalogue (warming the
    /// plans' shared chase memos as a side effect), and only the collected
    /// results are merged at the end.  A failed request does not affect the
    /// others.  Per-request `limit`/`offset` windows are honoured, so a
    /// batch of bounded requests never materialises an unbounded answer set.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<Response>> {
        let n = requests.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return requests.iter().map(|r| self.serve_one(r)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<Response>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, self.serve_one(&requests[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<Result<Response>>> = (0..n).map(|_| None).collect();
        for batch in collected {
            for (i, result) in batch {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request index was claimed exactly once"))
            .collect()
    }
}

// The whole point of the engine is to be shared across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ServingEngine>();
    assert_send_sync::<Request<'static>>();
    assert_send_sync::<Response>();
    assert_send::<StreamedResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::Ontology;
    use omq_core::OmqEngine;
    use omq_cq::ConjunctiveQuery;
    use std::collections::BTreeSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn researcher_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)").unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn db(i: usize, omq: &OntologyMediatedQuery) -> Database {
        let has_buildings = omq.data_schema().relation_id("InBuilding").is_some();
        let mut builder = Database::builder(omq.data_schema().clone());
        for r in 0..=i {
            builder = builder.fact("Researcher", [format!("p{i}_{r}")]);
            if r % 2 == 0 {
                builder = builder.fact("HasOffice", [format!("p{i}_{r}"), format!("o{i}_{r}")]);
            }
            if has_buildings && r % 4 == 0 {
                builder = builder.fact("InBuilding", [format!("o{i}_{r}"), format!("b{i}")]);
            }
        }
        builder.build().unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn batch_serving_matches_per_request_engines() {
        let office = office_omq();
        let mut engine = ServingEngine::new(4);
        let office_id = engine.register("office", &office).unwrap();
        assert_eq!(engine.query_id("office"), Some(office_id));
        assert_eq!(engine.len(), 1);

        let dbs: Vec<Database> = (0..12).map(|i| db(i, &office)).collect();
        let requests: Vec<Request> = dbs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let semantics = match i % 3 {
                    0 => Semantics::Complete,
                    1 => Semantics::MinimalPartial,
                    _ => Semantics::MinimalPartialMulti,
                };
                Request::new(office_id, d, semantics)
            })
            .collect();
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            let response = response.as_ref().unwrap();
            assert!(!response.truncated, "unbounded requests never truncate");
            let reference = OmqEngine::preprocess(&office, request.database).unwrap();
            match (&response.answers, request.semantics) {
                (AnswerSet::Complete(got), Semantics::Complete) => {
                    let want = reference.enumerate_complete().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Partial(got), Semantics::MinimalPartial) => {
                    let want = reference.enumerate_minimal_partial().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Multi(got), Semantics::MinimalPartialMulti) => {
                    let want = reference.enumerate_minimal_partial_multi().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (answers, semantics) => panic!("semantics {semantics:?} produced {answers:?}"),
            }
        }
    }

    #[test]
    fn limits_bound_responses_and_flag_truncation() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register("q", &omq).unwrap();
        let database = db(7, &omq); // 8 researchers -> 8 answers (one per person)
        let full = engine
            .serve_one(&Request::new(id, &database, Semantics::MinimalPartial))
            .unwrap();
        let total = full.answers.len();
        assert!(total >= 2);
        assert!(!full.truncated);

        let bounded = engine
            .serve_one(&Request::new(id, &database, Semantics::MinimalPartial).with_limit(2))
            .unwrap();
        assert_eq!(bounded.answers.len(), 2);
        assert!(bounded.truncated);

        // limit == total: everything fits, not truncated.
        let exact = engine
            .serve_one(&Request::new(id, &database, Semantics::MinimalPartial).with_limit(total))
            .unwrap();
        assert_eq!(exact.answers.len(), total);
        assert!(!exact.truncated);

        // Offset past the end: empty, not truncated.
        let past = engine
            .serve_one(
                &Request::new(id, &database, Semantics::MinimalPartial)
                    .with_offset(total + 5)
                    .with_limit(2),
            )
            .unwrap();
        assert!(past.answers.is_empty());
        assert!(!past.truncated);
    }

    #[test]
    fn pagination_reassembles_the_full_answer_set_in_order() {
        let omq = office_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register("office", &omq).unwrap();
        let database = db(11, &omq);
        let full = engine
            .serve_one(&Request::new(id, &database, Semantics::MinimalPartial))
            .unwrap();
        let AnswerSet::Partial(full) = full.answers else {
            panic!("semantics mismatch");
        };
        for page_size in [1usize, 2, 3, 7] {
            let mut paged: Vec<PartialTuple> = Vec::new();
            let mut offset = 0;
            loop {
                let page = engine
                    .serve_one(
                        &Request::new(id, &database, Semantics::MinimalPartial)
                            .with_offset(offset)
                            .with_limit(page_size),
                    )
                    .unwrap();
                let AnswerSet::Partial(answers) = page.answers else {
                    panic!("semantics mismatch");
                };
                let done = !page.truncated;
                offset += answers.len();
                paged.extend(answers);
                if done {
                    break;
                }
            }
            assert_eq!(
                paged, full,
                "page size {page_size} loses or reorders answers"
            );
        }
    }

    #[test]
    fn streamed_responses_are_lazy_and_owned() {
        let omq = researcher_omq();
        let mut engine = ServingEngine::new(2);
        let id = engine.register("q", &omq).unwrap();
        let database = db(9, &omq);
        let full: Vec<Answer> = engine
            .serve_stream(&Request::new(id, &database, Semantics::MinimalPartial))
            .unwrap()
            .collect();
        assert!(!full.is_empty());

        // take(k) through the streamed response honours the request limit.
        let mut stream = engine
            .serve_stream(&Request::new(id, &database, Semantics::MinimalPartial).with_limit(3))
            .unwrap();
        assert_eq!(stream.semantics(), Semantics::MinimalPartial);
        let first: Vec<Answer> = (&mut stream).collect();
        assert_eq!(first, full[..3.min(full.len())]);
        assert!(stream.error().is_none());

        // Offset streams resume exactly where the previous window ended.
        let rest: Vec<Answer> = engine
            .serve_stream(&Request::new(id, &database, Semantics::MinimalPartial).with_offset(3))
            .unwrap()
            .collect();
        assert_eq!(rest, full[3.min(full.len())..]);

        // Dropping a stream mid-way is fine, and streams outlive the borrow
        // used to create them.
        let mut abandoned = engine
            .serve_stream(&Request::new(id, &database, Semantics::Complete))
            .unwrap();
        let _ = abandoned.next();
        drop(abandoned);
    }

    #[test]
    fn catalogue_names_are_unique_and_ids_checked() {
        let mut engine = ServingEngine::new(2);
        let id = engine.register("q", &researcher_omq()).unwrap();
        assert!(matches!(
            engine.register("q", &researcher_omq()),
            Err(ServeError::DuplicateQuery(_))
        ));
        assert!(engine.plan(id).is_ok());
        assert!(matches!(
            engine.plan(QueryId(99)),
            Err(ServeError::UnknownQuery(99))
        ));
        let db = db(0, &researcher_omq());
        let bad = Request::new(QueryId(99), &db, Semantics::Complete);
        let responses = engine.serve_batch(&[bad]);
        assert!(matches!(responses[0], Err(ServeError::UnknownQuery(99))));
    }

    #[test]
    fn mixed_catalogue_and_more_requests_than_workers() {
        let office = office_omq();
        let researcher = researcher_omq();
        let mut engine = ServingEngine::new(3).with_data_parallelism(2);
        let office_id = engine.register("office", &office).unwrap();
        let researcher_id = engine.register("researcher", &researcher).unwrap();
        let office_dbs: Vec<Database> = (0..8).map(|i| db(i, &office)).collect();
        let researcher_dbs: Vec<Database> = (0..8).map(|i| db(i, &researcher)).collect();
        let mut requests = Vec::new();
        for d in &office_dbs {
            requests.push(Request::new(office_id, d, Semantics::MinimalPartial));
        }
        for d in &researcher_dbs {
            // Bounded requests mixed into the same batch.
            requests.push(Request::new(researcher_id, d, Semantics::MinimalPartial).with_limit(2));
        }
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), 16);
        for (request, response) in requests.iter().zip(&responses) {
            let response = response.as_ref().unwrap();
            assert_eq!(response.query, request.query);
            assert!(!response.answers.is_empty());
            if let Some(limit) = request.limit {
                assert!(response.answers.len() <= limit);
            }
            assert!(response.stats.shards >= 1);
        }
        // Serving warmed the shared chase memos of both catalogued plans.
        assert!(
            engine
                .plan(office_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
        assert!(
            engine
                .plan(researcher_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = ServingEngine::new(4);
        assert!(engine.serve_batch(&[]).is_empty());
        assert!(engine.is_empty());
    }
}
