//! A concurrent batch-serving front end over compiled OMQ query plans.
//!
//! The compile-once/execute-many split of `omq-core` (`QueryPlan` /
//! `PreparedInstance`) was built for serving workloads: a fixed catalogue of
//! ontology-mediated queries compiled up front, per-request databases only
//! charged the data-linear work.  [`ServingEngine`] is that front end:
//!
//! * a **catalogue** of named, compiled [`QueryPlan`]s ([`ServingEngine::register`]);
//! * [`ServingEngine::serve_batch`] evaluates a batch of
//!   (query-id, database, answer-mode) [`Request`]s across a fixed pool of
//!   scoped worker threads (shared-nothing: workers pull requests off an
//!   atomic cursor and never exchange state beyond the immutable catalogue);
//! * per-request **data parallelism** can be layered on top via
//!   [`ServingEngine::with_data_parallelism`], which routes executions
//!   through `QueryPlan::execute_parallel` (Gaifman-component sharding).
//!
//! All catalogue state is immutable during serving and `ServingEngine` is
//! `Send + Sync`, so one engine can be shared by any number of callers.
//!
//! ```
//! use omq_chase::{Ontology, OntologyMediatedQuery};
//! use omq_cq::ConjunctiveQuery;
//! use omq_data::Database;
//! use omq_serve::{AnswerMode, Request, ServingEngine};
//!
//! let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)")?;
//! let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)")?;
//! let omq = OntologyMediatedQuery::new(ontology, query)?;
//!
//! let mut engine = ServingEngine::new(4);
//! let offices = engine.register("offices", &omq)?;
//!
//! let db = Database::builder(omq.data_schema().clone())
//!     .fact("Researcher", ["mary"])
//!     .build()?;
//! let responses = engine.serve_batch(&[
//!     Request::new(offices, &db, AnswerMode::MinimalPartial),
//! ]);
//! assert_eq!(responses[0].as_ref().unwrap().answers.len(), 1); // (mary, *)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omq_chase::OntologyMediatedQuery;
use omq_core::{CoreError, EngineConfig, PreprocessStats, QueryPlan};
use omq_data::{ConstId, Database, MultiTuple, PartialTuple};
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Errors raised by the serving front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A query name was registered twice.
    DuplicateQuery(String),
    /// A request referenced a query id that is not in the catalogue.
    UnknownQuery(usize),
    /// A compilation or execution error bubbled up from the core engine.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateQuery(name) => {
                write!(f, "query `{name}` is already registered")
            }
            ServeError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            ServeError::Core(e) => write!(f, "core engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Handle to a compiled plan in a [`ServingEngine`] catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

/// Which answer semantics a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerMode {
    /// Complete (certain) answers — Theorem 4.1(1).
    Complete,
    /// Minimal partial answers, single wildcard — Theorem 5.2.
    MinimalPartial,
    /// Minimal partial answers with multi-wildcards — Theorem 6.1.
    MinimalPartialMulti,
}

/// The answers of one served request, in the semantics the request asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerSet {
    /// Complete answers as constant tuples.
    Complete(Vec<Vec<ConstId>>),
    /// Minimal partial answers.
    Partial(Vec<PartialTuple>),
    /// Minimal partial answers with multi-wildcards.
    Multi(Vec<MultiTuple>),
}

impl AnswerSet {
    /// Number of answers.
    pub fn len(&self) -> usize {
        match self {
            AnswerSet::Complete(a) => a.len(),
            AnswerSet::Partial(a) => a.len(),
            AnswerSet::Multi(a) => a.len(),
        }
    }

    /// Returns `true` iff the request produced no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One unit of serving work: evaluate a catalogued query over a database.
#[derive(Debug, Clone, Copy)]
pub struct Request<'a> {
    /// The catalogued query to evaluate.
    pub query: QueryId,
    /// The database to evaluate it over.
    pub database: &'a Database,
    /// The answer semantics to produce.
    pub mode: AnswerMode,
}

impl<'a> Request<'a> {
    /// Builds a request.
    pub fn new(query: QueryId, database: &'a Database, mode: AnswerMode) -> Self {
        Request {
            query,
            database,
            mode,
        }
    }
}

/// The response to one [`Request`].
#[derive(Debug, Clone)]
pub struct Response {
    /// The query that was evaluated.
    pub query: QueryId,
    /// The answers, in the requested semantics.
    pub answers: AnswerSet,
    /// Preprocessing statistics of the execution behind this response.
    pub stats: PreprocessStats,
}

/// A catalogue of compiled plans plus a fixed-size worker pool serving
/// batches of (query, database) requests.  See the crate docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct ServingEngine {
    plans: Vec<(String, QueryPlan)>,
    by_name: FxHashMap<String, usize>,
    workers: usize,
    data_parallelism: usize,
}

impl ServingEngine {
    /// Creates an engine with a pool of `workers` threads for batch serving
    /// (clamped to at least one).  Requests are evaluated sequentially
    /// within a worker; see [`ServingEngine::with_data_parallelism`] to also
    /// shard individual executions.
    pub fn new(workers: usize) -> Self {
        ServingEngine {
            plans: Vec::new(),
            by_name: FxHashMap::default(),
            workers: workers.max(1),
            data_parallelism: 1,
        }
    }

    /// Additionally shards every execution over up to `threads` threads via
    /// `QueryPlan::execute_parallel` (Gaifman-component sharding).  Useful
    /// when batches are small but the databases are large and
    /// component-rich; for large batches the request-level pool already
    /// saturates the cores.
    pub fn with_data_parallelism(mut self, threads: usize) -> Self {
        self.data_parallelism = threads.max(1);
        self
    }

    /// Number of worker threads used by [`ServingEngine::serve_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Compiles `omq` with default configuration and adds it to the
    /// catalogue under `name`.
    pub fn register(&mut self, name: &str, omq: &OntologyMediatedQuery) -> Result<QueryId> {
        let plan = QueryPlan::compile(omq)?;
        self.register_plan(name, plan)
    }

    /// Compiles `omq` with an explicit configuration and catalogues it.
    pub fn register_with(
        &mut self,
        name: &str,
        omq: &OntologyMediatedQuery,
        config: &EngineConfig,
    ) -> Result<QueryId> {
        let plan = QueryPlan::compile_with(omq, config)?;
        self.register_plan(name, plan)
    }

    /// Adds an already-compiled plan to the catalogue under `name`.
    pub fn register_plan(&mut self, name: &str, plan: QueryPlan) -> Result<QueryId> {
        if self.by_name.contains_key(name) {
            return Err(ServeError::DuplicateQuery(name.to_owned()));
        }
        let id = self.plans.len();
        self.plans.push((name.to_owned(), plan));
        self.by_name.insert(name.to_owned(), id);
        Ok(QueryId(id))
    }

    /// Looks up a catalogued query by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.by_name.get(name).copied().map(QueryId)
    }

    /// The compiled plan behind a query id.
    pub fn plan(&self, id: QueryId) -> Result<&QueryPlan> {
        self.plans
            .get(id.0)
            .map(|(_, plan)| plan)
            .ok_or(ServeError::UnknownQuery(id.0))
    }

    /// Number of catalogued queries.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` iff the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Serves one request on the calling thread.
    pub fn serve_one(&self, request: &Request) -> Result<Response> {
        let plan = self.plan(request.query)?;
        let instance = if self.data_parallelism > 1 {
            plan.execute_parallel(request.database, self.data_parallelism)?
        } else {
            plan.execute(request.database)?
        };
        let answers = match request.mode {
            AnswerMode::Complete => AnswerSet::Complete(instance.enumerate_complete()?),
            AnswerMode::MinimalPartial => AnswerSet::Partial(instance.enumerate_minimal_partial()?),
            AnswerMode::MinimalPartialMulti => {
                AnswerSet::Multi(instance.enumerate_minimal_partial_multi()?)
            }
        };
        Ok(Response {
            query: request.query,
            answers,
            stats: *instance.stats(),
        })
    }

    /// Serves a batch of requests across the worker pool, returning one
    /// result per request in request order.
    ///
    /// Shared-nothing scheduling: workers claim request indices off an
    /// atomic cursor, evaluate against the immutable catalogue (warming the
    /// plans' shared chase memos as a side effect), and only the collected
    /// results are merged at the end.  A failed request does not affect the
    /// others.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<Response>> {
        let n = requests.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return requests.iter().map(|r| self.serve_one(r)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, Result<Response>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, self.serve_one(&requests[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<Result<Response>>> = (0..n).map(|_| None).collect();
        for batch in collected {
            for (i, result) in batch {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request index was claimed exactly once"))
            .collect()
    }
}

// The whole point of the engine is to be shared across request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingEngine>();
    assert_send_sync::<Request<'static>>();
    assert_send_sync::<Response>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::Ontology;
    use omq_core::OmqEngine;
    use omq_cq::ConjunctiveQuery;
    use std::collections::BTreeSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn researcher_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)").unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn db(i: usize, omq: &OntologyMediatedQuery) -> Database {
        let has_buildings = omq.data_schema().relation_id("InBuilding").is_some();
        let mut builder = Database::builder(omq.data_schema().clone());
        for r in 0..=i {
            builder = builder.fact("Researcher", [format!("p{i}_{r}")]);
            if r % 2 == 0 {
                builder = builder.fact("HasOffice", [format!("p{i}_{r}"), format!("o{i}_{r}")]);
            }
            if has_buildings && r % 4 == 0 {
                builder = builder.fact("InBuilding", [format!("o{i}_{r}"), format!("b{i}")]);
            }
        }
        builder.build().unwrap()
    }

    #[test]
    fn batch_serving_matches_per_request_engines() {
        let office = office_omq();
        let mut engine = ServingEngine::new(4);
        let office_id = engine.register("office", &office).unwrap();
        assert_eq!(engine.query_id("office"), Some(office_id));
        assert_eq!(engine.len(), 1);

        let dbs: Vec<Database> = (0..12).map(|i| db(i, &office)).collect();
        let requests: Vec<Request> = dbs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mode = match i % 3 {
                    0 => AnswerMode::Complete,
                    1 => AnswerMode::MinimalPartial,
                    _ => AnswerMode::MinimalPartialMulti,
                };
                Request::new(office_id, d, mode)
            })
            .collect();
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            let response = response.as_ref().unwrap();
            let reference = OmqEngine::preprocess(&office, request.database).unwrap();
            match (&response.answers, request.mode) {
                (AnswerSet::Complete(got), AnswerMode::Complete) => {
                    let want = reference.enumerate_complete().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Partial(got), AnswerMode::MinimalPartial) => {
                    let want = reference.enumerate_minimal_partial().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (AnswerSet::Multi(got), AnswerMode::MinimalPartialMulti) => {
                    let want = reference.enumerate_minimal_partial_multi().unwrap();
                    let got: BTreeSet<_> = got.iter().collect();
                    let want: BTreeSet<_> = want.iter().collect();
                    assert_eq!(got, want);
                }
                (answers, mode) => panic!("mode {mode:?} produced {answers:?}"),
            }
        }
    }

    #[test]
    fn catalogue_names_are_unique_and_ids_checked() {
        let mut engine = ServingEngine::new(2);
        let id = engine.register("q", &researcher_omq()).unwrap();
        assert!(matches!(
            engine.register("q", &researcher_omq()),
            Err(ServeError::DuplicateQuery(_))
        ));
        assert!(engine.plan(id).is_ok());
        assert!(matches!(
            engine.plan(QueryId(99)),
            Err(ServeError::UnknownQuery(99))
        ));
        let db = db(0, &researcher_omq());
        let bad = Request::new(QueryId(99), &db, AnswerMode::Complete);
        let responses = engine.serve_batch(&[bad]);
        assert!(matches!(responses[0], Err(ServeError::UnknownQuery(99))));
    }

    #[test]
    fn mixed_catalogue_and_more_requests_than_workers() {
        let office = office_omq();
        let researcher = researcher_omq();
        let mut engine = ServingEngine::new(3).with_data_parallelism(2);
        let office_id = engine.register("office", &office).unwrap();
        let researcher_id = engine.register("researcher", &researcher).unwrap();
        let office_dbs: Vec<Database> = (0..8).map(|i| db(i, &office)).collect();
        let researcher_dbs: Vec<Database> = (0..8).map(|i| db(i, &researcher)).collect();
        let mut requests = Vec::new();
        for d in &office_dbs {
            requests.push(Request::new(office_id, d, AnswerMode::MinimalPartial));
        }
        for d in &researcher_dbs {
            requests.push(Request::new(researcher_id, d, AnswerMode::MinimalPartial));
        }
        let responses = engine.serve_batch(&requests);
        assert_eq!(responses.len(), 16);
        for (request, response) in requests.iter().zip(&responses) {
            let response = response.as_ref().unwrap();
            assert_eq!(response.query, request.query);
            assert!(!response.answers.is_empty());
            assert!(response.stats.shards >= 1);
        }
        // Serving warmed the shared chase memos of both catalogued plans.
        assert!(
            engine
                .plan(office_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
        assert!(
            engine
                .plan(researcher_id)
                .unwrap()
                .chase_plan()
                .memoized_bag_types()
                > 0
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = ServingEngine::new(4);
        assert!(engine.serve_batch(&[]).is_empty());
        assert!(engine.is_empty());
    }
}
