//! The length-prefix codec: 4-byte big-endian length + payload.
//!
//! Every frame on the wire — client/server and coordinator/worker alike —
//! is a `u32` big-endian length followed by that many bytes of UTF-8 JSON.
//! TCP does not respect frame boundaries, so both sides reassemble frames
//! from arbitrary byte chunks with [`FrameDecoder`].
//!
//! ```text
//! frame := u32_be(len) payload            len = |payload| ≤ MAX_FRAME_LEN
//! ```
//!
//! The split between recoverable and fatal failures lives here: a declared
//! length above [`MAX_FRAME_LEN`] means the prefix cannot be trusted and
//! there is no next frame boundary to resynchronise at — [`FrameTooLarge`],
//! fatal.  Everything *inside* a well-framed payload is the payload layer's
//! problem and never kills the stream.

use std::fmt;

/// Hard cap on the payload length of one frame (8 MiB).  A declared length
/// beyond this is treated as a corrupt stream, not a large frame.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Integers on the wire are carried as exact JSON integers in
/// `0..=MAX_WIRE_INT` (`i64::MAX`).  Every wire integer is a sequential
/// counter (handle, epoch, count, page size), so the bound is nowhere near
/// reachable; values above it would degrade to floating point in many JSON
/// implementations.
pub const MAX_WIRE_INT: u64 = i64::MAX as u64;

/// Encodes one payload into a length-prefixed frame.
///
/// Never panics on size: a payload above [`MAX_FRAME_LEN`] is framed
/// faithfully and it is the *peer* that rejects it as a corrupt stream.
/// Well-behaved senders keep payloads under the cap — the server bounds
/// its pages by encoded bytes, clips error messages, and degrades anything
/// still oversized to a bounded error frame before it reaches the wire.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// A corrupt length prefix: the declared payload length exceeds
/// [`MAX_FRAME_LEN`].  Fatal for the connection — with the prefix untrusted
/// there is no next frame boundary to resynchronise at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The length the prefix declared.
    pub declared: usize,
}

impl fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "declared frame length {} exceeds the {MAX_FRAME_LEN}-byte cap",
            self.declared
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Incremental frame reassembly: feed it byte chunks as they arrive off the
/// socket (torn at arbitrary boundaries), pull complete payloads out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim consumed prefix before growing the buffer.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete payload, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameTooLarge { declared: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_reassembles_across_torn_reads() {
        let payloads: [&[u8]; 3] = [b"{\"t\":\"pin\"}", b"", b"{\"t\":\"bye\",\"n\":42}"];
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_payload(p)).collect();
        for chunk in [1usize, 2, 3, 5, wire.len()] {
            let mut decoder = FrameDecoder::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for piece in wire.chunks(chunk) {
                decoder.feed(piece);
                while let Some(payload) = decoder.next_frame().unwrap() {
                    got.push(payload);
                }
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert_eq!(decoder.pending(), 0);
        }
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn a_frame_exactly_at_the_cap_is_accepted() {
        let payload = vec![b'x'; MAX_FRAME_LEN];
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame_payload(&payload));
        assert_eq!(decoder.next_frame().unwrap().unwrap().len(), MAX_FRAME_LEN);
    }
}
