//! # omq-wire — the shared wire substrate of the network-facing crates
//!
//! Both network front ends of the workspace — the client-facing TCP server
//! (`omq-server`) and the coordinator/worker cluster runtime
//! (`omq-cluster`) — speak length-prefixed JSON frames.  This crate is the
//! one copy of everything those protocols share, factored out of
//! `omq-server::protocol` so the codec exists (and is property-tested)
//! exactly once:
//!
//! - [`json`] — the hand-rolled JSON value, parser and writer (the
//!   workspace is hermetic: the vendored `serde` stub has no `serde_json`);
//! - [`frame`] — the length-prefix codec: [`frame_payload`],
//!   [`FrameDecoder`] (incremental reassembly under torn reads), the
//!   [`MAX_FRAME_LEN`] cap and the fatal [`FrameTooLarge`] error;
//! - [`payload`] — shared payload plumbing: [`ProtocolViolation`] (the
//!   recoverable half of the fatal-vs-recoverable split), typed field
//!   accessors and the [`Semantics`](omq_data::Semantics) spelling;
//! - [`answers`] — the rendered-answer convention (constants by interned
//!   name, `"*"`, `"*k"`): [`render_answer`], the byte-exact
//!   [`answer_wire_len`], and [`parse_answer`], the inverse used by the
//!   cluster coordinator to fold worker pages back into typed
//!   [`Answer`](omq_data::Answer)s;
//! - [`code`] — the wire [`ErrorCode`] vocabulary, partitioned into client
//!   faults (4xx) and server failures (5xx).
//!
//! # Error discipline (shared by every consumer)
//!
//! A syntactically intact frame whose payload is rejected (bad JSON,
//! missing field, unknown tag) is a [`ProtocolViolation`] — recoverable,
//! because the length prefix keeps the byte stream in sync.  Only a corrupt
//! length prefix (declared length above [`MAX_FRAME_LEN`]) is fatal
//! ([`FrameTooLarge`]): past it there is no way to find the next frame
//! boundary, so the connection must close.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;

pub mod answers;
pub mod code;
pub mod frame;
pub mod json;
pub mod payload;

pub use answers::{answer_wire_len, parse_answer, render_answer};
pub use code::ErrorCode;
pub use frame::{frame_payload, FrameDecoder, FrameTooLarge, MAX_FRAME_LEN, MAX_WIRE_INT};
pub use payload::{
    bool_field, decode_object, field, opt_u64_field, parse_semantics, semantics_field,
    semantics_name, str_field, u64_field, violation, ProtocolViolation,
};
