//! The wire error-code vocabulary, shared by every protocol.
//!
//! Codes below 500 mean the request was at fault and retrying it unchanged
//! will fail again; 5xx codes mean the serving side failed and the request
//! may be valid.  The split is the wire-level surface of the unified
//! `omq::Error`: see `omq::Error::wire_code` for the full mapping table.

use std::fmt;

/// Machine-readable wire error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// 400 — the frame was not a valid protocol request (bad JSON, missing
    /// or ill-typed field, unknown tag).
    MalformedFrame,
    /// 404 — the named or numbered query is not in the catalogue.
    UnknownQuery,
    /// 405 — the cursor handle is unknown on this connection.
    UnknownCursor,
    /// 406 — the snapshot handle is unknown on this connection.
    UnknownSnapshot,
    /// 409 — the query name is already registered.
    DuplicateQuery,
    /// 410 — the request does not fit the store's schema (unknown relation,
    /// arity mismatch, unknown constant, ill-formed tuple).
    SchemaMismatch,
    /// 411 — the submitted query/ontology was rejected at compile time
    /// (parse error, not guarded, not acyclic, not free-connex).
    BadQuery,
    /// 413 — the frame's declared length exceeds
    /// [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN); fatal, the stream cannot be
    /// resynchronised.
    FrameTooLarge,
    /// 429 — the connection exceeded a per-connection resource quota (too
    /// many open cursors or pinned snapshots).  Release a handle and retry.
    QuotaExceeded,
    /// 500 — a server-side failure (internal invariant, resource exhaustion,
    /// poisoned lock); not the request's fault.
    Internal,
}

impl ErrorCode {
    /// The numeric code carried on the wire.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::MalformedFrame => 400,
            ErrorCode::UnknownQuery => 404,
            ErrorCode::UnknownCursor => 405,
            ErrorCode::UnknownSnapshot => 406,
            ErrorCode::DuplicateQuery => 409,
            ErrorCode::SchemaMismatch => 410,
            ErrorCode::BadQuery => 411,
            ErrorCode::FrameTooLarge => 413,
            ErrorCode::QuotaExceeded => 429,
            ErrorCode::Internal => 500,
        }
    }

    /// Decodes a wire code.
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        let code = match code {
            400 => ErrorCode::MalformedFrame,
            404 => ErrorCode::UnknownQuery,
            405 => ErrorCode::UnknownCursor,
            406 => ErrorCode::UnknownSnapshot,
            409 => ErrorCode::DuplicateQuery,
            410 => ErrorCode::SchemaMismatch,
            411 => ErrorCode::BadQuery,
            413 => ErrorCode::FrameTooLarge,
            429 => ErrorCode::QuotaExceeded,
            500 => ErrorCode::Internal,
            _ => return None,
        };
        Some(code)
    }

    /// Every wire error code, for exhaustive table tests.
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::MalformedFrame,
        ErrorCode::UnknownQuery,
        ErrorCode::UnknownCursor,
        ErrorCode::UnknownSnapshot,
        ErrorCode::DuplicateQuery,
        ErrorCode::SchemaMismatch,
        ErrorCode::BadQuery,
        ErrorCode::FrameTooLarge,
        ErrorCode::QuotaExceeded,
        ErrorCode::Internal,
    ];

    /// `true` iff the request was at fault (4xx): retrying it unchanged will
    /// fail again.  `false` means a server-side failure (5xx).
    pub fn is_client_error(self) -> bool {
        self.as_u16() < 500
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::UnknownQuery => "unknown-query",
            ErrorCode::UnknownCursor => "unknown-cursor",
            ErrorCode::UnknownSnapshot => "unknown-snapshot",
            ErrorCode::DuplicateQuery => "duplicate-query",
            ErrorCode::SchemaMismatch => "schema-mismatch",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{} {kind}", self.as_u16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_partition_into_client_and_server_faults() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
            assert_eq!(code.is_client_error(), code.as_u16() < 500);
            assert!(code.to_string().starts_with(&code.as_u16().to_string()));
        }
        assert!(ErrorCode::from_u16(200).is_none());
        assert!(!ErrorCode::Internal.is_client_error());
        assert!(ErrorCode::MalformedFrame.is_client_error());
        assert!(ErrorCode::QuotaExceeded.is_client_error());
    }
}
