//! Classifying the workspace's layered errors into wire [`ErrorCode`]s.
//!
//! Every layer keeps its own rich error enum; on the wire a client only
//! needs to know *whose fault it was* (can the request succeed if retried
//! unchanged?) plus a coarse kind.  The classifiers here are the single
//! source of truth for that mapping — the server and the cluster use them
//! when a request fails, and the `omq` facade's `Error::wire_code`
//! delegates to them so in-process and over-the-wire callers classify
//! identically (the facade carries the table test).  The serving-layer
//! classifier lives in `omq-server` (this crate sits below `omq-serve`).
//!
//! The ground rules:
//!
//! - anything the *data* in the request violates (unknown relation, arity
//!   mismatch, unknown constant, ill-formed tuple) → [`ErrorCode::SchemaMismatch`];
//! - anything wrong with a submitted *query or ontology* (parse errors,
//!   fragment violations such as not-guarded / not-acyclic / not-free-connex)
//!   → [`ErrorCode::BadQuery`];
//! - everything that indicates a server-side bug or resource exhaustion
//!   (internal invariants, stale indices, chase budget) → [`ErrorCode::Internal`].

use crate::code::ErrorCode;
use omq_chase::ChaseError;
use omq_core::CoreError;
use omq_cq::CqError;
use omq_data::DataError;

impl ErrorCode {
    /// Classifies a data-layer error.
    pub fn for_data(e: &DataError) -> ErrorCode {
        match e {
            // A stale columnar index is an engine bookkeeping failure, not
            // something the request did wrong — and so is trying to ship a
            // chased (null-bearing) instance as named rows.
            DataError::StaleIndex { .. } | DataError::UnexportableNull { .. } => {
                ErrorCode::Internal
            }
            DataError::UnknownRelation(_)
            | DataError::ArityMismatch { .. }
            | DataError::ConflictingArity { .. }
            | DataError::TupleLengthMismatch { .. }
            | DataError::NonCanonicalWildcards => ErrorCode::SchemaMismatch,
        }
    }

    /// Classifies a query-layer error.
    pub fn for_cq(e: &CqError) -> ErrorCode {
        match e {
            CqError::Parse(_)
            | CqError::UnboundAnswerVariable(_)
            | CqError::ArityConflict { .. }
            | CqError::NotAcyclic(_) => ErrorCode::BadQuery,
            CqError::Data(e) => ErrorCode::for_data(e),
        }
    }

    /// Classifies an ontology/chase-layer error.
    pub fn for_chase(e: &ChaseError) -> ErrorCode {
        match e {
            ChaseError::Parse(_) | ChaseError::ArityConflict { .. } | ChaseError::NotGuarded(_) => {
                ErrorCode::BadQuery
            }
            // The budget is a server-side resource limit; the query itself
            // may be perfectly valid.
            ChaseError::ChaseBudgetExceeded { .. } => ErrorCode::Internal,
            ChaseError::Cq(e) => ErrorCode::for_cq(e),
            ChaseError::Data(e) => ErrorCode::for_data(e),
        }
    }

    /// Classifies a core-engine error.
    pub fn for_core(e: &CoreError) -> ErrorCode {
        match e {
            CoreError::NotAcyclic(_)
            | CoreError::NotFreeConnex(_)
            | CoreError::NotEnumerationTractable(_)
            | CoreError::NotGuarded(_) => ErrorCode::BadQuery,
            CoreError::ArityMismatch { .. } | CoreError::UnknownConstant(_) => {
                ErrorCode::SchemaMismatch
            }
            CoreError::ShardedInstance(_) | CoreError::Internal(_) => ErrorCode::Internal,
            CoreError::Cq(e) => ErrorCode::for_cq(e),
            CoreError::Chase(e) => ErrorCode::for_chase(e),
            CoreError::Data(e) => ErrorCode::for_data(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_agrees_with_the_fault_line() {
        // Request-side faults are 4xx…
        assert!(ErrorCode::for_data(&DataError::UnknownRelation("R".into())).is_client_error());
        assert!(ErrorCode::for_cq(&CqError::Parse("…".into())).is_client_error());
        assert!(ErrorCode::for_chase(&ChaseError::NotGuarded("…".into())).is_client_error());
        assert!(ErrorCode::for_core(&CoreError::NotFreeConnex("…".into())).is_client_error());
        // …server-side failures are 5xx, even when nested through layers.
        assert!(!ErrorCode::for_core(&CoreError::Internal("bug".into())).is_client_error());
        assert_eq!(
            ErrorCode::for_core(&CoreError::Chase(ChaseError::ChaseBudgetExceeded {
                max_facts: 10
            })),
            ErrorCode::Internal
        );
        // Nested data errors classify the same at every layer.
        let data = DataError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            actual: 3,
        };
        let via_core = ErrorCode::for_core(&CoreError::Data(data.clone()));
        let via_chase = ErrorCode::for_chase(&ChaseError::Data(data.clone()));
        assert_eq!(via_core, ErrorCode::for_data(&data));
        assert_eq!(via_chase, ErrorCode::for_data(&data));
    }
}
