//! The rendered-answer convention shared by every wire.
//!
//! Answers travel as arrays of strings: constants by their interned name,
//! the single wildcard as `"*"`, multi-wildcards as `"*1"`, `"*2"`, ….  The
//! server, the cluster workers, the load harness and the end-to-end tests
//! all render through [`render_answer`], so "byte-identical to an
//! in-process drain" is checkable by string equality; the cluster
//! coordinator folds worker pages back into typed answers with
//! [`parse_answer`], the exact inverse over the coordinator's interner.
//!
//! Rendering is lossy exactly when a constant is *named* `"*"` or `"*k"` —
//! such a name is indistinguishable from a wildcard on the wire.  Complete
//! answers are unaffected (no wildcard parse), and the workloads this
//! workspace generates never mint such names.

use crate::payload::{violation, ProtocolViolation};
use omq_data::{Answer, Database, MultiTuple, MultiValue, PartialTuple, PartialValue, Semantics};

/// Exact number of bytes one rendered answer occupies as a JSON array
/// inside a `page` frame's `answers` member, mirroring [`crate::json`]'s
/// writer escapes.  Connection layers use it to cap pages at their byte
/// budget *before* encoding them, so no outgoing frame can approach
/// [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN) however large `k` or the
/// constant names are.
pub fn answer_wire_len(answer: &[String]) -> usize {
    let mut len = 2; // the brackets
    if !answer.is_empty() {
        len += answer.len() - 1; // the commas
    }
    for value in answer {
        len += 2; // the quotes
        for c in value.chars() {
            len += match c {
                '"' | '\\' | '\n' | '\r' | '\t' => 2,
                c if (c as u32) < 0x20 => 6, // \u00xx
                c => c.len_utf8(),
            };
        }
    }
    len
}

/// Renders one answer as the wire carries it: constants by their interned
/// name in `db`, the single wildcard as `"*"`, multi-wildcards as `"*k"`.
pub fn render_answer(answer: &Answer, db: &Database) -> Vec<String> {
    match answer {
        Answer::Complete(t) => t.iter().map(|&c| db.const_name(c).to_owned()).collect(),
        Answer::Partial(t) => {
            t.0.iter()
                .map(|v| match v {
                    PartialValue::Const(c) => db.const_name(*c).to_owned(),
                    PartialValue::Star => "*".to_owned(),
                })
                .collect()
        }
        Answer::Multi(t) => {
            t.0.iter()
                .map(|v| match v {
                    MultiValue::Const(c) => db.const_name(*c).to_owned(),
                    MultiValue::Wild(k) => format!("*{k}"),
                })
                .collect()
        }
    }
}

/// Parses a rendered answer back into a typed [`Answer`] under `semantics`,
/// resolving constant names through `db`'s interner — the inverse of
/// [`render_answer`] for any database that interns the same names.
///
/// This is how the cluster coordinator folds worker pages back into the
/// local reduce: workers render through their own interner (rebuilt from
/// shipped fact rows, so the *names* agree with the coordinator's), and the
/// coordinator re-resolves them here.  Wildcards never need resolution, and
/// chase-generated nulls never reach an answer as constants (they surface
/// as wildcards), so every constant in a well-formed page is a database
/// constant the coordinator knows.
///
/// A name `db` has not interned, or a malformed multi-wildcard index, is a
/// [`ProtocolViolation`].
pub fn parse_answer(
    rendered: &[String],
    semantics: Semantics,
    db: &Database,
) -> Result<Answer, ProtocolViolation> {
    let lookup = |name: &str| {
        db.const_id(name)
            .ok_or_else(|| violation(format!("answer constant `{name}` is not in the database")))
    };
    match semantics {
        Semantics::Complete => {
            let tuple = rendered
                .iter()
                .map(|name| lookup(name))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Answer::Complete(tuple))
        }
        Semantics::MinimalPartial => {
            let tuple = rendered
                .iter()
                .map(|name| {
                    if name == "*" {
                        Ok(PartialValue::Star)
                    } else {
                        lookup(name).map(PartialValue::Const)
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Answer::Partial(PartialTuple(tuple)))
        }
        Semantics::MinimalPartialMulti => {
            let tuple = rendered
                .iter()
                .map(|name| match name.strip_prefix('*') {
                    Some(index) if !index.is_empty() => index
                        .parse::<u32>()
                        .map(MultiValue::Wild)
                        .map_err(|_| violation(format!("malformed multi-wildcard `{name}`"))),
                    _ => lookup(name).map(MultiValue::Const),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Answer::Multi(MultiTuple(tuple)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use omq_data::Schema;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        Database::builder(schema)
            .fact("R", ["ada", "lovelace"])
            .build()
            .unwrap()
    }

    #[test]
    fn answer_wire_len_matches_the_encoder_exactly() {
        for answer in [
            vec![],
            vec!["plain".to_owned()],
            vec!["*".to_owned(), "*17".to_owned()],
            vec![
                "quote\"".to_owned(),
                "back\\slash".to_owned(),
                "nl\n tab\t cr\r".to_owned(),
                "nul\u{1}bel\u{7}".to_owned(),
                "é\u{1F600}".to_owned(),
                String::new(),
            ],
        ] {
            let encoded =
                Json::Arr(answer.iter().map(|v| Json::str(v.clone())).collect()).to_json();
            assert_eq!(answer_wire_len(&answer), encoded.len(), "{answer:?}");
        }
    }

    #[test]
    fn rendered_answers_round_trip_through_parse_answer() {
        let db = db();
        let ada = db.const_id("ada").unwrap();
        let lovelace = db.const_id("lovelace").unwrap();
        let answers = [
            (Answer::Complete(vec![ada, lovelace]), Semantics::Complete),
            (
                Answer::Partial(PartialTuple(vec![
                    PartialValue::Const(ada),
                    PartialValue::Star,
                ])),
                Semantics::MinimalPartial,
            ),
            (
                Answer::Multi(MultiTuple(vec![
                    MultiValue::Wild(1),
                    MultiValue::Const(lovelace),
                    MultiValue::Wild(1),
                ])),
                Semantics::MinimalPartialMulti,
            ),
        ];
        for (answer, semantics) in answers {
            let rendered = render_answer(&answer, &db);
            assert_eq!(parse_answer(&rendered, semantics, &db).unwrap(), answer);
        }
        // The empty (Boolean) tuple round-trips under every semantics.
        for semantics in Semantics::ALL {
            assert!(parse_answer(&[], semantics, &db).is_ok());
        }
    }

    #[test]
    fn unknown_constants_and_malformed_wildcards_are_violations() {
        let db = db();
        for semantics in Semantics::ALL {
            assert!(parse_answer(&["nobody".to_owned()], semantics, &db).is_err());
        }
        // "*" alone is a constant lookup under multi semantics (wildcards
        // there always carry an index), and a wildcard under partial.
        assert!(parse_answer(&["*".to_owned()], Semantics::MinimalPartialMulti, &db).is_err());
        assert!(parse_answer(&["*x".to_owned()], Semantics::MinimalPartialMulti, &db).is_err());
        assert!(parse_answer(&["*".to_owned()], Semantics::MinimalPartial, &db).is_ok());
        // Under Complete, "*" is just a (here unknown) constant name.
        assert!(parse_answer(&["*".to_owned()], Semantics::Complete, &db).is_err());
    }
}
