//! A minimal hand-rolled JSON value, parser and writer.
//!
//! The build environment is hermetic (the vendored `serde` is a stub with no
//! `serde_json`), so the wire protocol carries its payloads through this
//! small module instead: a [`Json`] tree, a recursive-descent parser with a
//! depth limit, and a writer that escapes exactly what the parser accepts.
//! Integers are kept exact ([`Json::Int`]) instead of routing everything
//! through `f64` — epochs, cursor ids and counts must round-trip without
//! precision loss.

use std::fmt;

/// Maximum nesting depth the parser accepts (frames are flat in practice;
/// the limit only guards against adversarial input blowing the stack).
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number that fits `i64`, kept exact.
    Int(i64),
    /// Any other number (fractional or out of `i64` range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as a key-ordered-as-written list of members.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Builds a `Json::Str` from anything string-like.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a `Json::Int` from a `u64` (falls back to `Num` above
    /// `i64::MAX`, which no wire field reaches in practice).
    pub fn uint(n: u64) -> Json {
        match i64::try_from(n) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(n as f64),
        }
    }

    /// Member lookup on an object (first member with that key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    /// The input as a `&str` — scalar decoding slices it at `pos`, which
    /// every advance keeps on a char boundary (ASCII steps or `len_utf8`).
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following `\uXXXX` low
                                // surrogate is required.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // `hex4` leaves `pos` past the digits; the shared
                            // `pos += 1` below would eat a payload byte.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.  `pos` is always on a char
                    // boundary, so the slice is O(1) — crucially NOT a
                    // `from_utf8` revalidation of the whole remaining
                    // input, which would make long strings parse in O(n²).
                    let rest = self
                        .text
                        .get(self.pos..)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty input"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let value = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-42", Json::Int(-42)),
            ("9223372036854775807", Json::Int(i64::MAX)),
            ("1.5", Json::Num(1.5)),
            ("\"hi\"", Json::Str("hi".to_owned())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.to_json()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let value = Json::obj([
            ("t", Json::str("page")),
            ("answers", Json::Arr(vec![Json::Arr(vec![Json::str("a")])])),
            ("done", Json::Bool(true)),
            ("n", Json::Int(3)),
        ]);
        let text = value.to_json();
        assert_eq!(text, r#"{"t":"page","answers":[["a"]],"done":true,"n":3}"#);
        assert_eq!(parse(&text).unwrap(), value);
        assert_eq!(value.get("t").and_then(Json::as_str), Some("page"));
        assert_eq!(value.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(value.get("done").and_then(Json::as_bool), Some(true));
        assert!(value.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t nul\u{1} unicode\u{1F600}é";
        let value = Json::str(nasty);
        assert_eq!(parse(&value.to_json()).unwrap(), value);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            parse("\"A\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::str("A\u{e9}\u{1F600}")
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "1 2",
            "{\"a\":1}x",
            "\u{1}",
            "--5",
            "[\u{7}]",
        ] {
            assert!(parse(text).is_err(), "{text:?} should not parse");
        }
        // The depth limit trips instead of blowing the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let big = (1u64 << 60) + 1;
        let value = Json::uint(big);
        assert_eq!(parse(&value.to_json()).unwrap().as_u64(), Some(big));
        // Above i64::MAX the value degrades to a float rather than failing.
        assert!(matches!(Json::uint(u64::MAX), Json::Num(_)));
    }
}
