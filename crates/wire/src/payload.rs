//! Shared payload plumbing for frame grammars built on [`crate::json`].
//!
//! Every protocol of the workspace frames JSON objects tagged by a `"t"`
//! member and reads typed fields out of them.  The accessors here are the
//! one copy of that plumbing; `omq-server`'s client/server frames and
//! `omq-cluster`'s coordinator/worker messages both decode through them.
//!
//! A payload failure is always a [`ProtocolViolation`] — the *recoverable*
//! half of the wire's error split: the length prefix framed the payload, so
//! the stream stays in sync and the peer can answer with an error frame and
//! keep going.

use crate::json::{self, Json};
use omq_data::Semantics;
use std::fmt;

/// A payload that was framed correctly but is not a valid protocol request.
/// Never fatal: the length prefix keeps the byte stream in sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// What was wrong with the payload.
    pub message: String,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.message)
    }
}

impl std::error::Error for ProtocolViolation {}

/// Builds a [`ProtocolViolation`] from any message.
pub fn violation(message: impl Into<String>) -> ProtocolViolation {
    ProtocolViolation {
        message: message.into(),
    }
}

/// Decodes a payload into a JSON object (UTF-8, valid JSON, object-shaped).
pub fn decode_object(payload: &[u8]) -> Result<Json, ProtocolViolation> {
    let text = std::str::from_utf8(payload).map_err(|_| violation("frame payload is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| violation(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(violation("frame payload must be a JSON object"));
    }
    Ok(doc)
}

/// Looks up a required member of an object payload.
pub fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProtocolViolation> {
    obj.get(key)
        .ok_or_else(|| violation(format!("missing field `{key}`")))
}

/// A required string member.
pub fn str_field(obj: &Json, key: &str) -> Result<String, ProtocolViolation> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| violation(format!("field `{key}` must be a string")))
}

/// A required non-negative integer member.
pub fn u64_field(obj: &Json, key: &str) -> Result<u64, ProtocolViolation> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| violation(format!("field `{key}` must be a non-negative integer")))
}

/// A required boolean member.
pub fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtocolViolation> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| violation(format!("field `{key}` must be a boolean")))
}

/// An optional non-negative integer member (`null` and absence both read as
/// `None`).
pub fn opt_u64_field(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolViolation> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| violation(format!("field `{key}` must be a non-negative integer"))),
    }
}

/// The canonical wire spelling of a [`Semantics`] (matches its `Display`).
pub fn semantics_name(semantics: Semantics) -> &'static str {
    match semantics {
        Semantics::Complete => "complete",
        Semantics::MinimalPartial => "minimal-partial",
        Semantics::MinimalPartialMulti => "minimal-partial-multi",
    }
}

/// Parses the wire spelling of a [`Semantics`].
pub fn parse_semantics(name: &str) -> Result<Semantics, ProtocolViolation> {
    match name {
        "complete" => Ok(Semantics::Complete),
        "minimal-partial" => Ok(Semantics::MinimalPartial),
        "minimal-partial-multi" => Ok(Semantics::MinimalPartialMulti),
        other => Err(violation(format!("unknown semantics `{other}`"))),
    }
}

/// A required `semantics` member.
pub fn semantics_field(obj: &Json) -> Result<Semantics, ProtocolViolation> {
    parse_semantics(&str_field(obj, "semantics")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_spellings_round_trip() {
        for semantics in Semantics::ALL {
            assert_eq!(parse_semantics(semantics_name(semantics)), Ok(semantics));
            // The wire spelling matches the Display impl, so log lines and
            // frames agree.
            assert_eq!(semantics_name(semantics), semantics.to_string());
        }
        assert!(parse_semantics("certain").is_err());
    }

    #[test]
    fn field_accessors_report_missing_and_ill_typed_members() {
        let obj = decode_object(br#"{"t":"x","n":3,"b":true,"s":"hi","o":null}"#).unwrap();
        assert_eq!(str_field(&obj, "s").unwrap(), "hi");
        assert_eq!(u64_field(&obj, "n").unwrap(), 3);
        assert!(bool_field(&obj, "b").unwrap());
        assert_eq!(opt_u64_field(&obj, "o").unwrap(), None);
        assert_eq!(opt_u64_field(&obj, "missing").unwrap(), None);
        assert_eq!(opt_u64_field(&obj, "n").unwrap(), Some(3));
        assert!(str_field(&obj, "n").is_err());
        assert!(u64_field(&obj, "s").is_err());
        assert!(field(&obj, "missing").is_err());
        assert!(opt_u64_field(&obj, "s").is_err());
    }

    #[test]
    fn decode_object_rejects_non_objects() {
        assert!(decode_object(b"[1,2]").is_err());
        assert!(decode_object(b"not json").is_err());
        assert!(decode_object(b"\xff\xfe").is_err());
        assert!(decode_object(b"{}").is_ok());
    }
}
