//! Property tests for the shared frame codec (moved here from
//! `omq-server` when the codec was factored out — one codec, tested once).
//!
//! Two invariants, each over randomly generated payloads:
//!
//! 1. **Torn-read reassembly**: concatenating encoded frames and feeding
//!    the bytes to a [`FrameDecoder`] in chunks of arbitrary (generated)
//!    sizes yields exactly the original payload sequence;
//! 2. **Payload opacity**: the framing layer delivers arbitrary payload
//!    bytes verbatim — corruption inside a payload never desynchronises the
//!    stream, because the length prefix alone frames it.

use omq_wire::{frame_payload, FrameDecoder};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn arb_payload(max_len: usize) -> BoxedStrategy<Vec<u8>> {
    prop::collection::vec(0u32..256, 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as u8).collect())
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Torn reads: a frame sequence split at arbitrary byte boundaries
    /// reassembles to exactly the original sequence.
    #[test]
    fn torn_reads_reassemble(
        payloads in prop::collection::vec(arb_payload(48), 1..6),
        cuts in prop::collection::vec(1usize..48, 0..64),
    ) {
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_payload(p)).collect();
        let mut decoder = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0;
        // Feed chunks of the generated sizes, then whatever remains.
        for cut in cuts {
            if pos >= wire.len() {
                break;
            }
            let end = (pos + cut).min(wire.len());
            decoder.feed(&wire[pos..end]);
            pos = end;
            while let Some(payload) = decoder.next_frame().unwrap() {
                got.push(payload);
            }
        }
        decoder.feed(&wire[pos..]);
        while let Some(payload) = decoder.next_frame().unwrap() {
            got.push(payload);
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// Corrupting payload bytes never desynchronises the stream: the
    /// corrupted payload is delivered verbatim and the next frame decodes
    /// cleanly.
    #[test]
    fn corrupted_payloads_stay_framed(
        payload in arb_payload(256),
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..4),
    ) {
        let mut corrupted = payload;
        for (pos, xor) in flips {
            if corrupted.is_empty() {
                break;
            }
            let idx = pos % corrupted.len();
            corrupted[idx] ^= xor;
        }
        let mut wire = frame_payload(&corrupted);
        wire.extend_from_slice(&frame_payload(b"{\"t\":\"pin\"}"));
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        let first = decoder.next_frame().unwrap().expect("corrupted frame is still framed");
        prop_assert_eq!(first, corrupted);
        let second = decoder.next_frame().unwrap().expect("next frame intact");
        prop_assert_eq!(second, b"{\"t\":\"pin\"}".to_vec());
        prop_assert_eq!(decoder.pending(), 0);
    }
}
