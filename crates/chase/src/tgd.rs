//! Tuple-generating dependencies, guardedness and the description logic ELI.
//!
//! A TGD is a sentence `∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))` where `φ` (the *body*)
//! and `ψ` (the *head*) are conjunctions of relational atoms without
//! constants.  The variables shared between body and head are the *frontier*.
//!
//! * A TGD is **guarded** if its body is empty (`true`) or contains an atom
//!   mentioning all body variables.
//! * A TGD is an **ELI TGD** if it uses only unary and binary relation
//!   symbols, has exactly one frontier variable, contains no reflexive loops
//!   and no multi-edges in body or head, and its head is acyclic and
//!   connected.  Up to normalisation this captures the description logic ELI.

use crate::error::ChaseError;
use crate::Result;
use omq_cq::{Atom, ConjunctiveQuery, Term, VarId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tuple-generating dependency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tgd {
    /// Variable names; `VarId`s in the atoms index into this table.
    vars: Vec<String>,
    /// Body atoms (may be empty, representing logical truth).
    body: Vec<Atom>,
    /// Head atoms (never empty).
    head: Vec<Atom>,
}

impl Tgd {
    /// Parses a TGD from text, e.g.
    ///
    /// ```text
    /// Researcher(x) -> exists y. HasOffice(x, y)
    /// HasOffice(x, y) -> Office(y)
    /// true -> Top(x)            (body `true` = empty body)
    /// ```
    ///
    /// The `exists ... .` prefix of the head is optional: every head variable
    /// that does not occur in the body is implicitly existentially quantified.
    /// Constants are not allowed (as in the paper).
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        let (body_text, head_text) = text
            .split_once("->")
            .ok_or_else(|| ChaseError::Parse(format!("missing `->` in `{text}`")))?;
        let body_text = body_text.trim();
        let head_text = head_text.trim();

        // Strip an optional "exists v1, v2." prefix from the head.
        let head_text = if let Some(rest) = head_text.strip_prefix("exists") {
            match rest.split_once('.') {
                Some((_vars, atoms)) => atoms.trim(),
                None => {
                    return Err(ChaseError::Parse(format!(
                        "head `exists` prefix must be terminated by `.` in `{text}`"
                    )))
                }
            }
        } else {
            head_text
        };

        let body_spec = if body_text.eq_ignore_ascii_case("true") || body_text.is_empty() {
            String::new()
        } else {
            body_text.to_owned()
        };

        // Reuse the CQ parser by wrapping body and head into Boolean queries
        // sharing one variable space: parse them jointly.
        let joint = if body_spec.is_empty() {
            format!("q() :- {head_text}")
        } else {
            format!("q() :- {body_spec}, {head_text}")
        };
        let joint_query =
            ConjunctiveQuery::parse(&joint).map_err(|e| ChaseError::Parse(e.to_string()))?;
        if !joint_query.constants().is_empty() {
            return Err(ChaseError::Parse(format!(
                "TGDs must not contain constants: `{text}`"
            )));
        }
        let body_count = if body_spec.is_empty() {
            0
        } else {
            // Count atoms of the body by parsing it alone (same splitter).
            ConjunctiveQuery::parse(&format!("q() :- {body_spec}"))
                .map_err(|e| ChaseError::Parse(e.to_string()))?
                .atoms()
                .len()
        };
        let vars: Vec<String> = joint_query
            .body_vars()
            .iter()
            .map(|&v| joint_query.var_name(v).to_owned())
            .collect();
        // Variable ids in `joint_query` are interned in first-occurrence order,
        // which may differ from `body_vars()` order; build an explicit remap.
        let mut remap: FxHashMap<VarId, VarId> = FxHashMap::default();
        for (new_idx, &v) in joint_query.body_vars().iter().enumerate() {
            remap.insert(v, VarId(new_idx as u32));
        }
        let remap_atom = |a: &Atom| {
            a.map_terms(|t| match t {
                Term::Var(v) => Term::Var(remap[v]),
                c => c.clone(),
            })
        };
        let body: Vec<Atom> = joint_query.atoms()[..body_count]
            .iter()
            .map(remap_atom)
            .collect();
        let head: Vec<Atom> = joint_query.atoms()[body_count..]
            .iter()
            .map(remap_atom)
            .collect();
        if head.is_empty() {
            return Err(ChaseError::Parse(format!(
                "TGD has an empty head: `{text}`"
            )));
        }
        Ok(Tgd { vars, body, head })
    }

    /// Constructs a TGD from parts.  `vars` are the variable names referenced
    /// by the atoms' `VarId`s.
    pub fn new(vars: Vec<String>, body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Tgd { vars, body, head }
    }

    /// The body atoms (empty = logical truth).
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The head atoms.
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// The variable names.
    pub fn var_names(&self) -> &[String] {
        &self.vars
    }

    /// Name of one variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize]
    }

    fn vars_of(atoms: &[Atom]) -> FxHashSet<VarId> {
        atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// The body variables.
    pub fn body_vars(&self) -> FxHashSet<VarId> {
        Self::vars_of(&self.body)
    }

    /// The head variables.
    pub fn head_vars(&self) -> FxHashSet<VarId> {
        Self::vars_of(&self.head)
    }

    /// The frontier variables (shared between body and head), in index order.
    pub fn frontier(&self) -> Vec<VarId> {
        let body = self.body_vars();
        let head = self.head_vars();
        let mut frontier: Vec<VarId> = body.intersection(&head).copied().collect();
        frontier.sort();
        frontier
    }

    /// The existential variables (head variables not occurring in the body),
    /// in index order.
    pub fn existential_vars(&self) -> Vec<VarId> {
        let body = self.body_vars();
        let mut exist: Vec<VarId> = self
            .head_vars()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect();
        exist.sort();
        exist
    }

    /// Returns `true` iff the TGD is guarded: the body is empty or contains an
    /// atom mentioning every body variable.
    pub fn is_guarded(&self) -> bool {
        if self.body.is_empty() {
            return true;
        }
        let body_vars = self.body_vars();
        self.body.iter().any(|a| {
            let atom_vars: FxHashSet<VarId> = a.variables().into_iter().collect();
            body_vars.is_subset(&atom_vars)
        })
    }

    /// The guard atom, if any: the first body atom mentioning all body
    /// variables.
    pub fn guard(&self) -> Option<&Atom> {
        let body_vars = self.body_vars();
        self.body.iter().find(|a| {
            let atom_vars: FxHashSet<VarId> = a.variables().into_iter().collect();
            body_vars.is_subset(&atom_vars)
        })
    }

    /// Returns `true` iff the TGD is an ELI TGD (see module docs).
    pub fn is_eli(&self) -> bool {
        // Only unary/binary symbols.
        if self
            .body
            .iter()
            .chain(&self.head)
            .any(|a| a.arity() == 0 || a.arity() > 2)
        {
            return false;
        }
        // Exactly one frontier variable.
        if self.frontier().len() != 1 {
            return false;
        }
        // No reflexive loops and no multi-edges in body or head.
        for atoms in [&self.body, &self.head] {
            if Self::has_reflexive_loop(atoms) || Self::has_multi_edge(atoms) {
                return false;
            }
        }
        // Head is acyclic and connected (viewed as an undirected graph on its
        // variables).
        Self::atoms_form_tree(&self.head)
    }

    fn has_reflexive_loop(atoms: &[Atom]) -> bool {
        atoms.iter().any(|a| {
            a.arity() == 2
                && a.terms[0].as_var().is_some()
                && a.terms[0].as_var() == a.terms[1].as_var()
        })
    }

    fn has_multi_edge(atoms: &[Atom]) -> bool {
        let mut seen: FxHashSet<(VarId, VarId)> = FxHashSet::default();
        for a in atoms {
            if a.arity() != 2 {
                continue;
            }
            if let (Some(x), Some(y)) = (a.terms[0].as_var(), a.terms[1].as_var()) {
                let key = if x <= y { (x, y) } else { (y, x) };
                if !seen.insert(key) {
                    return true;
                }
            }
        }
        false
    }

    /// Returns `true` iff the binary atoms of `atoms` form a forest that,
    /// together with the unary atoms, is connected (i.e. a single tree over
    /// the variables).
    fn atoms_form_tree(atoms: &[Atom]) -> bool {
        let vars: Vec<VarId> = {
            let mut v: Vec<VarId> = Self::vars_of(atoms).into_iter().collect();
            v.sort();
            v
        };
        if vars.is_empty() {
            return false;
        }
        let mut edges: FxHashSet<(VarId, VarId)> = FxHashSet::default();
        for a in atoms {
            if a.arity() == 2 {
                if let (Some(x), Some(y)) = (a.terms[0].as_var(), a.terms[1].as_var()) {
                    if x != y {
                        edges.insert(if x <= y { (x, y) } else { (y, x) });
                    }
                }
            }
        }
        // Connected + acyclic ⇔ |edges| = |vars| - 1 and connected.
        if edges.len() != vars.len() - 1 {
            return false;
        }
        let mut adjacency: FxHashMap<VarId, Vec<VarId>> = FxHashMap::default();
        for &(a, b) in &edges {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        let mut seen: FxHashSet<VarId> = FxHashSet::default();
        let mut stack = vec![vars[0]];
        seen.insert(vars[0]);
        while let Some(v) = stack.pop() {
            for &n in adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == vars.len()
    }

    /// The body viewed as a conjunctive query whose answer variables are the
    /// frontier (used to find triggers via homomorphism search).  The variable
    /// identifiers of the returned query coincide with this TGD's identifiers.
    pub fn body_query(&self) -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::empty("tgd_body");
        for name in &self.vars {
            q.var(name);
        }
        for atom in &self.body {
            q.push_atom(atom.clone());
        }
        for v in self.frontier() {
            q.push_answer_var(v);
        }
        q
    }

    /// Relation symbols used by this TGD, with arities.
    pub fn relations(&self) -> Result<FxHashMap<String, usize>> {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for atom in self.body.iter().chain(&self.head) {
            match map.get(&atom.relation) {
                Some(&a) if a != atom.arity() => {
                    return Err(ChaseError::ArityConflict {
                        relation: atom.relation.clone(),
                        first: a,
                        second: atom.arity(),
                    })
                }
                Some(_) => {}
                None => {
                    map.insert(atom.relation.clone(), atom.arity());
                }
            }
        }
        Ok(map)
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render_atoms = |atoms: &[Atom]| -> String {
            atoms
                .iter()
                .map(|a| {
                    let args: Vec<String> = a
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => self.var_name(*v).to_owned(),
                            Term::Const(c) => format!("'{c}'"),
                        })
                        .collect();
                    format!("{}({})", a.relation, args.join(", "))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let body = if self.body.is_empty() {
            "true".to_owned()
        } else {
            render_atoms(&self.body)
        };
        let exist = self.existential_vars();
        if exist.is_empty() {
            write!(f, "{} -> {}", body, render_atoms(&self.head))
        } else {
            let names: Vec<&str> = exist.iter().map(|&v| self.var_name(v)).collect();
            write!(
                f,
                "{} -> exists {}. {}",
                body,
                names.join(", "),
                render_atoms(&self.head)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_running_example() {
        let t = Tgd::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
        assert_eq!(t.body().len(), 1);
        assert_eq!(t.head().len(), 1);
        assert_eq!(t.frontier().len(), 1);
        assert_eq!(t.existential_vars().len(), 1);
        assert!(t.is_guarded());
        assert!(t.is_eli());
    }

    #[test]
    fn parse_without_exists_prefix() {
        let t = Tgd::parse("HasOffice(x, y) -> Office(y)").unwrap();
        assert!(t.existential_vars().is_empty());
        assert_eq!(t.frontier().len(), 1);
        assert!(t.is_guarded());
        assert!(t.is_eli());
    }

    #[test]
    fn parse_true_body() {
        let t = Tgd::parse("true -> exists x. Top(x)").unwrap();
        assert!(t.body().is_empty());
        assert!(t.is_guarded());
        assert!(!t.is_eli()); // no frontier variable
    }

    #[test]
    fn guardedness() {
        let guarded = Tgd::parse("R(x, y), A(x) -> S(x, y)").unwrap();
        assert!(guarded.is_guarded());
        assert_eq!(guarded.guard().unwrap().relation, "R");
        let unguarded = Tgd::parse("R(x, y), S(y, z) -> T(x, z)").unwrap();
        assert!(!unguarded.is_guarded());
        assert!(unguarded.guard().is_none());
    }

    #[test]
    fn eli_restrictions() {
        // Two frontier variables: not ELI.
        let two_frontier = Tgd::parse("R(x, y) -> S(x, y)").unwrap();
        assert!(!two_frontier.is_eli());
        // Ternary relation: not ELI.
        let ternary = Tgd::parse("T(x, y, z) -> A(x)").unwrap();
        assert!(!ternary.is_eli());
        // Reflexive loop in the head: not ELI.
        let reflexive = Tgd::parse("A(x) -> R(x, x)").unwrap();
        assert!(!reflexive.is_eli());
        // Multi-edge in the head: not ELI.
        let multi = Tgd::parse("A(x) -> exists y. R(x, y), S(x, y)").unwrap();
        assert!(!multi.is_eli());
        // Disconnected head: not ELI.
        let disconnected = Tgd::parse("A(x) -> exists y, z. R(x, y), B(z)").unwrap();
        assert!(!disconnected.is_eli());
        // A proper ELI TGD with a head path.
        let eli = Tgd::parse("A(x) -> exists y, z. R(x, y), S(y, z), B(z)").unwrap();
        assert!(eli.is_eli());
        assert!(eli.is_guarded());
    }

    #[test]
    fn frontier_and_existentials() {
        let t = Tgd::parse("R(x, y) -> exists z. S(y, z), T(z, w)").unwrap();
        let frontier: Vec<String> = t
            .frontier()
            .iter()
            .map(|&v| t.var_name(v).to_owned())
            .collect();
        assert_eq!(frontier, vec!["y".to_owned()]);
        let exist: Vec<String> = t
            .existential_vars()
            .iter()
            .map(|&v| t.var_name(v).to_owned())
            .collect();
        assert_eq!(exist, vec!["z".to_owned(), "w".to_owned()]);
    }

    #[test]
    fn body_query_shares_variable_ids() {
        let t = Tgd::parse("R(x, y), A(y) -> S(y, z)").unwrap();
        let q = t.body_query();
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.answer_vars().len(), 1);
        let frontier = t.frontier()[0];
        assert_eq!(q.answer_vars()[0], frontier);
        assert_eq!(q.var_name(frontier), t.var_name(frontier));
    }

    #[test]
    fn rejects_constants_and_empty_heads() {
        assert!(Tgd::parse("R(x, 'a') -> S(x)").is_err());
        assert!(Tgd::parse("R(x) -> ").is_err());
        assert!(Tgd::parse("R(x) S(x)").is_err());
        assert!(Tgd::parse("R(x) -> exists y S(x, y)").is_err());
    }

    #[test]
    fn relations_collects_arities() {
        let t = Tgd::parse("R(x, y) -> exists z. S(y, z), A(z)").unwrap();
        let rels = t.relations().unwrap();
        assert_eq!(rels["R"], 2);
        assert_eq!(rels["S"], 2);
        assert_eq!(rels["A"], 1);
    }

    #[test]
    fn display_round_trips_meaning() {
        let t = Tgd::parse("Researcher(x) -> exists y. HasOffice(x, y)").unwrap();
        let rendered = format!("{t}");
        let reparsed = Tgd::parse(&rendered).unwrap();
        assert_eq!(reparsed.frontier().len(), 1);
        assert_eq!(reparsed.existential_vars().len(), 1);
    }
}
