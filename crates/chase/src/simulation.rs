//! Simulations between instances over unary/binary schemas (Appendix A.3 of
//! the paper).
//!
//! A *simulation* from instance `I` to instance `J` is a relation
//! `S ⊆ adom(I) × adom(J)` such that whenever `(c, c') ∈ S`:
//!
//! 1. `A(c) ∈ I` implies `A(c') ∈ J` for unary `A`;
//! 2. `R(c, d) ∈ I` implies `R(c', d') ∈ J` for some `d'` with `(d, d') ∈ S`;
//! 3. `R(d, c) ∈ I` implies `R(d', c') ∈ J` for some `d'` with `(d, d') ∈ S`.
//!
//! Simulations characterise the expressive power of ELI: if `(I, c) ⪯ (J, c')`
//! then every ELI query satisfied at `c` in `I` is satisfied at `c'` in `J`
//! (Lemma A.4), which is the key tool behind the paper's lower-bound
//! constructions (the *completeness property* of the reduction databases).
//!
//! The greatest simulation is computed by the standard fixpoint refinement,
//! which runs in time `O(|I| · |J|)` on the instances used here.

use omq_data::{Database, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// The greatest simulation from `from` to `to`, as a set of value pairs.
///
/// Only unary and binary relation symbols participate (higher-arity facts are
/// ignored, matching the ELI setting).  Relation symbols are matched by name.
pub fn greatest_simulation(from: &Database, to: &Database) -> FxHashSet<(Value, Value)> {
    // Pre-index `to` by (relation name, direction, value) for the successor
    // checks, and collect unary labels per value for both instances.
    let mut from_labels: FxHashMap<Value, FxHashSet<&str>> = FxHashMap::default();
    let mut to_labels: FxHashMap<Value, FxHashSet<&str>> = FxHashMap::default();
    let mut from_edges: Vec<(&str, Value, Value)> = Vec::new();
    let mut to_out: FxHashMap<(&str, Value), Vec<Value>> = FxHashMap::default();
    let mut to_in: FxHashMap<(&str, Value), Vec<Value>> = FxHashMap::default();

    for fact in from.facts() {
        let name = from.schema().name(fact.rel);
        match fact.args.len() {
            1 => {
                from_labels.entry(fact.args[0]).or_default().insert(name);
            }
            2 => from_edges.push((name, fact.args[0], fact.args[1])),
            _ => {}
        }
    }
    for fact in to.facts() {
        let name = to.schema().name(fact.rel);
        match fact.args.len() {
            1 => {
                to_labels.entry(fact.args[0]).or_default().insert(name);
            }
            2 => {
                to_out
                    .entry((name, fact.args[0]))
                    .or_default()
                    .push(fact.args[1]);
                to_in
                    .entry((name, fact.args[1]))
                    .or_default()
                    .push(fact.args[0]);
            }
            _ => {}
        }
    }

    // Start with all pairs satisfying the unary condition, then refine.
    let empty: FxHashSet<&str> = FxHashSet::default();
    let mut simulation: FxHashSet<(Value, Value)> = FxHashSet::default();
    for &c in from.adom() {
        let required = from_labels.get(&c).unwrap_or(&empty);
        for &d in to.adom() {
            let available = to_labels.get(&d).unwrap_or(&empty);
            if required.is_subset(available) {
                simulation.insert((c, d));
            }
        }
    }

    // Group the `from` edges by source and by target for the refinement.
    let mut out_edges: FxHashMap<Value, Vec<(&str, Value)>> = FxHashMap::default();
    let mut in_edges: FxHashMap<Value, Vec<(&str, Value)>> = FxHashMap::default();
    for &(name, a, b) in &from_edges {
        out_edges.entry(a).or_default().push((name, b));
        in_edges.entry(b).or_default().push((name, a));
    }

    loop {
        let mut to_remove: Vec<(Value, Value)> = Vec::new();
        for &(c, d) in &simulation {
            // Condition 2: every outgoing edge of c must be matched from d.
            let ok_out = out_edges
                .get(&c)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .all(|&(name, c2)| {
                    to_out
                        .get(&(name, d))
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .any(|&d2| simulation.contains(&(c2, d2)))
                });
            // Condition 3: every incoming edge of c must be matched into d.
            let ok_in = in_edges
                .get(&c)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .all(|&(name, c2)| {
                    to_in
                        .get(&(name, d))
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .any(|&d2| simulation.contains(&(c2, d2)))
                });
            if !ok_out || !ok_in {
                to_remove.push((c, d));
            }
        }
        if to_remove.is_empty() {
            break;
        }
        for pair in to_remove {
            simulation.remove(&pair);
        }
    }
    simulation
}

/// Returns `true` iff `(from, c) ⪯ (to, d)`: some simulation from `from` to
/// `to` contains `(c, d)`.
pub fn simulates(from: &Database, c: Value, to: &Database, d: Value) -> bool {
    greatest_simulation(from, to).contains(&(c, d))
}

/// Checks whether a given relation is a simulation (useful for tests and for
/// validating hand-built relations).
pub fn is_simulation(from: &Database, to: &Database, relation: &FxHashSet<(Value, Value)>) -> bool {
    let greatest = greatest_simulation(from, to);
    relation.iter().all(|pair| greatest.contains(pair))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_cq::{homomorphism, ConjunctiveQuery};
    use omq_data::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("A", 1).unwrap();
        s.add_relation("B", 1).unwrap();
        s.add_relation("R", 2).unwrap();
        s
    }

    fn value(db: &Database, name: &str) -> Value {
        Value::Const(db.const_id(name).unwrap())
    }

    #[test]
    fn path_simulates_into_cycle() {
        // A path a -> b simulates into a single reflexive point with the same
        // labels, but not vice versa when labels differ.
        let path = Database::builder(schema())
            .fact("A", ["a"])
            .fact("R", ["a", "b"])
            .build()
            .unwrap();
        let cycle = Database::builder(schema())
            .fact("A", ["c"])
            .fact("R", ["c", "c"])
            .build()
            .unwrap();
        assert!(simulates(
            &path,
            value(&path, "a"),
            &cycle,
            value(&cycle, "c")
        ));
        // The cycle does NOT simulate into the path: c has an outgoing edge
        // from its successor, b does not.
        assert!(!simulates(
            &cycle,
            value(&cycle, "c"),
            &path,
            value(&path, "a")
        ));
    }

    #[test]
    fn unary_labels_must_be_preserved() {
        let one = Database::builder(schema())
            .fact("A", ["a"])
            .fact("B", ["a"])
            .build()
            .unwrap();
        let other = Database::builder(schema())
            .fact("A", ["b"])
            .build()
            .unwrap();
        assert!(!simulates(
            &one,
            value(&one, "a"),
            &other,
            value(&other, "b")
        ));
        assert!(simulates(
            &other,
            value(&other, "b"),
            &one,
            value(&one, "a")
        ));
    }

    #[test]
    fn incoming_edges_matter() {
        let with_incoming = Database::builder(schema())
            .fact("R", ["x", "a"])
            .fact("A", ["a"])
            .build()
            .unwrap();
        let without = Database::builder(schema())
            .fact("A", ["b"])
            .build()
            .unwrap();
        assert!(!simulates(
            &with_incoming,
            value(&with_incoming, "a"),
            &without,
            value(&without, "b")
        ));
    }

    #[test]
    fn simulation_preserves_eli_queries() {
        // Lemma A.4: if (D1, c1) ⪯ (D2, c2) and c1 satisfies an ELI query
        // (a tree-shaped unary CQ), then so does c2.  Check on a family of
        // tree queries over two concrete databases.
        let d1 = Database::builder(schema())
            .fact("A", ["c1"])
            .fact("R", ["c1", "m"])
            .fact("B", ["m"])
            .build()
            .unwrap();
        let d2 = Database::builder(schema())
            .fact("A", ["c2"])
            .fact("R", ["c2", "n1"])
            .fact("B", ["n1"])
            .fact("R", ["c2", "n2"])
            .build()
            .unwrap();
        let c1 = value(&d1, "c1");
        let c2 = value(&d2, "c2");
        assert!(simulates(&d1, c1, &d2, c2));
        for text in [
            "q(x) :- A(x)",
            "q(x) :- R(x, y)",
            "q(x) :- R(x, y), B(y)",
            "q(x) :- A(x), R(x, y), B(y)",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            let x = q.var_id("x").unwrap();
            let holds_in_d1 =
                homomorphism::HomSearch::new(&q, &d1).exists(&[(x, c1)].into_iter().collect());
            let holds_in_d2 =
                homomorphism::HomSearch::new(&q, &d2).exists(&[(x, c2)].into_iter().collect());
            if holds_in_d1 {
                assert!(holds_in_d2, "ELI query {text} not preserved");
            }
        }
    }

    #[test]
    fn greatest_simulation_is_a_simulation() {
        let d1 = Database::builder(schema())
            .fact("R", ["a", "b"])
            .fact("R", ["b", "c"])
            .fact("A", ["a"])
            .build()
            .unwrap();
        let d2 = Database::builder(schema())
            .fact("R", ["u", "v"])
            .fact("R", ["v", "w"])
            .fact("A", ["u"])
            .build()
            .unwrap();
        let simulation = greatest_simulation(&d1, &d2);
        assert!(is_simulation(&d1, &d2, &simulation));
        assert!(simulation.contains(&(value(&d1, "a"), value(&d2, "u"))));
        // Reflexivity on identical instances.
        let self_sim = greatest_simulation(&d1, &d1);
        for &v in d1.adom() {
            assert!(self_sim.contains(&(v, v)));
        }
    }
}
