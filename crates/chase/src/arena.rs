//! A bump arena for staging chase-generated facts.
//!
//! Every chase loop in this crate stages a batch of derived facts before
//! appending them to the [`Database`]: the bounded chase
//! stages one round of trigger heads, the query-directed chase stages one
//! saturation round and the grafted null trees.  Staging through `Vec<Fact>`
//! costs two heap allocations per derived fact (the staging slot plus the
//! fact's own `Vec<Value>` argument vector), all freed at the end of the
//! round.  A [`FactArena`] replaces that with three flat buffers — relation
//! ids, argument values, and offsets delimiting each fact's arguments — that
//! grow bump-style and are *reused*: across rounds within one chase, and,
//! through the pool kept by [`QchasePlan`](crate::QchasePlan), across
//! [`chase_many`](crate::QchasePlan::chase_many) calls.  After warm-up, a
//! chase round allocates only for the facts that actually enter the database.

use omq_data::{Database, RelId, Value};

/// A reusable flat buffer of staged `(relation, arguments)` facts.
///
/// Push with [`FactArena::push_fact`], drain by iterating
/// [`FactArena::facts`], recycle with [`FactArena::clear`] (which keeps the
/// buffer capacity).
#[derive(Debug, Clone, Default)]
pub struct FactArena {
    /// Relation of the `i`-th staged fact.
    rels: Vec<RelId>,
    /// `offsets[i]..offsets[i+1]` delimits fact `i`'s arguments in `values`.
    /// Empty until the first push; always `rels.len() + 1` entries afterwards.
    offsets: Vec<u32>,
    /// All staged arguments, back to back.
    values: Vec<Value>,
}

impl FactArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages one fact.
    pub fn push_fact(&mut self, rel: RelId, args: &[Value]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.rels.push(rel);
        self.values.extend_from_slice(args);
        self.offsets
            .push(u32::try_from(self.values.len()).expect("fact arena overflow"));
    }

    /// Number of staged facts.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Returns `true` iff no facts are staged.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates the staged facts in push order.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &[Value])> + '_ {
        self.rels.iter().enumerate().map(move |(i, &rel)| {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            (rel, &self.values[start..end])
        })
    }

    /// Appends every staged fact to `db` in push order — the one
    /// staging-copy flush shared by the bounded chase round loop and both
    /// query-directed chase phases (saturation and grafting).  Facts the
    /// database already contains are deduplicated by
    /// [`Database::add_fact_ref`]; returns how many were actually new.
    pub fn flush_into(&self, db: &mut Database) -> omq_data::Result<usize> {
        let mut added = 0usize;
        for (rel, args) in self.facts() {
            added += usize::from(db.add_fact_ref(rel, args)?);
        }
        Ok(added)
    }

    /// Forgets the staged facts but keeps the buffer capacity — the whole
    /// point of reusing the arena.
    pub fn clear(&mut self) {
        self.rels.clear();
        self.offsets.clear();
        self.values.clear();
    }

    /// Capacity of the argument buffer, in values (a reuse diagnostic for the
    /// perf lab).
    pub fn values_capacity(&self) -> usize {
        self.values.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::ConstId;

    #[test]
    fn push_iterate_clear_round_trip() {
        let mut arena = FactArena::new();
        assert!(arena.is_empty());
        let a = Value::Const(ConstId(0));
        let b = Value::Const(ConstId(1));
        arena.push_fact(RelId(0), &[a, b]);
        arena.push_fact(RelId(1), &[b]);
        arena.push_fact(RelId(2), &[]);
        assert_eq!(arena.len(), 3);
        let staged: Vec<(RelId, Vec<Value>)> = arena
            .facts()
            .map(|(rel, args)| (rel, args.to_vec()))
            .collect();
        assert_eq!(
            staged,
            vec![
                (RelId(0), vec![a, b]),
                (RelId(1), vec![b]),
                (RelId(2), vec![]),
            ]
        );
        let capacity = arena.values_capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.facts().count(), 0);
        // Clearing recycles the buffers instead of freeing them.
        assert_eq!(arena.values_capacity(), capacity);
        arena.push_fact(RelId(3), &[a]);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.facts().next(), Some((RelId(3), &[a][..])));
    }
}
