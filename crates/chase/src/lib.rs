//! Ontology substrate for the OMQ enumeration library.
//!
//! This crate implements the ontology-side formalism of *Efficiently
//! Enumerating Answers to Ontology-Mediated Queries* (Lutz & Przybyłko,
//! PODS 2022):
//!
//! * **tuple-generating dependencies (TGDs)**, guardedness and the description
//!   logic **ELI** (as syntactically restricted guarded TGDs), see [`tgd`];
//! * **ontologies** (finite sets of TGDs) and **ontology-mediated queries**
//!   `(O, S, q)`, see [`ontology`] and [`omq`];
//! * the (bounded, fair, oblivious) **chase**, see [`mod@chase`];
//! * the **guarded saturation** of the database part and the **query-directed
//!   chase** `ch^q_O(D)` of Section 3 of the paper, computable in time linear
//!   in `‖D‖`, see [`qchase`];
//! * a linear-time **Horn minimal-model solver** (Dowling–Gallier), the proof
//!   device behind Proposition 3.3, exposed as a reusable substrate, see
//!   [`horn`];
//! * **simulations** between instances over unary/binary schemas
//!   (Appendix A.3), the tool behind the lower-bound constructions, see
//!   [`simulation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod chase;
pub mod error;
pub mod horn;
pub mod omq;
pub mod ontology;
pub mod qchase;
pub mod simulation;
pub mod tgd;

pub use arena::FactArena;
pub use chase::{chase, chase_in, ChaseConfig, ChaseResult};
pub use error::ChaseError;
pub use horn::HornFormula;
pub use omq::OntologyMediatedQuery;
pub use ontology::Ontology;
pub use qchase::{query_directed_chase, QchaseConfig, QchasePlan, QueryDirectedChase};
pub use simulation::{greatest_simulation, simulates};
pub use tgd::Tgd;

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, ChaseError>;
