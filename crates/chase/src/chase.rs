//! The (bounded, fair, oblivious) chase.
//!
//! The chase makes the consequences of a set of TGDs explicit in an instance.
//! For guarded TGDs the chase may be infinite, so this implementation bounds
//! the *depth* of generated nulls (the number of chase steps separating a null
//! from the database constants) and reports whether the bound was hit.  The
//! bounded chase is the evaluation oracle of the brute-force baselines and of
//! the property tests; the production path of the library uses the
//! query-directed chase of [`crate::qchase`] instead.

use crate::arena::FactArena;
use crate::error::ChaseError;
use crate::ontology::Ontology;
use crate::Result;
use omq_cq::{Assignment, HomSearch, Term};
use omq_data::{Database, NullId, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// Configuration of the bounded chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Maximal depth of generated nulls.  Database constants have depth 0; a
    /// null created by a trigger whose body only uses depth-`d` values has
    /// depth `d + 1`.  Triggers that would create deeper nulls are not fired.
    pub max_depth: usize,
    /// Safety budget on the total number of facts.
    pub max_facts: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_depth: 6,
            max_facts: 1_000_000,
        }
    }
}

impl ChaseConfig {
    /// A configuration with the given depth bound and the default fact budget.
    pub fn with_depth(max_depth: usize) -> Self {
        ChaseConfig {
            max_depth,
            ..Default::default()
        }
    }
}

/// The result of a bounded chase.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The chased instance (input database plus derived facts).
    pub database: Database,
    /// Depth of each generated null.
    pub null_depth: FxHashMap<NullId, usize>,
    /// `true` iff some applicable trigger was suppressed by the depth bound.
    pub truncated: bool,
    /// Number of chase steps performed.
    pub steps: usize,
}

/// Runs the bounded fair oblivious chase of `db` with `ontology`.
pub fn chase(db: &Database, ontology: &Ontology, config: &ChaseConfig) -> Result<ChaseResult> {
    let mut arena = FactArena::new();
    chase_in(db, ontology, config, &mut arena)
}

/// [`chase`] staging each round's derived facts in a caller-provided
/// [`FactArena`] instead of a throwaway `Vec<Fact>`.  The arena is cleared on
/// entry and left cleared on success, so one arena can serve many chases —
/// the query-directed chase pools arenas across its (thousands of) bag
/// chases, paying the staging allocation once per pool entry instead of once
/// per derived fact.
pub fn chase_in(
    db: &Database,
    ontology: &Ontology,
    config: &ChaseConfig,
    arena: &mut FactArena,
) -> Result<ChaseResult> {
    let mut result = db.clone();
    // Make sure every relation symbol of the ontology exists in the schema.
    let mut relations: Vec<(String, usize)> = ontology.relations()?.into_iter().collect();
    relations.sort();
    for (name, arity) in relations {
        result.add_relation(&name, arity)?;
    }

    let body_queries: Vec<_> = ontology.tgds().iter().map(|t| t.body_query()).collect();
    let mut applied: FxHashSet<(usize, Vec<(u32, Value)>)> = FxHashSet::default();
    let mut null_depth: FxHashMap<NullId, usize> = FxHashMap::default();
    let mut truncated = false;
    let mut steps = 0usize;

    let mut scratch: Vec<Value> = Vec::new();
    loop {
        arena.clear();
        let mut new_nulls: Vec<(NullId, usize)> = Vec::new();
        for (tgd_idx, tgd) in ontology.tgds().iter().enumerate() {
            let body_query = &body_queries[tgd_idx];
            // A TGD with an empty body has the single empty trigger.
            let triggers: Vec<Assignment> = if tgd.body().is_empty() {
                vec![Assignment::default()]
            } else {
                HomSearch::new(body_query, &result).find_all(&Assignment::default())
            };
            for hom in triggers {
                let mut key: Vec<(u32, Value)> = hom.iter().map(|(v, val)| (v.0, *val)).collect();
                key.sort_unstable();
                if applied.contains(&(tgd_idx, key.clone())) {
                    continue;
                }
                let trigger_depth = key
                    .iter()
                    .map(|(_, val)| match val {
                        Value::Const(_) => 0,
                        Value::Null(n) => null_depth.get(n).copied().unwrap_or(0),
                    })
                    .max()
                    .unwrap_or(0);
                if trigger_depth >= config.max_depth {
                    truncated = true;
                    continue;
                }
                applied.insert((tgd_idx, key));
                steps += 1;

                // Fresh nulls for the existential variables.
                let mut extension = hom.clone();
                for ev in tgd.existential_vars() {
                    let null = result.fresh_null();
                    new_nulls.push((null, trigger_depth + 1));
                    null_depth.insert(null, trigger_depth + 1);
                    extension.insert(ev, Value::Null(null));
                }
                for atom in tgd.head() {
                    let rel = result.schema().require(&atom.relation)?;
                    scratch.clear();
                    scratch.extend(atom.terms.iter().map(|t| match t {
                        Term::Var(v) => extension[v],
                        Term::Const(_) => unreachable!("TGDs have no constants"),
                    }));
                    arena.push_fact(rel, &scratch);
                }
            }
        }
        if arena.is_empty() {
            break;
        }
        arena.flush_into(&mut result)?;
        if result.len() > config.max_facts {
            return Err(ChaseError::ChaseBudgetExceeded {
                max_facts: config.max_facts,
            });
        }
        let _ = new_nulls;
    }
    arena.clear();

    Ok(ChaseResult {
        database: result,
        null_depth,
        truncated,
        steps,
    })
}

/// Checks whether `db` satisfies every TGD of `ontology` (every trigger's head
/// is realised by some extension).
pub fn satisfies(db: &Database, ontology: &Ontology) -> bool {
    for tgd in ontology.tgds() {
        let body_query = tgd.body_query();
        let triggers: Vec<Assignment> = if tgd.body().is_empty() {
            vec![Assignment::default()]
        } else {
            HomSearch::new(&body_query, db).find_all(&Assignment::default())
        };
        // Build the head as a query whose variables coincide with the TGD's.
        let mut head_query = omq_cq::ConjunctiveQuery::empty("head");
        for name in tgd.var_names() {
            head_query.var(name);
        }
        for atom in tgd.head() {
            head_query.push_atom(atom.clone());
        }
        let head_search = HomSearch::new(&head_query, db);
        for hom in triggers {
            // Restrict the trigger to the frontier: the head must be
            // satisfiable with the frontier fixed.
            let frontier: Assignment = tgd.frontier().into_iter().map(|v| (v, hom[&v])).collect();
            if !head_search.exists(&frontier) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Schema;

    fn office_ontology() -> Ontology {
        Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap()
    }

    fn office_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    #[test]
    fn chase_running_example() {
        let result = chase(&office_db(), &office_ontology(), &ChaseConfig::default()).unwrap();
        let db = &result.database;
        assert!(db.has_nulls());
        // Every researcher has an office in some building in every model, so
        // the chase must contain a HasOffice fact for mike with a null.
        let has_office = db.schema().relation_id("HasOffice").unwrap();
        let mike = Value::Const(db.const_id("mike").unwrap());
        let mike_offices = db.facts_with(has_office, 0, mike);
        assert_eq!(mike_offices.len(), 1);
        assert!(db.fact(mike_offices[0]).args[1].is_null());
        // Office(room1) and Office(room4) are derived.
        let office = db.schema().relation_id("Office").unwrap();
        assert!(db.facts_of(office).len() >= 2);
        assert!(!result.truncated);
        assert!(result.steps > 0);
        assert!(satisfies(db, &office_ontology()));
    }

    #[test]
    fn oblivious_chase_fires_even_if_head_satisfied() {
        // mary already has an office, yet the oblivious chase introduces an
        // additional null office for her.
        let result = chase(&office_db(), &office_ontology(), &ChaseConfig::default()).unwrap();
        let db = &result.database;
        let has_office = db.schema().relation_id("HasOffice").unwrap();
        let mary = Value::Const(db.const_id("mary").unwrap());
        assert!(db.facts_with(has_office, 0, mary).len() >= 2);
    }

    #[test]
    fn recursive_ontology_is_truncated() {
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y)\nR(x, y) -> A(y)").unwrap();
        let mut s = Schema::new();
        s.add_relation("A", 1).unwrap();
        let db = Database::builder(s).fact("A", ["a"]).build().unwrap();
        let result = chase(&db, &ontology, &ChaseConfig::with_depth(3)).unwrap();
        assert!(result.truncated);
        // Depth bound 3: nulls at depth 1, 2, 3 exist.
        assert_eq!(result.null_depth.values().copied().max().unwrap_or(0), 3);
    }

    #[test]
    fn chase_budget_is_enforced() {
        let ontology = Ontology::parse("A(x) -> exists y. A(y)").unwrap();
        let mut s = Schema::new();
        s.add_relation("A", 1).unwrap();
        let db = Database::builder(s).fact("A", ["a"]).build().unwrap();
        let config = ChaseConfig {
            max_depth: usize::MAX,
            max_facts: 50,
        };
        assert!(matches!(
            chase(&db, &ontology, &config),
            Err(ChaseError::ChaseBudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_ontology_is_identity() {
        let db = office_db();
        let result = chase(&db, &Ontology::new(), &ChaseConfig::default()).unwrap();
        assert_eq!(result.database.len(), db.len());
        assert_eq!(result.steps, 0);
        assert!(!result.truncated);
    }

    #[test]
    fn true_body_tgd_fires_once() {
        let ontology = Ontology::parse("true -> exists x. Init(x)").unwrap();
        let mut s = Schema::new();
        s.add_relation("Seed", 1).unwrap();
        let db = Database::builder(s).fact("Seed", ["s"]).build().unwrap();
        let result = chase(&db, &ontology, &ChaseConfig::default()).unwrap();
        let init = result.database.schema().relation_id("Init").unwrap();
        assert_eq!(result.database.facts_of(init).len(), 1);
    }

    #[test]
    fn satisfies_detects_violations() {
        let ontology = office_ontology();
        let db = office_db();
        // The raw database does not satisfy the ontology (mike has no office).
        assert!(!satisfies(&db, &ontology));
    }

    #[test]
    fn frontier_propagation_keeps_constants() {
        let ontology = Ontology::parse("HasOffice(x, y) -> Office(y)").unwrap();
        let db = office_db();
        let result = chase(&db, &ontology, &ChaseConfig::default()).unwrap();
        let office = result.database.schema().relation_id("Office").unwrap();
        let room1 = Value::Const(result.database.const_id("room1").unwrap());
        assert_eq!(result.database.facts_with(office, 0, room1).len(), 1);
    }
}
