//! The query-directed chase `ch^q_O(D)` (Section 3 of the paper).
//!
//! For every OMQ `Q = (O, S, q)` with guarded `O` and every `S`-database `D`,
//! the paper constructs in time linear in `‖D‖` a *finite* database
//! `ch^q_O(D)` that agrees with the (possibly infinite) chase `ch_O(D)` on all
//! properties relevant to answering `q`: complete answers, minimal partial
//! answers, and minimal partial answers with multi-wildcards (Lemma 3.2).
//!
//! The paper's proof device is a propositional Horn formula whose minimal
//! model encodes which "local" facts are entailed (Proposition 3.3); the
//! formula ranges over the closure `cl(Q)` and is therefore constant in the
//! data but astronomically large in `‖Q‖`.  This implementation computes the
//! same object by an equivalent, practical route that exploits guardedness
//! (Lemma A.2 locality):
//!
//! 1. **Guarded saturation** — for every guarded set `S` of the current
//!    database, chase the *bag* `D|_S` locally and copy every derived ground
//!    fact (over `S`) back into the database; iterate to a fixpoint.  By
//!    guardedness every entailed fact over database constants is derivable
//!    this way.
//! 2. **Grafting** — for every guarded set, chase its bag once more and graft
//!    the generated null trees (truncated at a configurable depth, by default
//!    `max(|var(q)|, 2)`) onto the database with fresh nulls.  Homomorphic
//!    images of connected subqueries with at most `|var(q)|` variables that
//!    touch the database part lie within that depth.
//!
//! Both phases memoise their work by the *isomorphism type of the bag*, which
//! is what makes the construction linear in `‖D‖`: the number of bag types
//! depends only on the ontology, not on the data (experiment E2 validates the
//! linearity empirically, experiment E11 ablates the memoisation).

use crate::arena::FactArena;
use crate::chase::{chase_in, ChaseConfig};
use crate::omq::OntologyMediatedQuery;
use crate::Result;
use omq_data::{Database, NullId, RelId, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::hash_map::Entry;
use std::sync::{Mutex, RwLock};

/// Configuration of the query-directed chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QchaseConfig {
    /// Depth of the grafted null trees.  `None` uses `max(|var(q)|, 2)`.
    pub tree_depth: Option<usize>,
    /// Depth of the bag chase used during saturation.  `None` uses
    /// `max(tree_depth, 4)`.
    pub saturation_depth: Option<usize>,
    /// Upper bound on the number of saturation rounds (safety valve).
    pub max_saturation_rounds: usize,
    /// Memoise bag chases by bag type (the linear-time trick).  Disable only
    /// for ablation experiments.
    pub memoize: bool,
    /// Fact budget for each individual bag chase.
    pub max_bag_facts: usize,
}

impl Default for QchaseConfig {
    fn default() -> Self {
        QchaseConfig {
            tree_depth: None,
            saturation_depth: None,
            max_saturation_rounds: 16,
            memoize: true,
            max_bag_facts: 100_000,
        }
    }
}

/// The result of the query-directed chase.
#[derive(Debug, Clone)]
pub struct QueryDirectedChase {
    /// The constructed instance `ch^q_O(D)`; it contains the original database
    /// facts, the derived ground facts and the grafted null trees.
    pub database: Database,
    /// The active domain of the *original* database.
    pub original_adom: FxHashSet<Value>,
    /// Number of grafted trees.
    pub grafts: usize,
    /// Number of saturation rounds executed.
    pub saturation_rounds: usize,
    /// Number of bag-chase memoisation hits.
    pub memo_hits: usize,
    /// `true` if saturation reached a fixpoint within the configured bound.
    pub saturation_converged: bool,
    /// The tree depth that was used for grafting.
    pub tree_depth: usize,
}

/// A canonical, data-independent signature of a bag: facts with constants
/// replaced by their index in the (sorted) bag domain.
type BagSignature = Vec<(RelId, Vec<usize>)>;

/// A grafted tree template: facts whose arguments are either an index into the
/// bag domain or a local null identifier.
#[derive(Debug, Clone)]
enum TemplateArg {
    BagConst(usize),
    LocalNull(usize),
}

type GraftTemplate = Vec<(RelId, Vec<TemplateArg>)>;

/// The memoised, data-independent state of a [`QchasePlan`]: the bag-type →
/// derived-facts tables discovered so far, valid for every database whose
/// extended schema matches `fingerprint`.
#[derive(Debug, Default)]
struct PlanMemo {
    /// Extended-schema layout (`(name, arity)` in [`RelId`] order) the cached
    /// tables were computed under.  Bag signatures embed `RelId`s, so the
    /// tables are only sound for databases producing the same layout.
    fingerprint: Option<Vec<(String, usize)>>,
    ground: FxHashMap<BagSignature, Vec<(RelId, Vec<usize>)>>,
    graft: FxHashMap<BagSignature, GraftTemplate>,
}

/// A compiled, reusable query-directed chase for one OMQ.
///
/// The chase's linear-time trick is memoising bag chases by the isomorphism
/// type of the bag — a table that depends only on the ontology, not on the
/// data.  `QchasePlan` makes that table *persistent across databases*: the
/// first [`QchasePlan::chase`] call pays for every bag type it encounters,
/// subsequent calls over further databases reuse the rule-trigger tables and
/// only do the linear copy work.  This is the chase half of the
/// compile-once/execute-many architecture (`omq-core`'s `QueryPlan` owns one
/// of these).
#[derive(Debug)]
pub struct QchasePlan {
    omq: OntologyMediatedQuery,
    config: QchaseConfig,
    /// Relations to add to every input database, sorted by name: ontology
    /// relations first, then query relations (precomputed once).
    relations: Vec<(String, usize)>,
    tree_depth: usize,
    saturation_depth: usize,
    /// Read-mostly: the warm path (every bag type already memoised) only ever
    /// takes the read lock, so concurrent executions of a shared plan do not
    /// serialize; the write lock is taken only to set the fingerprint on the
    /// first run and to publish newly discovered bag types.
    memo: RwLock<PlanMemo>,
    /// Recycled staging arenas: each [`QchasePlan::chase_many`] call checks
    /// out a pair (round staging + bag chases), so the per-round and per-bag
    /// staging buffers are allocated once per concurrent execution, not once
    /// per chase.
    arenas: Mutex<Vec<FactArena>>,
}

impl QchasePlan {
    /// Compiles the data-independent part of the query-directed chase.
    pub fn new(omq: &OntologyMediatedQuery, config: &QchaseConfig) -> Result<Self> {
        let query_vars = omq.query().body_vars().len();
        let tree_depth = config.tree_depth.unwrap_or_else(|| query_vars.max(2));
        let saturation_depth = config.saturation_depth.unwrap_or_else(|| tree_depth.max(4));
        let mut relations: Vec<(String, usize)> = omq.ontology().relations()?.into_iter().collect();
        relations.sort();
        // Also make sure the query's relations exist (they might be absent
        // from both the data and the ontology).
        let mut query_relations: Vec<(String, usize)> =
            omq.query().relations()?.into_iter().collect();
        query_relations.sort();
        relations.extend(query_relations);
        Ok(QchasePlan {
            omq: omq.clone(),
            config: *config,
            relations,
            tree_depth,
            saturation_depth,
            memo: RwLock::new(PlanMemo::default()),
            arenas: Mutex::new(Vec::new()),
        })
    }

    /// Checks a cleared arena out of the pool (or makes a fresh one).
    fn acquire_arena(&self) -> FactArena {
        self.arenas
            .lock()
            .expect("qchase arena pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool for the next `chase_many` call.
    fn release_arena(&self, mut arena: FactArena) {
        arena.clear();
        self.arenas
            .lock()
            .expect("qchase arena pool poisoned")
            .push(arena);
    }

    /// The OMQ this plan chases for.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        &self.omq
    }

    /// The chase configuration the plan was compiled with.
    pub fn config(&self) -> &QchaseConfig {
        &self.config
    }

    /// Number of memoised bag types accumulated so far (both tables).
    pub fn memoized_bag_types(&self) -> usize {
        let memo = self.memo.read().expect("qchase memo poisoned");
        memo.ground.len() + memo.graft.len()
    }

    /// Computes the query-directed chase of `db`, reusing the rule-trigger
    /// tables accumulated by earlier calls whenever the extended schema
    /// matches (otherwise the run falls back to a private table).
    pub fn chase(&self, db: &Database) -> Result<QueryDirectedChase> {
        Ok(self
            .chase_many(std::slice::from_ref(db))?
            .pop()
            .expect("one part in, one chase out"))
    }

    /// Computes the query-directed chase of every database in `parts` as one
    /// batch: a single memo snapshot (and a single publish) serves them all,
    /// and bag types discovered while chasing one part are immediately
    /// reusable by the next (intra-batch memoisation).
    ///
    /// All parts must share one schema layout — the memo fingerprint is
    /// derived from the first part, and bag signatures embed `RelId`s.  The
    /// intended callers satisfy this by construction: Gaifman-component
    /// shards of one database (parallel execution, delta-chase maintenance)
    /// all clone the parent schema.  An empty batch returns no chases.
    pub fn chase_many(&self, parts: &[Database]) -> Result<Vec<QueryDirectedChase>> {
        if parts.is_empty() {
            return Ok(Vec::new());
        }
        let mut prepared = Vec::with_capacity(parts.len());
        for db in parts {
            let mut result = db.clone();
            for (name, arity) in &self.relations {
                result.add_relation(name, *arity)?;
            }
            prepared.push(result);
        }
        let fingerprint: Vec<(String, usize)> = prepared[0]
            .schema()
            .iter()
            .map(|(_, rel)| (rel.name.clone(), rel.arity))
            .collect();

        // Snapshot the shared tables instead of holding a lock across the
        // (data-linear) chase: concurrent executions of a shared plan run in
        // parallel, each on its own copy, and publish new bag types at the
        // end.  The tables are bounded by the ontology's bag types, so the
        // copies are small compared to the chase itself.
        //
        // Locking protocol (read-mostly): the fingerprint check and the
        // snapshot only take the *read* lock, so warm executions — every bag
        // type already memoised — never contend with each other.  The write
        // lock is taken in exactly two cold situations: to set the
        // fingerprint on the very first run (double-checked under the write
        // lock), and to publish bag types this run discovered beyond its
        // snapshot.
        let matches = {
            let memo = self.memo.read().expect("qchase memo poisoned");
            memo.fingerprint.as_ref().map(|f| *f == fingerprint)
        };
        let matches = match matches {
            Some(m) => m,
            None => {
                let mut memo = self.memo.write().expect("qchase memo poisoned");
                match &memo.fingerprint {
                    Some(existing) => *existing == fingerprint,
                    None => {
                        memo.fingerprint = Some(fingerprint);
                        true
                    }
                }
            }
        };
        let (shareable, mut local) = if matches && self.config.memoize {
            let memo = self.memo.read().expect("qchase memo poisoned");
            let snapshot = PlanMemo {
                fingerprint: None,
                ground: memo.ground.clone(),
                graft: memo.graft.clone(),
            };
            (true, snapshot)
        } else {
            (false, PlanMemo::default())
        };
        let snapshot_ground = local.ground.len();
        let snapshot_graft = local.graft.len();
        // One pair of pooled staging arenas serves the whole batch: `stage`
        // buffers each saturation round / graft batch, `bag_arena` is threaded
        // through every bag chase.
        let mut stage = self.acquire_arena();
        let mut bag_arena = self.acquire_arena();
        let mut out = Vec::with_capacity(parts.len());
        for (db, result) in parts.iter().zip(prepared) {
            let chased = self.chase_prepared(
                db,
                result,
                &mut local.ground,
                &mut local.graft,
                &mut stage,
                &mut bag_arena,
            );
            match chased {
                Ok(chased) => out.push(chased),
                Err(e) => {
                    self.release_arena(stage);
                    self.release_arena(bag_arena);
                    return Err(e);
                }
            }
        }
        self.release_arena(stage);
        self.release_arena(bag_arena);
        // Publish only on a miss: a fully warm batch leaves the tables at
        // their snapshot size and never upgrades to the write lock.
        if shareable && (local.ground.len() > snapshot_ground || local.graft.len() > snapshot_graft)
        {
            let mut memo = self.memo.write().expect("qchase memo poisoned");
            for (signature, derived) in local.ground {
                memo.ground.entry(signature).or_insert(derived);
            }
            for (signature, template) in local.graft {
                memo.graft.entry(signature).or_insert(template);
            }
        }
        Ok(out)
    }

    /// The chase proper, over a `result` database that already contains the
    /// input facts and the full extended schema.
    fn chase_prepared(
        &self,
        db: &Database,
        mut result: Database,
        ground_memo: &mut FxHashMap<BagSignature, Vec<(RelId, Vec<usize>)>>,
        graft_memo: &mut FxHashMap<BagSignature, GraftTemplate>,
        stage: &mut FactArena,
        bag_arena: &mut FactArena,
    ) -> Result<QueryDirectedChase> {
        let ontology = self.omq.ontology();
        let config = &self.config;
        let original_adom: FxHashSet<Value> = db.adom().iter().copied().collect();

        let mut memo_hits = 0usize;

        // -------- Phase 1: guarded saturation of the database part. --------
        let mut saturation_rounds = 0usize;
        let mut saturation_converged = false;
        let saturation_config = ChaseConfig {
            max_depth: self.saturation_depth,
            max_facts: config.max_bag_facts,
        };
        let mut scratch: Vec<Value> = Vec::new();
        while saturation_rounds < config.max_saturation_rounds {
            saturation_rounds += 1;
            stage.clear();
            let mut seen_bags: FxHashSet<Vec<Value>> = FxHashSet::default();
            let fact_count = result.len();
            for idx in 0..fact_count {
                let guard_values = sorted_values(&result.fact(idx).args);
                if !seen_bags.insert(guard_values.clone()) {
                    continue;
                }
                let (signature, ordering) = bag_signature(&result, &guard_values);
                let derived_cold;
                let derived: &[(RelId, Vec<usize>)] = if config.memoize {
                    match ground_memo.entry(signature) {
                        Entry::Occupied(cached) => {
                            memo_hits += 1;
                            cached.into_mut()
                        }
                        Entry::Vacant(slot) => slot.insert(derive_ground(
                            &result,
                            &ordering,
                            ontology,
                            &saturation_config,
                            bag_arena,
                        )?),
                    }
                } else {
                    derived_cold =
                        derive_ground(&result, &ordering, ontology, &saturation_config, bag_arena)?;
                    &derived_cold
                };
                for (rel, positions) in derived {
                    scratch.clear();
                    scratch.extend(positions.iter().map(|&i| ordering[i]));
                    if !result.contains_fact_ref(*rel, &scratch) {
                        stage.push_fact(*rel, &scratch);
                    }
                }
            }
            if stage.is_empty() {
                saturation_converged = true;
                break;
            }
            stage.flush_into(&mut result)?;
            // Adding facts can change bag types, so the memo must be kept
            // keyed by full bag signatures (it is) — no invalidation needed.
        }

        // -------- Phase 2: graft null trees below every guarded set. --------
        let graft_config = ChaseConfig {
            max_depth: self.tree_depth,
            max_facts: config.max_bag_facts,
        };
        let mut grafted_sets: FxHashSet<Vec<Value>> = FxHashSet::default();
        let mut grafts = 0usize;
        let fact_count = result.len();
        stage.clear();
        for idx in 0..fact_count {
            let guard_values = sorted_values(&result.fact(idx).args);
            if !grafted_sets.insert(guard_values.clone()) {
                continue;
            }
            let (signature, ordering) = bag_signature(&result, &guard_values);
            let template_cold;
            let template: &GraftTemplate = if config.memoize {
                match graft_memo.entry(signature) {
                    Entry::Occupied(cached) => {
                        memo_hits += 1;
                        cached.into_mut()
                    }
                    Entry::Vacant(slot) => slot.insert(derive_template(
                        &result,
                        &ordering,
                        ontology,
                        &graft_config,
                        bag_arena,
                    )?),
                }
            } else {
                template_cold =
                    derive_template(&result, &ordering, ontology, &graft_config, bag_arena)?;
                &template_cold
            };
            if template.is_empty() {
                continue;
            }
            grafts += 1;
            // Instantiate the template with fresh nulls.
            let mut null_map: FxHashMap<usize, NullId> = FxHashMap::default();
            for (rel, args) in template {
                scratch.clear();
                scratch.extend(args.iter().map(|a| match a {
                    TemplateArg::BagConst(i) => ordering[*i],
                    TemplateArg::LocalNull(n) => {
                        let id = *null_map.entry(*n).or_insert_with(|| result.fresh_null());
                        Value::Null(id)
                    }
                }));
                stage.push_fact(*rel, &scratch);
            }
        }
        stage.flush_into(&mut result)?;

        Ok(QueryDirectedChase {
            database: result,
            original_adom,
            grafts,
            saturation_rounds,
            memo_hits,
            saturation_converged,
            tree_depth: self.tree_depth,
        })
    }
}

/// Computes the query-directed chase of `db` for `omq`.
///
/// One-shot convenience wrapper: compiles a throwaway [`QchasePlan`] and runs
/// it.  Callers evaluating one OMQ over many databases should hold on to a
/// [`QchasePlan`] (or an `omq-core` `QueryPlan`) instead, which amortises the
/// bag-type tables across runs.
pub fn query_directed_chase(
    db: &Database,
    omq: &OntologyMediatedQuery,
    config: &QchaseConfig,
) -> Result<QueryDirectedChase> {
    QchasePlan::new(omq, config)?.chase(db)
}

fn sorted_values(args: &[Value]) -> Vec<Value> {
    let mut values: Vec<Value> = args.to_vec();
    values.sort();
    values.dedup();
    values
}

/// Computes the canonical signature of the bag over `values` together with the
/// ordering of the bag domain used by the signature.
fn bag_signature(db: &Database, values: &[Value]) -> (BagSignature, Vec<Value>) {
    let ordering: Vec<Value> = values.to_vec();
    let index: FxHashMap<Value, usize> =
        ordering.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let keep: FxHashSet<Value> = ordering.iter().copied().collect();
    let mut signature: BagSignature = Vec::new();
    // Collect the facts over the bag domain via the value index of the
    // database (linear in the number of such facts).
    let mut fact_indices: FxHashSet<usize> = FxHashSet::default();
    for v in &ordering {
        for &idx in db.facts_mentioning(*v) {
            fact_indices.insert(idx);
        }
    }
    for idx in fact_indices {
        let fact = db.fact(idx);
        if fact.args.iter().all(|a| keep.contains(a)) {
            signature.push((fact.rel, fact.args.iter().map(|a| index[a]).collect()));
        }
    }
    signature.sort();
    (signature, ordering)
}

/// Chases the bag over `ordering` and returns the derived ground facts as
/// positional patterns.
fn derive_ground(
    db: &Database,
    ordering: &[Value],
    ontology: &crate::ontology::Ontology,
    config: &ChaseConfig,
    arena: &mut FactArena,
) -> Result<Vec<(RelId, Vec<usize>)>> {
    let keep: FxHashSet<Value> = ordering.iter().copied().collect();
    let bag = db.restrict_to(&keep);
    let chased = chase_in(&bag, ontology, config, arena)?;
    let index: FxHashMap<Value, usize> =
        ordering.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut out = Vec::new();
    for fact in chased.database.facts() {
        if fact.is_ground() && fact.args.iter().all(|a| index.contains_key(a)) {
            // The relation ids of the bag coincide with those of `db` because
            // `restrict_to` clones the schema and `chase` only appends new
            // relations after the existing ones.
            let positions: Vec<usize> = fact.args.iter().map(|a| index[a]).collect();
            if !bag.contains_fact(fact) {
                out.push((remap_rel(&chased.database, db, fact.rel), positions));
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Chases the bag over `ordering` and returns the facts containing nulls as a
/// graft template.
fn derive_template(
    db: &Database,
    ordering: &[Value],
    ontology: &crate::ontology::Ontology,
    config: &ChaseConfig,
    arena: &mut FactArena,
) -> Result<GraftTemplate> {
    let keep: FxHashSet<Value> = ordering.iter().copied().collect();
    let bag = db.restrict_to(&keep);
    let chased = chase_in(&bag, ontology, config, arena)?;
    let index: FxHashMap<Value, usize> =
        ordering.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut null_ids: FxHashMap<NullId, usize> = FxHashMap::default();
    let mut out: GraftTemplate = Vec::new();
    for fact in chased.database.facts() {
        if !fact.has_null() {
            continue;
        }
        let args: Vec<TemplateArg> = fact
            .args
            .iter()
            .map(|a| match a {
                Value::Const(_) => TemplateArg::BagConst(index[a]),
                Value::Null(n) => {
                    let next = null_ids.len();
                    TemplateArg::LocalNull(*null_ids.entry(*n).or_insert(next))
                }
            })
            .collect();
        out.push((remap_rel(&chased.database, db, fact.rel), args));
    }
    Ok(out)
}

/// Maps a relation id of the chased bag back to the corresponding id in `db`
/// (they coincide in practice because both schemas extend the same base, but
/// remapping by name keeps this robust).
fn remap_rel(from: &Database, to: &Database, rel: RelId) -> RelId {
    let name = from.schema().name(rel);
    to.schema()
        .relation_id(name)
        .expect("relation must exist in the target schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Ontology;
    use omq_cq::ConjunctiveQuery;
    use omq_data::{Fact, Schema};

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn office_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    #[test]
    fn running_example_structure() {
        let omq = office_omq();
        let db = office_db();
        let q = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        assert!(q.saturation_converged);
        assert!(q.grafts > 0);
        let d0 = &q.database;
        // Original facts are preserved.
        for fact in db.facts() {
            let rel = d0.schema().relation_id(db.schema().name(fact.rel)).unwrap();
            let args: Vec<Value> = fact
                .args
                .iter()
                .map(|&v| match v {
                    Value::Const(c) => Value::Const(d0.const_id(db.const_name(c)).unwrap()),
                    n => n,
                })
                .collect();
            assert!(d0.contains_fact(&Fact::new(rel, args)));
        }
        // Saturation derives Office(room1) and Office(room4).
        let office = d0.schema().relation_id("Office").unwrap();
        assert!(d0.facts_of(office).len() >= 2);
        // Grafting gives mike an anonymous office: a HasOffice fact with a
        // null in the second position.
        let has_office = d0.schema().relation_id("HasOffice").unwrap();
        let mike = Value::Const(d0.const_id("mike").unwrap());
        assert!(d0
            .facts_with(has_office, 0, mike)
            .iter()
            .any(|&i| d0.fact(i).args[1].is_null()));
        // room4's anonymous building: an InBuilding fact from room4 to a null.
        let in_building = d0.schema().relation_id("InBuilding").unwrap();
        let room4 = Value::Const(d0.const_id("room4").unwrap());
        assert!(d0
            .facts_with(in_building, 0, room4)
            .iter()
            .any(|&i| d0.fact(i).args[1].is_null()));
    }

    #[test]
    fn memoization_reduces_work() {
        let omq = office_omq();
        // A database with many researchers: all bags of type Researcher(c) are
        // isomorphic, so the memo should be hit often.
        let mut db = Database::new(omq.data_schema().clone());
        for i in 0..50 {
            db.add_named_fact("Researcher", &[format!("r{i}")]).unwrap();
        }
        let with_memo = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        assert!(with_memo.memo_hits > 40);
        let without_memo = query_directed_chase(
            &db,
            &omq,
            &QchaseConfig {
                memoize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(without_memo.memo_hits, 0);
        assert_eq!(with_memo.database.len(), without_memo.database.len());
    }

    #[test]
    fn empty_ontology_keeps_database() {
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x) :- Researcher(x)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let db = office_db();
        let q = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        assert_eq!(q.database.len(), db.len());
        assert_eq!(q.grafts, 0);
    }

    #[test]
    fn ground_saturation_through_intermediate_nulls() {
        // B(x) is only derivable via an intermediate existential:
        //   A(x) -> ∃y. R(x,y) ∧ C(y)      C(y) ∧ R(x,y) -> B(x)   (guard R)
        let ontology = Ontology::parse(
            "A(x) -> exists y. R(x, y), C(y)\n\
             R(x, y), C(y) -> B(x)",
        )
        .unwrap();
        let query = ConjunctiveQuery::parse("q(x) :- B(x)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut db = Database::new(omq.data_schema().clone());
        db.add_named_fact("A", &["a"]).unwrap();
        let q = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        let b = q.database.schema().relation_id("B").unwrap();
        assert_eq!(q.database.facts_of(b).len(), 1);
        assert!(q.database.fact(q.database.facts_of(b)[0]).args[0].is_const());
    }

    #[test]
    fn derived_constants_stay_within_guarded_sets() {
        let omq = office_omq();
        let db = office_db();
        let q = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        // Every ground fact of D0 only uses constants that co-occur in some
        // original fact (guardedness).
        for fact in q.database.facts() {
            if fact.is_ground() && fact.args.len() > 1 {
                let names: Vec<String> = fact
                    .args
                    .iter()
                    .map(|&v| q.database.display_value(v))
                    .collect();
                let in_original = db.facts().iter().any(|f| {
                    let original: FxHashSet<String> =
                        f.args.iter().map(|&v| db.display_value(v)).collect();
                    names.iter().all(|n| original.contains(n))
                });
                assert!(in_original, "fact {names:?} spans guarded sets");
            }
        }
    }

    #[test]
    fn plan_reuses_memo_across_databases() {
        let omq = office_omq();
        let plan = QchasePlan::new(&omq, &QchaseConfig::default()).unwrap();
        let mut first_db = Database::new(omq.data_schema().clone());
        for i in 0..10 {
            first_db
                .add_named_fact("Researcher", &[format!("r{i}")])
                .unwrap();
        }
        let first = plan.chase(&first_db).unwrap();
        let types_after_first = plan.memoized_bag_types();
        assert!(types_after_first > 0);
        // A second database with the same shape: every bag type is already
        // memoised, so the run is all hits and discovers no new types.
        let mut second_db = Database::new(omq.data_schema().clone());
        for i in 0..25 {
            second_db
                .add_named_fact("Researcher", &[format!("s{i}")])
                .unwrap();
        }
        let second = plan.chase(&second_db).unwrap();
        assert_eq!(plan.memoized_bag_types(), types_after_first);
        assert!(second.memo_hits >= 25);
        // Results agree with the one-shot path.
        let fresh = query_directed_chase(&second_db, &omq, &QchaseConfig::default()).unwrap();
        assert_eq!(second.database.len(), fresh.database.len());
        assert_eq!(second.grafts, fresh.grafts);
        let _ = first;
    }

    #[test]
    fn chase_many_agrees_with_per_part_chases() {
        let omq = office_omq();
        let plan = QchasePlan::new(&omq, &QchaseConfig::default()).unwrap();
        let db = office_db();
        let parts = db.shard_by_component();
        assert!(parts.len() > 1);
        let batch = plan.chase_many(&parts).unwrap();
        assert_eq!(batch.len(), parts.len());
        for (part, chased) in parts.iter().zip(&batch) {
            let solo = query_directed_chase(part, &omq, &QchaseConfig::default()).unwrap();
            assert_eq!(chased.database.len(), solo.database.len());
            assert_eq!(chased.grafts, solo.grafts);
        }
        // Intra-batch memoisation: a later part reuses bag types discovered
        // while chasing an earlier one, within a single snapshot/publish.
        assert!(batch.iter().skip(1).any(|c| c.memo_hits > 0));
        assert!(plan.chase_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn plan_handles_schema_layout_changes() {
        let omq = office_omq();
        let plan = QchasePlan::new(&omq, &QchaseConfig::default()).unwrap();
        let baseline = plan.chase(&office_db()).unwrap();
        // A database whose schema declares the relations in a different order
        // (different RelId layout) must not reuse the shared tables unsoundly.
        let mut s = Schema::new();
        s.add_relation("InBuilding", 2).unwrap();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        let reordered = Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap();
        let via_plan = plan.chase(&reordered).unwrap();
        let fresh = query_directed_chase(&reordered, &omq, &QchaseConfig::default()).unwrap();
        assert_eq!(via_plan.database.len(), fresh.database.len());
        assert_eq!(via_plan.database.len(), baseline.database.len());
    }

    #[test]
    fn concurrent_warm_executions_share_the_memo_without_blocking() {
        // Regression test for the warm-path contention bug: the memo used to
        // sit behind a `Mutex`, so read-only memo hits of concurrent
        // executions serialized.  With the `RwLock` write-only-on-miss
        // protocol, warm runs take only the read lock; this test drives many
        // concurrent warm executions through one shared plan and checks that
        // they all complete with the correct result, all hit the memo, and
        // that none of them grows the tables (i.e. none took the publish
        // path, which is the only write-lock site after warm-up).
        let omq = office_omq();
        let plan = QchasePlan::new(&omq, &QchaseConfig::default()).unwrap();
        // Warm the memo with every bag type of the workload shape.
        let warmup = plan.chase(&office_db()).unwrap();
        let types = plan.memoized_bag_types();
        assert!(types > 0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    let mut results = Vec::new();
                    for _ in 0..16 {
                        results.push(plan.chase(&office_db()).unwrap());
                    }
                    results
                }));
            }
            for handle in handles {
                for chased in handle.join().unwrap() {
                    assert_eq!(chased.database.len(), warmup.database.len());
                    assert_eq!(chased.grafts, warmup.grafts);
                    // Every bag lookup was a memo hit.
                    assert!(chased.memo_hits > 0);
                }
            }
        });
        assert_eq!(plan.memoized_bag_types(), types);
    }

    #[test]
    fn concurrent_cold_executions_agree_with_sequential() {
        // Cold-start race: several threads populate the memo of a fresh plan
        // at once.  Whichever publish wins, every result must equal the
        // sequential chase.
        let omq = office_omq();
        let plan = QchasePlan::new(&omq, &QchaseConfig::default()).unwrap();
        let reference = query_directed_chase(&office_db(), &omq, &QchaseConfig::default()).unwrap();
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    plan.chase(&office_db()).unwrap()
                }));
            }
            for handle in handles {
                let chased = handle.join().unwrap();
                assert_eq!(chased.database.len(), reference.database.len());
                assert_eq!(chased.grafts, reference.grafts);
            }
        });
        assert!(plan.memoized_bag_types() > 0);
    }

    #[test]
    fn tree_depth_is_respected() {
        // Recursive ontology: each null spawns a child null.
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y), A(y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut db = Database::new(omq.data_schema().clone());
        db.add_named_fact("A", &["a"]).unwrap();
        let shallow = query_directed_chase(
            &db,
            &omq,
            &QchaseConfig {
                tree_depth: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let deep = query_directed_chase(
            &db,
            &omq,
            &QchaseConfig {
                tree_depth: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(deep.database.len() > shallow.database.len());
        assert_eq!(shallow.tree_depth, 1);
        assert_eq!(deep.tree_depth, 3);
    }
}
