//! Ontologies: finite sets of TGDs.

use crate::error::ChaseError;
use crate::tgd::Tgd;
use crate::Result;
use omq_data::Schema;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite set of TGDs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ontology {
    tgds: Vec<Tgd>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ontology from a list of TGDs.
    pub fn from_tgds(tgds: Vec<Tgd>) -> Self {
        Ontology { tgds }
    }

    /// Parses an ontology from text: one TGD per line; blank lines and lines
    /// starting with `#` or `%` are ignored.
    pub fn parse(text: &str) -> Result<Self> {
        let mut tgds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            tgds.push(Tgd::parse(line)?);
        }
        Ok(Ontology { tgds })
    }

    /// Adds a TGD.
    pub fn push(&mut self, tgd: Tgd) {
        self.tgds.push(tgd);
    }

    /// The TGDs.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Number of TGDs.
    pub fn len(&self) -> usize {
        self.tgds.len()
    }

    /// Returns `true` iff the ontology has no TGDs.
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty()
    }

    /// Returns `true` iff every TGD is guarded (the class `G` of the paper).
    pub fn is_guarded(&self) -> bool {
        self.tgds.iter().all(Tgd::is_guarded)
    }

    /// Returns `true` iff every TGD is an ELI TGD.
    pub fn is_eli(&self) -> bool {
        self.tgds.iter().all(Tgd::is_eli)
    }

    /// Returns the first TGD that is not guarded, if any.
    pub fn first_unguarded(&self) -> Option<&Tgd> {
        self.tgds.iter().find(|t| !t.is_guarded())
    }

    /// Relation symbols used by the ontology, with arities.
    pub fn relations(&self) -> Result<FxHashMap<String, usize>> {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for tgd in &self.tgds {
            for (name, arity) in tgd.relations()? {
                match map.get(&name) {
                    Some(&a) if a != arity => {
                        return Err(ChaseError::ArityConflict {
                            relation: name,
                            first: a,
                            second: arity,
                        })
                    }
                    Some(_) => {}
                    None => {
                        map.insert(name, arity);
                    }
                }
            }
        }
        Ok(map)
    }

    /// Builds a schema covering all relation symbols of the ontology.
    pub fn schema(&self) -> Result<Schema> {
        let mut schema = Schema::new();
        let mut relations: Vec<(String, usize)> = self.relations()?.into_iter().collect();
        relations.sort();
        for (name, arity) in relations {
            schema.add_relation(&name, arity)?;
        }
        Ok(schema)
    }

    /// The maximum arity of any relation symbol (0 for an empty ontology).
    pub fn max_arity(&self) -> usize {
        self.relations()
            .map(|r| r.values().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// The maximum number of variables in any single TGD.
    pub fn max_tgd_vars(&self) -> usize {
        self.tgds
            .iter()
            .map(|t| t.var_names().len())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Ontology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for tgd in &self.tgds {
            writeln!(f, "{tgd}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OFFICE: &str = r#"
        # The running example (Example 1.1 of the paper).
        Researcher(x) -> exists y. HasOffice(x, y)
        HasOffice(x, y) -> Office(y)
        Office(x) -> exists y. InBuilding(x, y)
    "#;

    #[test]
    fn parse_office_ontology() {
        let o = Ontology::parse(OFFICE).unwrap();
        assert_eq!(o.len(), 3);
        assert!(o.is_guarded());
        assert!(o.is_eli());
        assert!(o.first_unguarded().is_none());
        let rels = o.relations().unwrap();
        assert_eq!(rels.len(), 4);
        assert_eq!(rels["HasOffice"], 2);
        assert_eq!(o.max_arity(), 2);
        assert!(o.max_tgd_vars() >= 2);
    }

    #[test]
    fn schema_contains_all_symbols() {
        let o = Ontology::parse(OFFICE).unwrap();
        let schema = o.schema().unwrap();
        for name in ["Researcher", "HasOffice", "Office", "InBuilding"] {
            assert!(schema.relation_id(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn guardedness_and_eli_classification() {
        let mixed =
            Ontology::parse("R(x, y), S(y, z) -> T(x, z)\nA(x) -> exists y. R(x, y)").unwrap();
        assert!(!mixed.is_guarded());
        assert!(!mixed.is_eli());
        assert!(mixed.first_unguarded().is_some());

        let guarded_not_eli = Ontology::parse("T(x, y, z) -> A(x)").unwrap();
        assert!(guarded_not_eli.is_guarded());
        assert!(!guarded_not_eli.is_eli());
    }

    #[test]
    fn arity_conflicts_across_tgds() {
        let err = Ontology::parse("A(x) -> R(x)\nB(x) -> exists y. R(x, y)")
            .unwrap()
            .relations()
            .unwrap_err();
        assert!(matches!(err, ChaseError::ArityConflict { .. }));
    }

    #[test]
    fn empty_ontology() {
        let o = Ontology::parse("\n# nothing\n").unwrap();
        assert!(o.is_empty());
        assert!(o.is_guarded());
        assert!(o.is_eli());
        assert_eq!(o.max_arity(), 0);
    }

    #[test]
    fn display_round_trip() {
        let o = Ontology::parse(OFFICE).unwrap();
        let rendered = format!("{o}");
        let reparsed = Ontology::parse(&rendered).unwrap();
        assert_eq!(reparsed.len(), o.len());
        assert!(reparsed.is_eli());
    }
}
