//! Linear-time minimal models of propositional Horn formulas
//! (Dowling–Gallier).
//!
//! Proposition 3.3 of the paper computes the query-directed chase by deriving
//! a satisfiable propositional Horn formula from the database and the OMQ,
//! computing its minimal model in linear time, and reading the chase off that
//! model.  This module provides the required substrate: unit propagation with
//! per-clause counters, which runs in time linear in the formula size.
//!
//! The solver supports definite clauses (`body → head`) and goal clauses
//! (`body → ⊥`), so it can also decide satisfiability of general Horn
//! formulas.

/// A propositional Horn formula over variables `0..var_count`.
#[derive(Debug, Clone, Default)]
pub struct HornFormula {
    var_count: usize,
    /// Unit facts.
    facts: Vec<usize>,
    /// Definite clauses: (body, head).
    rules: Vec<(Vec<usize>, usize)>,
    /// Goal clauses: bodies implying ⊥.
    goals: Vec<Vec<usize>>,
}

impl HornFormula {
    /// Creates a formula over `var_count` variables with no clauses.
    pub fn new(var_count: usize) -> Self {
        HornFormula {
            var_count,
            ..Default::default()
        }
    }

    /// Number of propositional variables.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Ensures the formula has at least `var_count` variables.
    pub fn grow_to(&mut self, var_count: usize) {
        self.var_count = self.var_count.max(var_count);
    }

    /// Adds a unit fact `→ v`.
    pub fn add_fact(&mut self, v: usize) {
        self.grow_to(v + 1);
        self.facts.push(v);
    }

    /// Adds a definite clause `body → head`.  An empty body is a fact.
    pub fn add_rule(&mut self, body: impl IntoIterator<Item = usize>, head: usize) {
        let body: Vec<usize> = body.into_iter().collect();
        let max = body.iter().copied().max().unwrap_or(0).max(head);
        self.grow_to(max + 1);
        if body.is_empty() {
            self.facts.push(head);
        } else {
            self.rules.push((body, head));
        }
    }

    /// Adds a goal clause `body → ⊥`.
    pub fn add_goal(&mut self, body: impl IntoIterator<Item = usize>) {
        let body: Vec<usize> = body.into_iter().collect();
        if let Some(&max) = body.iter().max() {
            self.grow_to(max + 1);
        }
        self.goals.push(body);
    }

    /// Total size (number of literal occurrences), the measure the linear-time
    /// bound refers to.
    pub fn size(&self) -> usize {
        self.facts.len()
            + self.rules.iter().map(|(b, _)| b.len() + 1).sum::<usize>()
            + self.goals.iter().map(Vec::len).sum::<usize>()
    }

    /// Computes the minimal model of the definite part (facts and rules) by
    /// counter-based unit propagation, in time linear in [`HornFormula::size`].
    pub fn minimal_model(&self) -> Vec<bool> {
        let mut truth = vec![false; self.var_count];
        // watch[v] = indices of rules whose body contains v.
        let mut watch: Vec<Vec<usize>> = vec![Vec::new(); self.var_count];
        let mut missing: Vec<usize> = Vec::with_capacity(self.rules.len());
        for (idx, (body, _)) in self.rules.iter().enumerate() {
            // Count distinct body variables; duplicates decrement only once
            // because we deduplicate below.
            let mut distinct: Vec<usize> = body.clone();
            distinct.sort_unstable();
            distinct.dedup();
            missing.push(distinct.len());
            for &v in &distinct {
                watch[v].push(idx);
            }
        }
        let mut queue: Vec<usize> = Vec::new();
        for &f in &self.facts {
            if !truth[f] {
                truth[f] = true;
                queue.push(f);
            }
        }
        while let Some(v) = queue.pop() {
            for &rule_idx in &watch[v] {
                missing[rule_idx] -= 1;
                if missing[rule_idx] == 0 {
                    let head = self.rules[rule_idx].1;
                    if !truth[head] {
                        truth[head] = true;
                        queue.push(head);
                    }
                }
            }
        }
        truth
    }

    /// Decides satisfiability: the formula is satisfiable iff no goal clause
    /// has its whole body true in the minimal model.
    pub fn is_satisfiable(&self) -> bool {
        let model = self.minimal_model();
        !self.goals.iter().any(|body| body.iter().all(|&v| model[v]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_propagation() {
        let mut f = HornFormula::new(4);
        f.add_fact(0);
        f.add_rule([0], 1);
        f.add_rule([1, 0], 2);
        f.add_rule([3], 0);
        let model = f.minimal_model();
        assert_eq!(model, vec![true, true, true, false]);
    }

    #[test]
    fn minimality() {
        let mut f = HornFormula::new(3);
        f.add_rule([0], 1);
        f.add_rule([1], 2);
        // No facts: the minimal model is everything-false.
        assert_eq!(f.minimal_model(), vec![false, false, false]);
    }

    #[test]
    fn duplicate_body_variables() {
        let mut f = HornFormula::new(2);
        f.add_fact(0);
        f.add_rule([0, 0, 0], 1);
        assert_eq!(f.minimal_model(), vec![true, true]);
    }

    #[test]
    fn empty_body_rule_is_a_fact() {
        let mut f = HornFormula::new(1);
        f.add_rule(Vec::<usize>::new(), 0);
        assert_eq!(f.minimal_model(), vec![true]);
    }

    #[test]
    fn satisfiability_with_goals() {
        let mut f = HornFormula::new(3);
        f.add_fact(0);
        f.add_rule([0], 1);
        f.add_goal([1, 2]);
        assert!(f.is_satisfiable());
        f.add_rule([1], 2);
        assert!(!f.is_satisfiable());
    }

    #[test]
    fn grow_to_extends_variable_space() {
        let mut f = HornFormula::new(0);
        f.add_rule([5], 7);
        f.add_fact(5);
        let model = f.minimal_model();
        assert_eq!(model.len(), 8);
        assert!(model[7]);
    }

    #[test]
    fn chain_of_implications_scales() {
        // A long chain exercises the propagation queue.
        let n = 10_000;
        let mut f = HornFormula::new(n);
        f.add_fact(0);
        for i in 0..n - 1 {
            f.add_rule([i], i + 1);
        }
        let model = f.minimal_model();
        assert!(model.iter().all(|&b| b));
        assert_eq!(f.size(), 1 + 2 * (n - 1));
    }
}
