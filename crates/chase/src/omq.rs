//! Ontology-mediated queries `(O, S, q)`.

use crate::error::ChaseError;
use crate::ontology::Ontology;
use crate::Result;
use omq_cq::acyclicity::AcyclicityReport;
use omq_cq::ConjunctiveQuery;
use omq_data::Schema;

/// An ontology-mediated query `Q = (O, S, q)`:
///
/// * `O` is an ontology (a finite set of TGDs),
/// * `S` is the *data schema* — the relation symbols databases may use,
/// * `q` is a conjunctive query.
///
/// Both `O` and `q` may use symbols beyond `S` (the ontology can "introduce"
/// symbols available for querying but not for data).
#[derive(Debug, Clone)]
pub struct OntologyMediatedQuery {
    ontology: Ontology,
    data_schema: Schema,
    query: ConjunctiveQuery,
    /// Schema covering every symbol of `O`, `q` and `S` (the *full* schema of
    /// instances produced by the chase).
    full_schema: Schema,
}

impl OntologyMediatedQuery {
    /// Creates an OMQ whose data schema contains every relation symbol used by
    /// the ontology or the query (the paper's default assumption).
    pub fn new(ontology: Ontology, query: ConjunctiveQuery) -> Result<Self> {
        let full_schema = Self::full_schema_of(&ontology, &query)?;
        Ok(OntologyMediatedQuery {
            ontology,
            data_schema: full_schema.clone(),
            query,
            full_schema,
        })
    }

    /// Creates an OMQ with an explicit data schema `S`.  Symbols of `S` that
    /// are used by neither `O` nor `q` are allowed but useless.
    pub fn with_data_schema(
        ontology: Ontology,
        data_schema: Schema,
        query: ConjunctiveQuery,
    ) -> Result<Self> {
        let mut full_schema = Self::full_schema_of(&ontology, &query)?;
        full_schema.merge(&data_schema)?;
        Ok(OntologyMediatedQuery {
            ontology,
            data_schema,
            query,
            full_schema,
        })
    }

    fn full_schema_of(ontology: &Ontology, query: &ConjunctiveQuery) -> Result<Schema> {
        let mut schema = ontology.schema()?;
        let mut query_relations: Vec<(String, usize)> = query.relations()?.into_iter().collect();
        query_relations.sort();
        for (name, arity) in query_relations {
            schema
                .add_relation(&name, arity)
                .map_err(ChaseError::Data)?;
        }
        Ok(schema)
    }

    /// The ontology `O`.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The data schema `S`.
    pub fn data_schema(&self) -> &Schema {
        &self.data_schema
    }

    /// The schema covering all symbols of `O`, `q` and `S`.
    pub fn full_schema(&self) -> &Schema {
        &self.full_schema
    }

    /// The conjunctive query `q`.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The arity of the OMQ (= arity of `q`).
    pub fn arity(&self) -> usize {
        self.query.arity()
    }

    /// Structural classification of the query (acyclicity notions are lifted
    /// from the CQ to the OMQ, as in the paper).
    pub fn classify(&self) -> AcyclicityReport {
        AcyclicityReport::classify(&self.query)
    }

    /// Returns `true` iff the OMQ belongs to the language `(G, CQ)`.
    pub fn is_guarded(&self) -> bool {
        self.ontology.is_guarded()
    }

    /// Returns `true` iff the OMQ belongs to the language `(ELI, CQ)`.
    pub fn is_eli(&self) -> bool {
        self.ontology.is_eli()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    #[test]
    fn schema_covers_ontology_and_query() {
        let omq = office_omq();
        for name in ["Researcher", "HasOffice", "Office", "InBuilding"] {
            assert!(omq.full_schema().relation_id(name).is_some());
            assert!(omq.data_schema().relation_id(name).is_some());
        }
        assert_eq!(omq.arity(), 3);
        assert!(omq.is_guarded());
        assert!(omq.is_eli());
        let report = omq.classify();
        assert!(report.acyclic && report.free_connex_acyclic);
    }

    #[test]
    fn explicit_data_schema_is_respected() {
        let ontology = Ontology::parse("A(x) -> exists y. R(x, y)").unwrap();
        let query = ConjunctiveQuery::parse("q(x) :- R(x, y)").unwrap();
        let mut data_schema = Schema::new();
        data_schema.add_relation("A", 1).unwrap();
        let omq = OntologyMediatedQuery::with_data_schema(ontology, data_schema, query).unwrap();
        assert!(omq.data_schema().relation_id("R").is_none());
        assert!(omq.full_schema().relation_id("R").is_some());
    }

    #[test]
    fn arity_conflict_between_ontology_and_query() {
        let ontology = Ontology::parse("A(x) -> R(x)").unwrap();
        let query = ConjunctiveQuery::parse("q(x) :- R(x, y)").unwrap();
        assert!(OntologyMediatedQuery::new(ontology, query).is_err());
    }
}
