//! Error type for the ontology / chase crate.

use std::fmt;

/// Errors raised while parsing or applying ontologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// The TGD text could not be parsed.
    Parse(String),
    /// A relation symbol is used with conflicting arities.
    ArityConflict {
        /// Relation symbol.
        relation: String,
        /// First arity seen.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// An operation required a guarded ontology but a TGD is not guarded.
    NotGuarded(String),
    /// The chase exceeded its configured fact budget.
    ChaseBudgetExceeded {
        /// The configured maximum number of facts.
        max_facts: usize,
    },
    /// A query-layer error bubbled up.
    Cq(omq_cq::CqError),
    /// A data-layer error bubbled up.
    Data(omq_data::DataError),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Parse(msg) => write!(f, "TGD parse error: {msg}"),
            ChaseError::ArityConflict {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation `{relation}` used with conflicting arities {first} and {second}"
            ),
            ChaseError::NotGuarded(tgd) => write!(f, "TGD is not guarded: {tgd}"),
            ChaseError::ChaseBudgetExceeded { max_facts } => {
                write!(f, "chase exceeded its budget of {max_facts} facts")
            }
            ChaseError::Cq(e) => write!(f, "query error: {e}"),
            ChaseError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for ChaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaseError::Cq(e) => Some(e),
            ChaseError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<omq_cq::CqError> for ChaseError {
    fn from(e: omq_cq::CqError) -> Self {
        ChaseError::Cq(e)
    }
}

impl From<omq_data::DataError> for ChaseError {
    fn from(e: omq_data::DataError) -> Self {
        ChaseError::Data(e)
    }
}
