//! End-to-end tests over real TCP sockets.
//!
//! These run the full stack — blocking [`Client`] → wire protocol → event
//! loop → per-connection state machine → `ServingEngine` — on an ephemeral
//! loopback port.  The centrepiece is the snapshot-pinning acceptance test:
//! two concurrent clients, one committing transactions while the other
//! pages a pinned cursor, with the paged sequence required to be
//! **byte-identical** to an in-process `AnswerStream` drain opened at the
//! pinned epoch.

use omq_data::Semantics;
use omq_serve::{Request, ServingEngine};
use omq_server::{
    render_answer, Client, ClientError, ErrorCode, QueryTarget, Server, ServerConfig, TxnOp,
};
use std::time::Duration;

const ONTOLOGY: &str = "Researcher(x) -> exists y. HasOffice(x, y)\n\
                        HasOffice(x, y) -> Office(y)\n\
                        Office(x) -> exists y. InBuilding(x, y)";
const QUERY: &str = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";

fn start_server(workers: usize) -> Server {
    Server::start(
        ServingEngine::new(1),
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

fn seed_facts(n: usize) -> Vec<TxnOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(TxnOp::Insert {
            relation: "Researcher".into(),
            tuple: vec![format!("r{i:03}")],
        });
        if i % 2 == 0 {
            ops.push(TxnOp::Insert {
                relation: "HasOffice".into(),
                tuple: vec![format!("r{i:03}"), format!("o{i:03}")],
            });
        }
        if i % 4 == 0 {
            ops.push(TxnOp::Insert {
                relation: "InBuilding".into(),
                tuple: vec![format!("o{i:03}"), format!("b{}", i / 8)],
            });
        }
    }
    ops
}

#[test]
fn full_session_over_tcp() {
    let server = start_server(2);
    let mut client = connect(&server);

    let id = client
        .register_query("offices", ONTOLOGY, QUERY)
        .expect("register");
    assert_eq!(id, 0);

    let commit = client.commit(seed_facts(8)).expect("commit");
    assert!(commit.new_facts > 0);

    // Aggregates agree with a full drain.
    let count = client
        .count(
            QueryTarget::Name("offices".into()),
            Semantics::MinimalPartial,
            None,
        )
        .expect("count");
    assert!(count.exists);
    let cursor = client
        .open_cursor(QueryTarget::Id(id), Semantics::MinimalPartial, None)
        .expect("open");
    assert_eq!(cursor.epoch, count.epoch);
    let answers = client.drain_cursor(cursor, 3).expect("drain");
    assert_eq!(answers.len() as u64, count.count);
    // Every researcher appears; unknown offices/buildings render as `*`.
    assert!(answers.iter().any(|a| a.contains(&"*".to_owned())));
    client.close_cursor(cursor).expect("close");

    // Paging with a window: offset 2, limit 3 is the same slice of the
    // unbounded drain.
    let window = client
        .open_cursor_window(
            QueryTarget::Id(id),
            Semantics::MinimalPartial,
            None,
            2,
            Some(3),
        )
        .expect("open window");
    let paged = client.drain_cursor(window, 2).expect("drain window");
    assert_eq!(paged, answers[2..5].to_vec());

    assert!(client
        .exists(QueryTarget::Id(id), Semantics::Complete, None)
        .expect("exists"));
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn epochs_advance_and_errors_are_classified() {
    let server = start_server(1);
    let mut client = connect(&server);
    client
        .register_query("offices", ONTOLOGY, QUERY)
        .expect("register");

    // Each commit advances the epoch.
    let first = client.commit(seed_facts(2)).expect("commit 1");
    let second = client
        .commit(vec![TxnOp::Insert {
            relation: "Researcher".into(),
            tuple: vec!["zz".into()],
        }])
        .expect("commit 2");
    assert!(second.epoch > first.epoch);

    // Unknown query name → 404, a client fault.
    let err = client
        .count(QueryTarget::Name("nope".into()), Semantics::Complete, None)
        .expect_err("unknown query");
    match err {
        ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownQuery);
            assert!(code.is_client_error());
        }
        other => panic!("expected server error, got {other}"),
    }

    // Unknown relation in a commit → schema mismatch.
    let err = client
        .commit(vec![TxnOp::Insert {
            relation: "NoSuchRel".into(),
            tuple: vec!["x".into()],
        }])
        .expect_err("bad relation");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::SchemaMismatch),
        other => panic!("expected server error, got {other}"),
    }

    // Ill-formed query text → 411.
    let err = client
        .register_query("broken", ONTOLOGY, "q(x :- R(x)")
        .expect_err("bad query");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected server error, got {other}"),
    }

    // Duplicate registration → 409.
    let err = client
        .register_query("offices", ONTOLOGY, QUERY)
        .expect_err("duplicate");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::DuplicateQuery),
        other => panic!("expected server error, got {other}"),
    }

    // The connection survived all four errors.
    assert!(client
        .exists(
            QueryTarget::Name("offices".into()),
            Semantics::MinimalPartial,
            None
        )
        .expect("still serving"));
    client.bye().expect("bye");
}

/// The acceptance test: a cursor pinned at epoch `e` replays exactly epoch
/// `e` while another client commits concurrently — and the paged sequence
/// is byte-identical to an in-process drain opened at the same pinned
/// snapshot.
#[test]
fn pinned_cursor_is_isolated_from_concurrent_commits() {
    let server = start_server(2);
    let mut reader = connect(&server);
    reader
        .register_query("offices", ONTOLOGY, QUERY)
        .expect("register");
    reader.commit(seed_facts(24)).expect("seed");

    // Pin over the wire, then grab the same snapshot in-process and open
    // the reference stream *before* any concurrent commit.
    let pinned = reader.pin().expect("pin");
    let shared = server.shared_engine();
    let (snap, reference_stream) = {
        let engine = shared.engine.read().expect("engine lock");
        let snap = engine.snapshot();
        assert_eq!(
            snap.epoch(),
            pinned.epoch,
            "wire pin and in-process snapshot must agree before the writer starts"
        );
        let stream = engine
            .serve_stream(&Request::by_name("offices", Semantics::MinimalPartial).at(snap.clone()))
            .expect("reference stream");
        (snap, stream)
    };

    let cursor = reader
        .open_cursor(
            QueryTarget::Name("offices".into()),
            Semantics::MinimalPartial,
            Some(pinned.handle),
        )
        .expect("open pinned cursor");
    assert_eq!(cursor.epoch, pinned.epoch);

    // A second client hammers commits while the first pages.
    let addr = server.local_addr();
    let writer = std::thread::spawn(move || {
        let mut writer = Client::connect(addr).expect("writer connect");
        let mut last_epoch = 0;
        for round in 0..20 {
            let receipt = writer
                .insert_all(
                    "Researcher",
                    (0..5).map(|i| vec![format!("new{round:02}_{i}")]),
                )
                .expect("concurrent commit");
            assert!(receipt.epoch > last_epoch);
            last_epoch = receipt.epoch;
        }
        writer.bye().expect("writer bye");
        last_epoch
    });

    // Page slowly (k = 2) so plenty of commits land mid-enumeration.
    let mut wire_answers = Vec::new();
    loop {
        let page = reader.fetch(cursor, 2).expect("fetch");
        wire_answers.extend(page.answers);
        if page.done {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let final_epoch = writer.join().expect("writer thread");
    assert!(final_epoch > pinned.epoch, "commits really happened");

    // Byte-identical to the in-process drain at the pinned epoch.
    let reference: Vec<Vec<String>> = reference_stream
        .map(|answer| render_answer(&answer, snap.database()))
        .collect();
    assert_eq!(wire_answers, reference);
    assert!(!wire_answers.is_empty());

    // A fresh head cursor (same connection) sees the committed facts.
    let head_count = reader
        .count(
            QueryTarget::Name("offices".into()),
            Semantics::MinimalPartial,
            None,
        )
        .expect("head count");
    assert!(head_count.count > wire_answers.len() as u64);
    assert_eq!(head_count.epoch, final_epoch);

    reader.close_cursor(cursor).expect("close");
    reader
        .release(omq_server::WireSnapshot {
            handle: pinned.handle,
            epoch: pinned.epoch,
        })
        .expect("release");
    reader.bye().expect("bye");
    server.shutdown();
}

/// Malformed bytes on the wire get an error frame, not a hangup; an
/// oversized length prefix closes the connection after reporting.
#[test]
fn protocol_errors_over_tcp() {
    use std::io::{Read, Write};

    let server = start_server(1);

    // A framed-but-malformed payload: error response, connection survives.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let junk = b"{\"t\":\"open\",\"query\":[]}";
    raw.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(junk).unwrap();
    let mut decoder = omq_server::FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let frame = loop {
        if let Some(payload) = decoder.next_frame().unwrap() {
            break omq_server::ServerFrame::decode(&payload).unwrap();
        }
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server hung up on a recoverable error");
        decoder.feed(&buf[..n]);
    };
    assert!(matches!(
        frame,
        omq_server::ServerFrame::Error {
            code: ErrorCode::MalformedFrame,
            ..
        }
    ));
    // Still alive: a well-formed request on the same socket round-trips.
    raw.write_all(&omq_server::ClientFrame::Pin.encode())
        .unwrap();
    let frame = loop {
        if let Some(payload) = decoder.next_frame().unwrap() {
            break omq_server::ServerFrame::decode(&payload).unwrap();
        }
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server hung up after recovering");
        decoder.feed(&buf[..n]);
    };
    assert!(matches!(frame, omq_server::ServerFrame::Pinned { .. }));

    // An oversized length prefix: error frame, then close.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let mut decoder = omq_server::FrameDecoder::new();
    let mut saw_error = false;
    loop {
        match raw.read(&mut buf) {
            Ok(0) => break, // server closed, as specified
            Ok(n) => {
                decoder.feed(&buf[..n]);
                while let Some(payload) = decoder.next_frame().unwrap() {
                    let frame = omq_server::ServerFrame::decode(&payload).unwrap();
                    assert!(matches!(
                        frame,
                        omq_server::ServerFrame::Error {
                            code: ErrorCode::FrameTooLarge,
                            ..
                        }
                    ));
                    saw_error = true;
                }
            }
            Err(e) => panic!("read failed before close: {e}"),
        }
    }
    assert!(saw_error, "the close was reported before hanging up");
    server.shutdown();
}
