//! Property tests for the wire-protocol codec.
//!
//! Three invariants, each over randomly generated frames:
//!
//! 1. **Round-trip**: `decode(encode(f)) == f` for every frame type, with
//!    payload strings ranging over escapes, multi-byte UTF-8 and astral
//!    characters;
//! 2. **Torn-read reassembly**: concatenating encoded frames and feeding
//!    the bytes to a [`FrameDecoder`] in chunks of arbitrary (generated)
//!    sizes yields exactly the original frame sequence;
//! 3. **Malformed-frame rejection**: corrupting the *payload* of a framed
//!    message never panics and never kills the stream — decoding fails
//!    cleanly (or yields some valid frame, if the corruption happened to
//!    preserve well-formedness), and subsequent frames still decode.

use omq_data::Semantics;
use omq_server::{ClientFrame, FrameDecoder, QueryTarget, ServerFrame, TxnOp};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Characters deliberately stressing the JSON writer/parser: ASCII,
/// escapes, control chars, multi-byte UTF-8, an astral-plane code point.
const CHARS: &[char] = &[
    'a',
    'b',
    'Z',
    '0',
    ' ',
    '_',
    '-',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    'é',
    'ß',
    '→',
    '\u{1F600}',
];

fn arb_string(max_len: usize) -> BoxedStrategy<String> {
    prop::collection::vec(0usize..CHARS.len(), 0..max_len)
        .prop_map(|picks| picks.into_iter().map(|i| CHARS[i]).collect())
        .boxed()
}

fn arb_semantics() -> BoxedStrategy<Semantics> {
    prop_oneof![
        Just(Semantics::Complete),
        Just(Semantics::MinimalPartial),
        Just(Semantics::MinimalPartialMulti),
    ]
    .boxed()
}

fn arb_query_target() -> BoxedStrategy<QueryTarget> {
    prop_oneof![
        (0u64..1024).prop_map(QueryTarget::Id),
        arb_string(6).prop_map(QueryTarget::Name),
    ]
    .boxed()
}

fn arb_txn_op() -> BoxedStrategy<TxnOp> {
    prop_oneof![
        (arb_string(5), prop::collection::vec(arb_string(4), 0..4))
            .prop_map(|(relation, tuple)| TxnOp::Insert { relation, tuple }),
        (arb_string(5), 0usize..6)
            .prop_map(|(relation, arity)| TxnOp::AddRelation { relation, arity }),
    ]
    .boxed()
}

fn arb_opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (0u64..omq_server::MAX_WIRE_INT).prop_map(Some),].boxed()
}

fn arb_client_frame() -> BoxedStrategy<ClientFrame> {
    prop_oneof![
        (arb_string(6), arb_string(24), arb_string(24)).prop_map(|(name, ontology, query)| {
            ClientFrame::Register {
                name,
                ontology,
                query,
            }
        }),
        prop::collection::vec(arb_txn_op(), 0..5).prop_map(|ops| ClientFrame::Commit { ops }),
        Just(ClientFrame::Pin),
        (
            arb_query_target(),
            arb_semantics(),
            arb_opt_u64(),
            (0u64..1 << 40, arb_opt_u64()),
        )
            .prop_map(|(query, semantics, snapshot, (offset, limit))| {
                ClientFrame::OpenCursor {
                    query,
                    semantics,
                    snapshot,
                    offset,
                    limit,
                }
            }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(cursor, k)| ClientFrame::Fetch { cursor, k }),
        (arb_query_target(), arb_semantics(), arb_opt_u64()).prop_map(
            |(query, semantics, snapshot)| ClientFrame::Count {
                query,
                semantics,
                snapshot
            }
        ),
        (arb_query_target(), arb_semantics(), arb_opt_u64()).prop_map(
            |(query, semantics, snapshot)| ClientFrame::Exists {
                query,
                semantics,
                snapshot
            }
        ),
        (0u64..omq_server::MAX_WIRE_INT).prop_map(|cursor| ClientFrame::CloseCursor { cursor }),
        (0u64..omq_server::MAX_WIRE_INT)
            .prop_map(|snapshot| ClientFrame::ReleaseSnapshot { snapshot }),
        Just(ClientFrame::Bye),
    ]
    .boxed()
}

fn arb_answer() -> BoxedStrategy<Vec<String>> {
    prop::collection::vec(arb_string(5), 0..4).boxed()
}

fn arb_server_frame() -> BoxedStrategy<ServerFrame> {
    use omq_server::ErrorCode;
    prop_oneof![
        (0u64..1024, arb_string(6)).prop_map(|(id, name)| ServerFrame::Registered { id, name }),
        (0u64..omq_server::MAX_WIRE_INT, 0u64..1 << 32, 0u64..1 << 32).prop_map(
            |(epoch, new_facts, duplicate_facts)| ServerFrame::Committed {
                epoch,
                new_facts,
                duplicate_facts
            }
        ),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(snapshot, epoch)| ServerFrame::Pinned { snapshot, epoch }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT,
            arb_semantics()
        )
            .prop_map(|(cursor, epoch, semantics)| ServerFrame::CursorOpened {
                cursor,
                epoch,
                semantics
            }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            prop::collection::vec(arb_answer(), 0..5),
            prop_oneof![Just(true), Just(false)],
        )
            .prop_map(|(cursor, answers, done)| ServerFrame::Page {
                cursor,
                answers,
                done
            }),
        (
            0u64..1 << 48,
            prop_oneof![Just(true), Just(false)],
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(count, exists, epoch)| ServerFrame::Counted {
                count,
                exists,
                epoch
            }),
        (
            prop_oneof![Just(true), Just(false)],
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(exists, epoch)| ServerFrame::Exists { exists, epoch }),
        (0u64..omq_server::MAX_WIRE_INT).prop_map(|cursor| ServerFrame::CursorClosed { cursor }),
        (0u64..omq_server::MAX_WIRE_INT)
            .prop_map(|snapshot| ServerFrame::SnapshotReleased { snapshot }),
        Just(ServerFrame::Bye),
        (0usize..ErrorCode::ALL.len(), arb_string(12)).prop_map(|(i, message)| {
            ServerFrame::Error {
                code: ErrorCode::ALL[i],
                message,
            }
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Round-trip: every client frame decodes back to itself.
    #[test]
    fn client_frames_round_trip(frame in arb_client_frame()) {
        let encoded = frame.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&encoded);
        let payload = decoder.next_frame().unwrap().expect("one whole frame");
        prop_assert_eq!(ClientFrame::decode(&payload).unwrap(), frame);
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// Round-trip: every server frame decodes back to itself.
    #[test]
    fn server_frames_round_trip(frame in arb_server_frame()) {
        let encoded = frame.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&encoded);
        let payload = decoder.next_frame().unwrap().expect("one whole frame");
        prop_assert_eq!(ServerFrame::decode(&payload).unwrap(), frame);
    }

    /// Torn reads: a frame sequence split at arbitrary byte boundaries
    /// reassembles to exactly the original sequence.
    #[test]
    fn torn_reads_reassemble(
        frames in prop::collection::vec(arb_client_frame(), 1..6),
        cuts in prop::collection::vec(1usize..48, 0..64),
    ) {
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        // Feed chunks of the generated sizes, then whatever remains.
        for cut in cuts {
            if pos >= wire.len() {
                break;
            }
            let end = (pos + cut).min(wire.len());
            decoder.feed(&wire[pos..end]);
            pos = end;
            while let Some(payload) = decoder.next_frame().unwrap() {
                got.push(ClientFrame::decode(&payload).unwrap());
            }
        }
        decoder.feed(&wire[pos..]);
        while let Some(payload) = decoder.next_frame().unwrap() {
            got.push(ClientFrame::decode(&payload).unwrap());
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// Corrupting payload bytes never panics, and — because the length
    /// prefix still frames the payload — never desynchronises the stream:
    /// the next frame decodes cleanly.
    #[test]
    fn corrupted_payloads_fail_cleanly_and_locally(
        frame in arb_client_frame(),
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..4),
    ) {
        let mut payload = frame.to_json().to_json().into_bytes();
        for (pos, xor) in flips {
            if payload.is_empty() {
                break;
            }
            let idx = pos % payload.len();
            payload[idx] ^= xor;
        }
        // Decoding the corrupted payload must not panic; success is allowed
        // (the corruption may have produced another well-formed frame).
        let _ = ClientFrame::decode(&payload);

        // Framing survives: corrupted frame, then a pristine one.
        let mut wire = omq_server::protocol::frame_payload(&payload);
        wire.extend_from_slice(&ClientFrame::Pin.encode());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        let first = decoder.next_frame().unwrap().expect("corrupted frame is still framed");
        prop_assert_eq!(first, payload);
        let second = decoder.next_frame().unwrap().expect("next frame intact");
        prop_assert_eq!(ClientFrame::decode(&second).unwrap(), ClientFrame::Pin);
    }
}
