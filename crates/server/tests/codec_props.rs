//! Property tests for the server frame *grammar*.
//!
//! The framing layer itself (torn-read reassembly, oversized prefixes,
//! payload opacity) is property-tested once in `omq-wire`; what this suite
//! checks is the grammar built on top of it:
//!
//! 1. **Round-trip**: `decode(encode(f)) == f` for every frame type, with
//!    payload strings ranging over escapes, multi-byte UTF-8 and astral
//!    characters;
//! 2. **Malformed-payload rejection**: corrupting an encoded payload never
//!    panics the decoder — it fails cleanly (or yields some valid frame, if
//!    the corruption happened to preserve well-formedness).

use omq_data::Semantics;
use omq_server::{ClientFrame, FrameDecoder, QueryTarget, ServerFrame, TxnOp};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Characters deliberately stressing the JSON writer/parser: ASCII,
/// escapes, control chars, multi-byte UTF-8, an astral-plane code point.
const CHARS: &[char] = &[
    'a',
    'b',
    'Z',
    '0',
    ' ',
    '_',
    '-',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    'é',
    'ß',
    '→',
    '\u{1F600}',
];

fn arb_string(max_len: usize) -> BoxedStrategy<String> {
    prop::collection::vec(0usize..CHARS.len(), 0..max_len)
        .prop_map(|picks| picks.into_iter().map(|i| CHARS[i]).collect())
        .boxed()
}

fn arb_semantics() -> BoxedStrategy<Semantics> {
    prop_oneof![
        Just(Semantics::Complete),
        Just(Semantics::MinimalPartial),
        Just(Semantics::MinimalPartialMulti),
    ]
    .boxed()
}

fn arb_query_target() -> BoxedStrategy<QueryTarget> {
    prop_oneof![
        (0u64..1024).prop_map(QueryTarget::Id),
        arb_string(6).prop_map(QueryTarget::Name),
    ]
    .boxed()
}

fn arb_txn_op() -> BoxedStrategy<TxnOp> {
    prop_oneof![
        (arb_string(5), prop::collection::vec(arb_string(4), 0..4))
            .prop_map(|(relation, tuple)| TxnOp::Insert { relation, tuple }),
        (arb_string(5), 0usize..6)
            .prop_map(|(relation, arity)| TxnOp::AddRelation { relation, arity }),
    ]
    .boxed()
}

fn arb_opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (0u64..omq_server::MAX_WIRE_INT).prop_map(Some),].boxed()
}

fn arb_client_frame() -> BoxedStrategy<ClientFrame> {
    prop_oneof![
        (arb_string(6), arb_string(24), arb_string(24)).prop_map(|(name, ontology, query)| {
            ClientFrame::Register {
                name,
                ontology,
                query,
            }
        }),
        prop::collection::vec(arb_txn_op(), 0..5).prop_map(|ops| ClientFrame::Commit { ops }),
        Just(ClientFrame::Pin),
        (
            arb_query_target(),
            arb_semantics(),
            arb_opt_u64(),
            (0u64..1 << 40, arb_opt_u64()),
        )
            .prop_map(|(query, semantics, snapshot, (offset, limit))| {
                ClientFrame::OpenCursor {
                    query,
                    semantics,
                    snapshot,
                    offset,
                    limit,
                }
            }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(cursor, k)| ClientFrame::Fetch { cursor, k }),
        (arb_query_target(), arb_semantics(), arb_opt_u64()).prop_map(
            |(query, semantics, snapshot)| ClientFrame::Count {
                query,
                semantics,
                snapshot
            }
        ),
        (arb_query_target(), arb_semantics(), arb_opt_u64()).prop_map(
            |(query, semantics, snapshot)| ClientFrame::Exists {
                query,
                semantics,
                snapshot
            }
        ),
        (0u64..omq_server::MAX_WIRE_INT).prop_map(|cursor| ClientFrame::CloseCursor { cursor }),
        (0u64..omq_server::MAX_WIRE_INT)
            .prop_map(|snapshot| ClientFrame::ReleaseSnapshot { snapshot }),
        Just(ClientFrame::Bye),
    ]
    .boxed()
}

fn arb_answer() -> BoxedStrategy<Vec<String>> {
    prop::collection::vec(arb_string(5), 0..4).boxed()
}

fn arb_server_frame() -> BoxedStrategy<ServerFrame> {
    use omq_server::ErrorCode;
    prop_oneof![
        (0u64..1024, arb_string(6)).prop_map(|(id, name)| ServerFrame::Registered { id, name }),
        (0u64..omq_server::MAX_WIRE_INT, 0u64..1 << 32, 0u64..1 << 32).prop_map(
            |(epoch, new_facts, duplicate_facts)| ServerFrame::Committed {
                epoch,
                new_facts,
                duplicate_facts
            }
        ),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(snapshot, epoch)| ServerFrame::Pinned { snapshot, epoch }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            0u64..omq_server::MAX_WIRE_INT,
            arb_semantics()
        )
            .prop_map(|(cursor, epoch, semantics)| ServerFrame::CursorOpened {
                cursor,
                epoch,
                semantics
            }),
        (
            0u64..omq_server::MAX_WIRE_INT,
            prop::collection::vec(arb_answer(), 0..5),
            prop_oneof![Just(true), Just(false)],
        )
            .prop_map(|(cursor, answers, done)| ServerFrame::Page {
                cursor,
                answers,
                done
            }),
        (
            0u64..1 << 48,
            prop_oneof![Just(true), Just(false)],
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(count, exists, epoch)| ServerFrame::Counted {
                count,
                exists,
                epoch
            }),
        (
            prop_oneof![Just(true), Just(false)],
            0u64..omq_server::MAX_WIRE_INT
        )
            .prop_map(|(exists, epoch)| ServerFrame::Exists { exists, epoch }),
        (0u64..omq_server::MAX_WIRE_INT).prop_map(|cursor| ServerFrame::CursorClosed { cursor }),
        (0u64..omq_server::MAX_WIRE_INT)
            .prop_map(|snapshot| ServerFrame::SnapshotReleased { snapshot }),
        Just(ServerFrame::Bye),
        (0usize..ErrorCode::ALL.len(), arb_string(12)).prop_map(|(i, message)| {
            ServerFrame::Error {
                code: ErrorCode::ALL[i],
                message,
            }
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Round-trip: every client frame decodes back to itself.
    #[test]
    fn client_frames_round_trip(frame in arb_client_frame()) {
        let encoded = frame.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&encoded);
        let payload = decoder.next_frame().unwrap().expect("one whole frame");
        prop_assert_eq!(ClientFrame::decode(&payload).unwrap(), frame);
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// Round-trip: every server frame decodes back to itself.
    #[test]
    fn server_frames_round_trip(frame in arb_server_frame()) {
        let encoded = frame.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&encoded);
        let payload = decoder.next_frame().unwrap().expect("one whole frame");
        prop_assert_eq!(ServerFrame::decode(&payload).unwrap(), frame);
    }

    /// Corrupting payload bytes never panics the grammar decoder; it fails
    /// cleanly or yields some other valid frame.  (That the *stream* stays
    /// framed is the codec's property, tested in `omq-wire`.)
    #[test]
    fn corrupted_payloads_fail_cleanly(
        frame in arb_client_frame(),
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..4),
    ) {
        let mut payload = frame.to_json().to_json().into_bytes();
        for (pos, xor) in flips {
            if payload.is_empty() {
                break;
            }
            let idx = pos % payload.len();
            payload[idx] ^= xor;
        }
        // Decoding the corrupted payload must not panic; success is allowed
        // (the corruption may have produced another well-formed frame).
        let _ = ClientFrame::decode(&payload);
        let _ = ServerFrame::decode(&payload);
    }
}
