//! A small blocking client for the wire protocol.
//!
//! One request in flight at a time: send a frame, block until the response
//! frame arrives.  That is all the load harness, the examples and the
//! end-to-end tests need — and it doubles as executable documentation of
//! the protocol from the peer's side.  Responses the client did not ask
//! for (there are none in this protocol) and protocol errors both surface
//! as [`ClientError`].

use crate::protocol::{
    ClientFrame, ErrorCode, FrameDecoder, QueryTarget, ServerFrame, TxnOp, MAX_FRAME_LEN,
};
use omq_data::Semantics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected EOF).
    Io(std::io::Error),
    /// The server answered with a protocol error frame.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The peer sent bytes that are not a valid protocol frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation from peer: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenient `Result` alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Receipt of a successful commit, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCommit {
    /// Store epoch after the commit.
    pub epoch: u64,
    /// Facts new to the store.
    pub new_facts: u64,
    /// Staged facts that were already present.
    pub duplicate_facts: u64,
}

/// A pinned snapshot handle plus the epoch it pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Connection-scoped handle.
    pub handle: u64,
    /// The pinned epoch.
    pub epoch: u64,
}

/// An open cursor handle plus the epoch its pages replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCursor {
    /// Connection-scoped handle.
    pub handle: u64,
    /// The pinned epoch — every page replays exactly this epoch.
    pub epoch: u64,
}

/// One fetched page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePage {
    /// Rendered answers (see `protocol::render_answer` for the encoding).
    pub answers: Vec<Vec<String>>,
    /// Whether the cursor is exhausted.
    pub done: bool,
}

/// An aggregate response: count plus the epoch it was served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCount {
    /// Number of answers.
    pub count: u64,
    /// `count > 0`.
    pub exists: bool,
    /// The epoch the aggregate was served at.
    pub epoch: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
        })
    }

    /// Sets (or clears) the read timeout for response frames.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Registers an ontology-mediated query under `name`; returns its
    /// catalogue id.
    pub fn register_query(&mut self, name: &str, ontology: &str, query: &str) -> Result<u64> {
        match self.call(&ClientFrame::Register {
            name: name.to_owned(),
            ontology: ontology.to_owned(),
            query: query.to_owned(),
        })? {
            ServerFrame::Registered { id, .. } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Commits a transaction batch.
    pub fn commit(&mut self, ops: Vec<TxnOp>) -> Result<WireCommit> {
        match self.call(&ClientFrame::Commit { ops })? {
            ServerFrame::Committed {
                epoch,
                new_facts,
                duplicate_facts,
            } => Ok(WireCommit {
                epoch,
                new_facts,
                duplicate_facts,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Commits a batch of plain fact insertions into one relation.
    pub fn insert_all<S: AsRef<str>>(
        &mut self,
        relation: &str,
        rows: impl IntoIterator<Item = Vec<S>>,
    ) -> Result<WireCommit> {
        let ops = rows
            .into_iter()
            .map(|row| TxnOp::Insert {
                relation: relation.to_owned(),
                tuple: row.into_iter().map(|c| c.as_ref().to_owned()).collect(),
            })
            .collect();
        self.commit(ops)
    }

    /// Pins the server's store head; later commits never change what the
    /// handle answers.
    pub fn pin(&mut self) -> Result<WireSnapshot> {
        match self.call(&ClientFrame::Pin)? {
            ServerFrame::Pinned { snapshot, epoch } => Ok(WireSnapshot {
                handle: snapshot,
                epoch,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens a cursor over a query's answers, pinned at `snapshot` (or the
    /// head at open time if `None`).
    pub fn open_cursor(
        &mut self,
        query: QueryTarget,
        semantics: Semantics,
        snapshot: Option<u64>,
    ) -> Result<WireCursor> {
        self.open_cursor_window(query, semantics, snapshot, 0, None)
    }

    /// Like [`Client::open_cursor`] with an explicit answer window.
    pub fn open_cursor_window(
        &mut self,
        query: QueryTarget,
        semantics: Semantics,
        snapshot: Option<u64>,
        offset: u64,
        limit: Option<u64>,
    ) -> Result<WireCursor> {
        match self.call(&ClientFrame::OpenCursor {
            query,
            semantics,
            snapshot,
            offset,
            limit,
        })? {
            ServerFrame::CursorOpened { cursor, epoch, .. } => Ok(WireCursor {
                handle: cursor,
                epoch,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the next page of at most `k` answers.
    pub fn fetch(&mut self, cursor: WireCursor, k: u64) -> Result<WirePage> {
        match self.call(&ClientFrame::Fetch {
            cursor: cursor.handle,
            k,
        })? {
            ServerFrame::Page { answers, done, .. } => Ok(WirePage { answers, done }),
            other => Err(unexpected(&other)),
        }
    }

    /// Counts a query's answers without materialising them.
    pub fn count(
        &mut self,
        query: QueryTarget,
        semantics: Semantics,
        snapshot: Option<u64>,
    ) -> Result<WireCount> {
        match self.call(&ClientFrame::Count {
            query,
            semantics,
            snapshot,
        })? {
            ServerFrame::Counted {
                count,
                exists,
                epoch,
            } => Ok(WireCount {
                count,
                exists,
                epoch,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Probes whether the query has any answer at all.
    pub fn exists(
        &mut self,
        query: QueryTarget,
        semantics: Semantics,
        snapshot: Option<u64>,
    ) -> Result<bool> {
        match self.call(&ClientFrame::Exists {
            query,
            semantics,
            snapshot,
        })? {
            ServerFrame::Exists { exists, .. } => Ok(exists),
            other => Err(unexpected(&other)),
        }
    }

    /// Releases a cursor.
    pub fn close_cursor(&mut self, cursor: WireCursor) -> Result<()> {
        match self.call(&ClientFrame::CloseCursor {
            cursor: cursor.handle,
        })? {
            ServerFrame::CursorClosed { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Releases a pinned snapshot.
    pub fn release(&mut self, snapshot: WireSnapshot) -> Result<()> {
        match self.call(&ClientFrame::ReleaseSnapshot {
            snapshot: snapshot.handle,
        })? {
            ServerFrame::SnapshotReleased { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Says goodbye; the connection is unusable afterwards.
    pub fn bye(mut self) -> Result<()> {
        match self.call(&ClientFrame::Bye)? {
            ServerFrame::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains a whole cursor page by page, collecting every answer.
    pub fn drain_cursor(&mut self, cursor: WireCursor, k: u64) -> Result<Vec<Vec<String>>> {
        let mut all = Vec::new();
        loop {
            let page = self.fetch(cursor, k)?;
            all.extend(page.answers);
            if page.done {
                return Ok(all);
            }
        }
    }

    /// Sends one frame and blocks for the response frame.  A protocol
    /// error frame becomes [`ClientError::Server`].
    pub fn call(&mut self, frame: &ClientFrame) -> Result<ServerFrame> {
        self.stream.write_all(&frame.encode())?;
        let frame = self.read_frame()?;
        match frame {
            ServerFrame::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn read_frame(&mut self) -> Result<ServerFrame> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return ServerFrame::decode(&payload)
                        .map_err(|v| ClientError::Protocol(v.message));
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(ClientError::Protocol(format!(
                        "{e} (cap is {MAX_FRAME_LEN})"
                    )))
                }
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            self.decoder.feed(&self.read_buf[..n]);
        }
    }
}

fn unexpected(frame: &ServerFrame) -> ClientError {
    ClientError::Protocol(format!("unexpected response frame: {frame:?}"))
}
