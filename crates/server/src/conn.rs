//! Per-connection state machines.
//!
//! One [`Connection`] owns everything a TCP peer has going: the frame
//! decoder reassembling its byte stream, a write buffer with partial-write
//! offset (the event loop writes as much as the socket accepts and comes
//! back later), its pinned snapshots, and its open cursors.  Cursors and
//! snapshots are **connection-scoped**: handles are meaningless on any
//! other connection, and dropping the connection releases them all.
//!
//! The request handler itself is synchronous and socket-free — it consumes
//! decoded payloads and appends encoded responses to the write buffer —
//! which is what makes it unit-testable without a socket and reusable
//! across event-loop shapes.
//!
//! # Locking discipline
//!
//! The engine sits behind one `RwLock`: commits and query registrations
//! take the write lock; opening cursors, counts and probes take the read
//! lock.  Crucially, **fetch takes no lock at all** — a cursor owns its
//! `StreamedResponse`, which owns its pinned data, so paging answers runs
//! concurrently with commits by construction (the copy-on-write store never
//! mutates a pinned snapshot).  That is the snapshot-pinning invariant on
//! the wire: the pages of a cursor opened at epoch `e` replay exactly
//! epoch `e`.

use crate::protocol::{
    answer_wire_len, render_answer, ClientFrame, ErrorCode, FrameDecoder, FrameTooLarge,
    ServerFrame, TxnOp, MAX_FRAME_LEN, MAX_PAGE, MAX_PAGE_BYTES,
};
use omq_data::{Answer, Snapshot, Txn};
use omq_serve::{QueryId, Request, ServingEngine, StreamedResponse};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::RwLock;

/// Write-buffer level (bytes) above which a connection stops producing:
/// the event loop stops *reading* it, and [`Connection::pump`] stops
/// consuming frames the decoder already holds — so a burst of pipelined
/// requests cannot amplify into unbounded response memory.  The peer must
/// drain what it asked for before it gets more.
pub const HIGH_WATER: usize = 256 * 1024;

/// Answers are pulled off a cursor's stream in chunks of at most this many
/// while filling a page — keeps the batched-pull fast path of
/// `next_batch` while bounding how many rendered answers can pile up in
/// [`Cursor::pending`] past the page's byte budget.
const PULL_CHUNK: usize = 1024;

/// Hard ceiling on one rendered answer: even alone in a page it must fit a
/// frame, with generous allowance for the page envelope.  An answer past
/// this is undeliverable and the fetch reports an error instead.
const MAX_SINGLE_ANSWER_BYTES: usize = MAX_FRAME_LEN - 1024;

/// Cap on error-frame messages.  They echo client-supplied text (unknown
/// tags, names, parse errors over submitted query text), so without a cap
/// they could themselves approach the frame limit.
const MAX_ERROR_MESSAGE_BYTES: usize = 1024;

/// Per-connection resource quotas.
///
/// Cursors and pinned snapshots are the two handle kinds a client can
/// accumulate; each pins data (a snapshot keeps its epoch's store alive,
/// a cursor additionally owns an enumeration state), so without a cap one
/// connection could pin unbounded memory with a loop of `pin`/`open`
/// requests.  Exceeding a quota is a *recoverable* client fault
/// ([`ErrorCode::QuotaExceeded`], 429): the request fails, the connection
/// stays up, and releasing any handle makes room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionQuotas {
    /// Maximum simultaneously open cursors.
    pub max_cursors: usize,
    /// Maximum simultaneously pinned snapshots (explicit `pin` handles;
    /// cursor-internal snapshots count against `max_cursors` instead).
    pub max_snapshots: usize,
}

impl Default for ConnectionQuotas {
    fn default() -> Self {
        ConnectionQuotas {
            max_cursors: 1024,
            max_snapshots: 4096,
        }
    }
}

/// The server state every connection shares: the engine behind its lock.
#[derive(Debug)]
pub struct Shared {
    /// The serving engine.  Write lock for commits/registrations, read lock
    /// for opening cursors and aggregates; never held across a fetch.
    pub engine: RwLock<ServingEngine>,
}

/// An open cursor: the answer stream plus the snapshot it is pinned to
/// (kept for rendering constants through the pinned interner).
struct Cursor {
    stream: StreamedResponse,
    snap: Snapshot,
    /// The stream has been pulled dry.  The wire-level `done` flag also
    /// requires [`Cursor::pending`] to be empty.
    exhausted: bool,
    /// Rendered answers already pulled off the stream but deferred by a
    /// page's byte cap ([`MAX_PAGE_BYTES`]); the next fetch serves these
    /// before pulling again.
    pending: VecDeque<Vec<String>>,
}

/// Why the connection must close after the write buffer drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The client said goodbye; close is graceful.
    Bye,
    /// The byte stream is unrecoverable (oversized length prefix).
    Fatal,
}

/// The state machine of one connected peer.
pub struct Connection {
    decoder: FrameDecoder,
    /// Encoded, not-yet-flushed response bytes.
    outbuf: Vec<u8>,
    /// How much of `outbuf` has already been written to the socket.
    out_start: usize,
    cursors: FxHashMap<u64, Cursor>,
    snapshots: FxHashMap<u64, Snapshot>,
    next_handle: u64,
    closing: Option<CloseReason>,
    quotas: ConnectionQuotas,
    /// Scratch buffer for batched pulls, recycled across fetches.
    scratch: Vec<Answer>,
}

impl Connection {
    /// A fresh connection with empty buffers, no handles, and the default
    /// [`ConnectionQuotas`].
    pub fn new() -> Self {
        Connection::with_quotas(ConnectionQuotas::default())
    }

    /// A fresh connection with explicit resource quotas.
    pub fn with_quotas(quotas: ConnectionQuotas) -> Self {
        Connection {
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            out_start: 0,
            cursors: FxHashMap::default(),
            snapshots: FxHashMap::default(),
            next_handle: 1,
            closing: None,
            quotas,
            scratch: Vec::new(),
        }
    }

    /// Feeds bytes read off the socket and processes complete frames up to
    /// the backpressure mark.  Responses accumulate in the write buffer.
    pub fn on_bytes(&mut self, bytes: &[u8], shared: &Shared) {
        self.decoder.feed(bytes);
        self.pump(shared);
    }

    /// Processes buffered complete frames; returns whether any frame was
    /// consumed.  Backpressure is enforced *here*, not only at the socket
    /// read: once the write buffer passes [`HIGH_WATER`] the pump stops,
    /// the decoder retains the unconsumed frames, and the event loop calls
    /// `pump` again on a later sweep once the buffer has drained.
    pub fn pump(&mut self, shared: &Shared) -> bool {
        let mut progressed = false;
        while self.closing.is_none() && self.pending_out().len() < HIGH_WATER {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    self.on_payload(&payload, shared);
                    progressed = true;
                }
                Ok(None) => break,
                Err(FrameTooLarge { declared }) => {
                    // The length prefix cannot be trusted, so there is no
                    // next frame boundary: report and hang up.
                    self.send(&ServerFrame::Error {
                        code: ErrorCode::FrameTooLarge,
                        message: FrameTooLarge { declared }.to_string(),
                    });
                    self.closing = Some(CloseReason::Fatal);
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn on_payload(&mut self, payload: &[u8], shared: &Shared) {
        // A framed-but-malformed payload is the client's problem, not the
        // connection's: answer with a protocol error and keep going (the
        // length prefix kept the stream in sync).
        let frame = match ClientFrame::decode(payload) {
            Ok(frame) => frame,
            Err(violation) => {
                self.send(&ServerFrame::Error {
                    code: ErrorCode::MalformedFrame,
                    message: clip(violation.message),
                });
                return;
            }
        };
        let response = self.handle(frame, shared);
        self.send(&response);
    }

    fn handle(&mut self, frame: ClientFrame, shared: &Shared) -> ServerFrame {
        match frame {
            ClientFrame::Register {
                name,
                ontology,
                query,
            } => register(&name, &ontology, &query, shared),
            ClientFrame::Commit { ops } => commit(ops, shared),
            ClientFrame::Pin => {
                if self.snapshots.len() >= self.quotas.max_snapshots {
                    return ServerFrame::Error {
                        code: ErrorCode::QuotaExceeded,
                        message: format!(
                            "connection quota of {} pinned snapshots reached; \
                             release one and retry",
                            self.quotas.max_snapshots
                        ),
                    };
                }
                let snap = shared.engine.read().expect("engine lock").snapshot();
                let epoch = snap.epoch();
                let handle = self.fresh_handle();
                self.snapshots.insert(handle, snap);
                ServerFrame::Pinned {
                    snapshot: handle,
                    epoch,
                }
            }
            ClientFrame::OpenCursor {
                query,
                semantics,
                snapshot,
                offset,
                limit,
            } => {
                if self.cursors.len() >= self.quotas.max_cursors {
                    return ServerFrame::Error {
                        code: ErrorCode::QuotaExceeded,
                        message: format!(
                            "connection quota of {} open cursors reached; \
                             close one and retry",
                            self.quotas.max_cursors
                        ),
                    };
                }
                let pinned = match self.resolve_pin(snapshot) {
                    Ok(pinned) => pinned,
                    Err(response) => return response,
                };
                // A caller-pinned snapshot replays its epoch via a fresh
                // execute (stable order no matter where the head is); an
                // unpinned open evaluates at the head and rides the engine's
                // warm instance, so post-commit time-to-first-page tracks
                // the delta, not the database.
                let mut request = Request::new(to_query_ref(&query), semantics);
                if let Some(snap) = &pinned {
                    request = request.at(snap.clone());
                }
                request = request.with_offset(offset as usize);
                if let Some(limit) = limit {
                    request = request.with_limit(limit as usize);
                }
                let (snap, opened) = {
                    let engine = shared.engine.read().expect("engine lock");
                    // Taken under the same read lock as the serve — commits
                    // write-lock the engine, so this snapshot is exactly the
                    // head the stream executes over.
                    let snap = pinned.unwrap_or_else(|| engine.snapshot());
                    (snap, engine.serve_stream(&request))
                };
                match opened {
                    Ok(stream) => {
                        let epoch = stream.epoch().unwrap_or_else(|| snap.epoch());
                        let handle = self.fresh_handle();
                        self.cursors.insert(
                            handle,
                            Cursor {
                                stream,
                                snap,
                                exhausted: false,
                                pending: VecDeque::new(),
                            },
                        );
                        ServerFrame::CursorOpened {
                            cursor: handle,
                            epoch,
                            semantics,
                        }
                    }
                    Err(e) => error_frame(crate::errors::wire_code_for_serve(&e), &e),
                }
            }
            ClientFrame::Fetch { cursor, k } => self.fetch(cursor, k),
            ClientFrame::Count {
                query,
                semantics,
                snapshot,
            } => {
                let pinned = match self.resolve_pin(snapshot) {
                    Ok(pinned) => pinned,
                    Err(response) => return response,
                };
                let mut request = Request::new(to_query_ref(&query), semantics);
                if let Some(snap) = &pinned {
                    request = request.at(snap.clone());
                }
                let (epoch, counted) = {
                    let engine = shared.engine.read().expect("engine lock");
                    let epoch = pinned
                        .map(|snap| snap.epoch())
                        .unwrap_or_else(|| engine.snapshot().epoch());
                    (epoch, engine.count(&request))
                };
                match counted {
                    Ok(response) => ServerFrame::Counted {
                        count: response.count,
                        exists: response.exists,
                        epoch,
                    },
                    Err(e) => error_frame(crate::errors::wire_code_for_serve(&e), &e),
                }
            }
            ClientFrame::Exists {
                query,
                semantics,
                snapshot,
            } => {
                let pinned = match self.resolve_pin(snapshot) {
                    Ok(pinned) => pinned,
                    Err(response) => return response,
                };
                let mut request = Request::new(to_query_ref(&query), semantics);
                if let Some(snap) = &pinned {
                    request = request.at(snap.clone());
                }
                let (epoch, probed) = {
                    let engine = shared.engine.read().expect("engine lock");
                    let epoch = pinned
                        .map(|snap| snap.epoch())
                        .unwrap_or_else(|| engine.snapshot().epoch());
                    (epoch, engine.exists(&request))
                };
                match probed {
                    Ok(exists) => ServerFrame::Exists { exists, epoch },
                    Err(e) => error_frame(crate::errors::wire_code_for_serve(&e), &e),
                }
            }
            ClientFrame::CloseCursor { cursor } => {
                if self.cursors.remove(&cursor).is_some() {
                    ServerFrame::CursorClosed { cursor }
                } else {
                    ServerFrame::Error {
                        code: ErrorCode::UnknownCursor,
                        message: format!("no open cursor {cursor} on this connection"),
                    }
                }
            }
            ClientFrame::ReleaseSnapshot { snapshot } => {
                if self.snapshots.remove(&snapshot).is_some() {
                    ServerFrame::SnapshotReleased { snapshot }
                } else {
                    ServerFrame::Error {
                        code: ErrorCode::UnknownSnapshot,
                        message: format!("no pinned snapshot {snapshot} on this connection"),
                    }
                }
            }
            ClientFrame::Bye => {
                self.closing = Some(CloseReason::Bye);
                ServerFrame::Bye
            }
        }
    }

    /// One page off a cursor: `O(k)` enumeration work, no engine lock.
    ///
    /// Pages are bounded twice over: by `k` answers and by
    /// [`MAX_PAGE_BYTES`] of encoded payload — constant names are
    /// client-supplied, so `k` alone bounds nothing.  A byte-capped page
    /// ships short with `done: false` and parks the already-rendered rest
    /// in [`Cursor::pending`] for the next fetch; no page frame can ever
    /// approach [`MAX_FRAME_LEN`].
    fn fetch(&mut self, handle: u64, k: u64) -> ServerFrame {
        let Some(cursor) = self.cursors.get_mut(&handle) else {
            return ServerFrame::Error {
                code: ErrorCode::UnknownCursor,
                message: format!("no open cursor {handle} on this connection"),
            };
        };
        let k = (k as usize).clamp(1, MAX_PAGE);
        let mut answers: Vec<Vec<String>> = Vec::new();
        let mut bytes = 0usize;
        loop {
            // Serve rendered answers first: leftovers a previous page's
            // byte cap deferred, then whatever the pull below appended.
            while answers.len() < k {
                let Some(front) = cursor.pending.front() else {
                    break;
                };
                // +1 for the comma separating answers in the array.
                let len = answer_wire_len(front) + 1;
                if answers.is_empty() && len > MAX_SINGLE_ANSWER_BYTES {
                    // Undeliverable even alone.  Leave it queued so every
                    // retry fails identically; the client's move is to
                    // close the cursor.
                    return ServerFrame::Error {
                        code: ErrorCode::Internal,
                        message: format!(
                            "answer of {len} encoded bytes exceeds the \
                             {MAX_FRAME_LEN}-byte frame cap; close the cursor"
                        ),
                    };
                }
                if !answers.is_empty() && bytes + len > MAX_PAGE_BYTES {
                    // Page full by bytes; the rest stays queued.
                    return ServerFrame::Page {
                        cursor: handle,
                        answers,
                        done: false,
                    };
                }
                bytes += len;
                answers.push(cursor.pending.pop_front().expect("front checked"));
            }
            if answers.len() >= k || bytes >= MAX_PAGE_BYTES || cursor.exhausted {
                break;
            }
            // Pull the next chunk off the stream and render it.
            let want = (k - answers.len()).min(PULL_CHUNK);
            self.scratch.clear();
            let produced = cursor.stream.next_batch(&mut self.scratch, want);
            if produced < want {
                cursor.exhausted = true;
            }
            let db = cursor.snap.database();
            cursor
                .pending
                .extend(self.scratch.iter().map(|answer| render_answer(answer, db)));
            if produced == 0 {
                break;
            }
        }
        ServerFrame::Page {
            cursor: handle,
            answers,
            done: cursor.exhausted && cursor.pending.is_empty(),
        }
    }

    /// Looks up an explicitly pinned snapshot, or `None` for a head request
    /// (head requests resolve their data inside the engine, where the warm
    /// instance fast path lives).
    fn resolve_pin(&self, handle: Option<u64>) -> Result<Option<Snapshot>, ServerFrame> {
        match handle {
            None => Ok(None),
            Some(handle) => self
                .snapshots
                .get(&handle)
                .cloned()
                .map(Some)
                .ok_or_else(|| ServerFrame::Error {
                    code: ErrorCode::UnknownSnapshot,
                    message: format!("no pinned snapshot {handle} on this connection"),
                }),
        }
    }

    fn fresh_handle(&mut self) -> u64 {
        let handle = self.next_handle;
        self.next_handle += 1;
        handle
    }

    fn send(&mut self, frame: &ServerFrame) {
        let bytes = frame.encode();
        // Last-resort guard: nothing above should produce a frame past the
        // cap (pages are byte-capped, messages clipped), but an oversized
        // response must never reach the wire — the peer would read its
        // length prefix as stream corruption.  Degrade to a bounded error.
        if bytes.len() > 4 + MAX_FRAME_LEN {
            let fallback = ServerFrame::Error {
                code: ErrorCode::Internal,
                message: format!(
                    "response frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                    bytes.len() - 4
                ),
            };
            self.outbuf.extend_from_slice(&fallback.encode());
            return;
        }
        self.outbuf.extend_from_slice(&bytes);
    }

    /// The encoded bytes still to be written to the socket.
    pub fn pending_out(&self) -> &[u8] {
        &self.outbuf[self.out_start..]
    }

    /// Records that the socket accepted `n` bytes of [`Connection::pending_out`].
    pub fn advance_out(&mut self, n: usize) {
        self.out_start += n;
        debug_assert!(self.out_start <= self.outbuf.len());
        if self.out_start == self.outbuf.len() {
            self.outbuf.clear();
            self.out_start = 0;
        } else if self.out_start >= 64 * 1024 {
            self.outbuf.drain(..self.out_start);
            self.out_start = 0;
        }
    }

    /// Whether the connection has asked to close (after its buffer drains).
    pub fn closing(&self) -> Option<CloseReason> {
        self.closing
    }

    /// Bytes received off the socket but not yet consumed as frames —
    /// non-zero when backpressure paused the pump mid-burst.
    pub fn buffered_in(&self) -> usize {
        self.decoder.pending()
    }

    /// Open cursors on this connection (for tests and introspection).
    pub fn cursor_count(&self) -> usize {
        self.cursors.len()
    }

    /// Pinned snapshots on this connection (for tests and introspection).
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }
}

impl Default for Connection {
    fn default() -> Self {
        Connection::new()
    }
}

fn to_query_ref(target: &crate::protocol::QueryTarget) -> omq_serve::QueryRef {
    match target {
        crate::protocol::QueryTarget::Id(id) => {
            omq_serve::QueryRef::Id(QueryId::from_index(*id as usize))
        }
        crate::protocol::QueryTarget::Name(name) => omq_serve::QueryRef::Name(name.clone()),
    }
}

fn error_frame(code: ErrorCode, e: &dyn std::fmt::Display) -> ServerFrame {
    ServerFrame::Error {
        code,
        message: clip(e.to_string()),
    }
}

/// Bounds an error message at [`MAX_ERROR_MESSAGE_BYTES`] (messages echo
/// client-supplied text, so the error frame itself must stay small).
fn clip(message: String) -> String {
    if message.len() <= MAX_ERROR_MESSAGE_BYTES {
        return message;
    }
    let mut end = MAX_ERROR_MESSAGE_BYTES;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}… [truncated]", &message[..end])
}

fn register(name: &str, ontology: &str, query: &str, shared: &Shared) -> ServerFrame {
    let ontology = match omq_chase::Ontology::parse(ontology) {
        Ok(o) => o,
        Err(e) => return error_frame(ErrorCode::for_chase(&e), &e),
    };
    let cq = match omq_cq::ConjunctiveQuery::parse(query) {
        Ok(q) => q,
        Err(e) => return error_frame(ErrorCode::for_cq(&e), &e),
    };
    let omq = match omq_chase::OntologyMediatedQuery::new(ontology, cq) {
        Ok(omq) => omq,
        Err(e) => return error_frame(ErrorCode::for_chase(&e), &e),
    };
    let mut engine = shared.engine.write().expect("engine lock");
    match engine.register_query(name, &omq) {
        Ok(id) => ServerFrame::Registered {
            id: id.index() as u64,
            name: name.to_owned(),
        },
        Err(e) => error_frame(crate::errors::wire_code_for_serve(&e), &e),
    }
}

fn commit(ops: Vec<TxnOp>, shared: &Shared) -> ServerFrame {
    let mut txn = Txn::new();
    for op in ops {
        txn = match op {
            TxnOp::Insert { relation, tuple } => txn.insert(&relation, tuple),
            TxnOp::AddRelation { relation, arity } => txn.add_relation(&relation, arity),
        };
    }
    let mut engine = shared.engine.write().expect("engine lock");
    match engine.register_data(txn) {
        Ok(receipt) => ServerFrame::Committed {
            epoch: receipt.epoch,
            new_facts: receipt.new_facts as u64,
            duplicate_facts: receipt.duplicate_facts as u64,
        },
        Err(e) => error_frame(crate::errors::wire_code_for_serve(&e), &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Semantics;

    fn shared() -> Shared {
        Shared {
            engine: RwLock::new(ServingEngine::new(1)),
        }
    }

    fn drain(conn: &mut Connection) -> Vec<ServerFrame> {
        let mut decoder = FrameDecoder::new();
        decoder.feed(conn.pending_out());
        let n = conn.pending_out().len();
        conn.advance_out(n);
        let mut frames = Vec::new();
        while let Some(payload) = decoder.next_frame().unwrap() {
            frames.push(ServerFrame::decode(&payload).unwrap());
        }
        frames
    }

    #[test]
    fn full_session_over_the_state_machine_alone() {
        let shared = shared();
        let mut conn = Connection::new();
        let frames = [
            ClientFrame::Register {
                name: "q".into(),
                ontology: "Researcher(x) -> exists y. HasOffice(x, y)".into(),
                query: "q(x, y) :- HasOffice(x, y)".into(),
            },
            ClientFrame::Commit {
                ops: vec![TxnOp::Insert {
                    relation: "Researcher".into(),
                    tuple: vec!["ada".into()],
                }],
            },
            ClientFrame::OpenCursor {
                query: crate::protocol::QueryTarget::Name("q".into()),
                semantics: Semantics::MinimalPartial,
                snapshot: None,
                offset: 0,
                limit: None,
            },
        ];
        for frame in &frames {
            conn.on_bytes(&frame.encode(), &shared);
        }
        let responses = drain(&mut conn);
        assert!(matches!(
            responses[0],
            ServerFrame::Registered { id: 0, .. }
        ));
        // Registration merges the query's schema into the store (one epoch),
        // the commit is the next one.
        assert!(matches!(
            responses[1],
            ServerFrame::Committed {
                epoch: 2,
                new_facts: 1,
                ..
            }
        ));
        let ServerFrame::CursorOpened {
            cursor, epoch: 2, ..
        } = responses[2]
        else {
            panic!("expected opened cursor, got {:?}", responses[2]);
        };
        conn.on_bytes(&ClientFrame::Fetch { cursor, k: 10 }.encode(), &shared);
        let responses = drain(&mut conn);
        let ServerFrame::Page { answers, done, .. } = &responses[0] else {
            panic!("expected page, got {:?}", responses[0]);
        };
        assert_eq!(answers, &vec![vec!["ada".to_owned(), "*".to_owned()]]);
        assert!(done);
        conn.on_bytes(&ClientFrame::CloseCursor { cursor }.encode(), &shared);
        assert!(matches!(
            drain(&mut conn)[0],
            ServerFrame::CursorClosed { .. }
        ));
        assert_eq!(conn.cursor_count(), 0);
    }

    #[test]
    fn malformed_payload_answers_an_error_and_keeps_the_connection() {
        let shared = shared();
        let mut conn = Connection::new();
        conn.on_bytes(&crate::protocol::frame_payload(b"{ not json"), &shared);
        conn.on_bytes(&ClientFrame::Pin.encode(), &shared);
        let responses = drain(&mut conn);
        assert!(matches!(
            responses[0],
            ServerFrame::Error {
                code: ErrorCode::MalformedFrame,
                ..
            }
        ));
        // The next frame on the same connection still works.
        assert!(matches!(responses[1], ServerFrame::Pinned { .. }));
        assert!(conn.closing().is_none());
    }

    #[test]
    fn unknown_handles_are_client_errors() {
        let shared = shared();
        let mut conn = Connection::new();
        conn.on_bytes(&ClientFrame::Fetch { cursor: 99, k: 1 }.encode(), &shared);
        conn.on_bytes(
            &ClientFrame::OpenCursor {
                query: crate::protocol::QueryTarget::Name("nope".into()),
                semantics: Semantics::Complete,
                snapshot: Some(42),
                offset: 0,
                limit: None,
            }
            .encode(),
            &shared,
        );
        let responses = drain(&mut conn);
        assert!(matches!(
            responses[0],
            ServerFrame::Error {
                code: ErrorCode::UnknownCursor,
                ..
            }
        ));
        assert!(matches!(
            responses[1],
            ServerFrame::Error {
                code: ErrorCode::UnknownSnapshot,
                ..
            }
        ));
    }

    #[test]
    fn oversized_prefix_closes_after_reporting() {
        let shared = shared();
        let mut conn = Connection::new();
        conn.on_bytes(&(u32::MAX).to_be_bytes(), &shared);
        assert_eq!(conn.closing(), Some(CloseReason::Fatal));
        let responses = drain(&mut conn);
        assert!(matches!(
            responses[0],
            ServerFrame::Error {
                code: ErrorCode::FrameTooLarge,
                ..
            }
        ));
    }

    /// Pages are capped by encoded bytes, not just `k`: large constant
    /// names split one fetch into several short pages, `done` stays the
    /// end-of-stream signal, and no page frame approaches the frame cap.
    #[test]
    fn pages_split_under_the_byte_cap() {
        let shared = shared();
        let mut conn = Connection::new();
        // 8 facts with ~300 KiB constants ≈ 2.4 MiB rendered — k = 100
        // must split into ≥ 3 pages under the 1 MiB byte cap.
        let big = |i: usize| format!("{}{i}", "x".repeat(300 * 1024));
        let frames = [
            ClientFrame::Register {
                name: "q".into(),
                ontology: "Researcher(x) -> exists y. HasOffice(x, y)".into(),
                query: "q(x) :- Researcher(x)".into(),
            },
            ClientFrame::Commit {
                ops: (0..8)
                    .map(|i| TxnOp::Insert {
                        relation: "Researcher".into(),
                        tuple: vec![big(i)],
                    })
                    .collect(),
            },
            ClientFrame::OpenCursor {
                query: crate::protocol::QueryTarget::Name("q".into()),
                semantics: Semantics::Complete,
                snapshot: None,
                offset: 0,
                limit: None,
            },
        ];
        for frame in &frames {
            conn.on_bytes(&frame.encode(), &shared);
        }
        let responses = drain(&mut conn);
        let ServerFrame::CursorOpened { cursor, .. } = responses[2] else {
            panic!("expected opened cursor, got {:?}", responses[2]);
        };
        let mut pages = 0usize;
        let mut got = Vec::new();
        conn.on_bytes(&ClientFrame::Fetch { cursor, k: 100 }.encode(), &shared);
        loop {
            let responses = drain(&mut conn);
            let ServerFrame::Page { answers, done, .. } = &responses[0] else {
                panic!("expected page, got {:?}", responses[0]);
            };
            assert!(
                !answers.is_empty(),
                "every page before exhaustion makes progress"
            );
            let encoded: usize = answers.iter().map(|a| answer_wire_len(a) + 1).sum();
            assert!(encoded <= MAX_PAGE_BYTES + 1, "page within the byte cap");
            got.extend(answers.clone());
            pages += 1;
            assert!(pages < 32, "no livelock");
            if *done {
                break;
            }
            conn.on_bytes(&ClientFrame::Fetch { cursor, k: 100 }.encode(), &shared);
        }
        assert!(
            pages >= 3,
            "the byte cap split the fetch, got {pages} pages"
        );
        assert_eq!(got.len(), 8, "no answer lost or duplicated across pages");
    }

    /// A pipelined burst stops producing responses at the high-water mark;
    /// the decoder retains the rest and `pump` resumes after draining.
    #[test]
    fn pipelined_bursts_stop_at_high_water_and_resume() {
        let shared = shared();
        const N: usize = 16_384;
        // The burst pins N snapshots on purpose; lift the quota so what is
        // under test stays the backpressure, not the quota.
        let mut conn = Connection::with_quotas(ConnectionQuotas {
            max_snapshots: N,
            ..ConnectionQuotas::default()
        });
        let mut burst = Vec::new();
        for _ in 0..N {
            burst.extend_from_slice(&ClientFrame::Pin.encode());
        }
        conn.on_bytes(&burst, &shared);
        assert!(
            conn.pending_out().len() >= HIGH_WATER,
            "the pump ran up to the mark"
        );
        assert!(
            conn.pending_out().len() < HIGH_WATER + 128,
            "…but overshot by at most one response frame: {}",
            conn.pending_out().len()
        );
        assert!(conn.buffered_in() > 0, "unconsumed frames were retained");

        // Drain-and-pump sweeps serve the whole burst without new reads.
        let mut decoder = FrameDecoder::new();
        let mut responses = 0usize;
        loop {
            decoder.feed(conn.pending_out());
            let n = conn.pending_out().len();
            conn.advance_out(n);
            while let Some(payload) = decoder.next_frame().unwrap() {
                assert!(matches!(
                    ServerFrame::decode(&payload).unwrap(),
                    ServerFrame::Pinned { .. }
                ));
                responses += 1;
            }
            if !conn.pump(&shared) && conn.pending_out().is_empty() {
                break;
            }
        }
        assert_eq!(responses, N);
        assert_eq!(conn.buffered_in(), 0);
        assert_eq!(conn.snapshot_count(), N);
    }

    /// The last-resort `send` guard: an encoded frame past the cap is
    /// replaced by a bounded error frame instead of corrupting the stream.
    #[test]
    fn oversized_outgoing_frames_degrade_to_a_bounded_error() {
        let mut conn = Connection::new();
        conn.send(&ServerFrame::Error {
            code: ErrorCode::Internal,
            message: "x".repeat(crate::protocol::MAX_FRAME_LEN + 1),
        });
        let responses = drain(&mut conn);
        match &responses[0] {
            ServerFrame::Error {
                code: ErrorCode::Internal,
                message,
            } => {
                assert!(message.contains("exceeds"), "{message}");
                assert!(message.len() < 256);
            }
            other => panic!("expected bounded error frame, got {other:?}"),
        }
    }

    /// Exceeding a handle quota is a 429 that leaves the connection up;
    /// releasing any handle makes room and the retry succeeds.
    #[test]
    fn quota_exceeded_is_recoverable_by_releasing_a_handle() {
        let shared = shared();
        let mut conn = Connection::with_quotas(ConnectionQuotas {
            max_cursors: 1,
            max_snapshots: 2,
        });
        conn.on_bytes(
            &ClientFrame::Register {
                name: "q".into(),
                ontology: "Researcher(x) -> exists y. HasOffice(x, y)".into(),
                query: "q(x) :- Researcher(x)".into(),
            }
            .encode(),
            &shared,
        );
        let open = ClientFrame::OpenCursor {
            query: crate::protocol::QueryTarget::Name("q".into()),
            semantics: Semantics::Complete,
            snapshot: None,
            offset: 0,
            limit: None,
        };
        // Two pins fit, the third is over quota.
        for frame in [&ClientFrame::Pin, &ClientFrame::Pin, &ClientFrame::Pin] {
            conn.on_bytes(&frame.encode(), &shared);
        }
        // One cursor fits, the second is over quota.
        conn.on_bytes(&open.encode(), &shared);
        conn.on_bytes(&open.encode(), &shared);
        let responses = drain(&mut conn);
        assert!(matches!(
            responses[1],
            ServerFrame::Pinned { snapshot: 1, .. }
        ));
        assert!(matches!(responses[2], ServerFrame::Pinned { .. }));
        let ServerFrame::Error { code, message } = &responses[3] else {
            panic!("expected quota error, got {:?}", responses[3]);
        };
        assert_eq!(*code, ErrorCode::QuotaExceeded);
        assert!(code.is_client_error(), "quota faults are the client's");
        assert!(message.contains("snapshots"), "{message}");
        assert!(matches!(responses[4], ServerFrame::CursorOpened { .. }));
        assert!(matches!(
            responses[5],
            ServerFrame::Error {
                code: ErrorCode::QuotaExceeded,
                ..
            }
        ));
        assert!(conn.closing().is_none(), "connection survives the 429s");
        assert_eq!(conn.snapshot_count(), 2);
        assert_eq!(conn.cursor_count(), 1);

        // Release one snapshot; the retry now fits.
        conn.on_bytes(
            &ClientFrame::ReleaseSnapshot { snapshot: 1 }.encode(),
            &shared,
        );
        conn.on_bytes(&ClientFrame::Pin.encode(), &shared);
        let responses = drain(&mut conn);
        assert!(matches!(responses[0], ServerFrame::SnapshotReleased { .. }));
        assert!(matches!(responses[1], ServerFrame::Pinned { .. }));
        assert_eq!(conn.snapshot_count(), 2);
    }

    /// Error messages echoing client-supplied text are clipped so the
    /// error frame itself stays far below the frame cap.
    #[test]
    fn error_messages_echoing_client_text_are_clipped() {
        let shared = shared();
        let mut conn = Connection::new();
        let tag = "t".repeat(2 * 1024 * 1024);
        let payload = format!("{{\"t\":\"{tag}\"}}");
        conn.on_bytes(&crate::protocol::frame_payload(payload.as_bytes()), &shared);
        let responses = drain(&mut conn);
        let ServerFrame::Error {
            code: ErrorCode::MalformedFrame,
            message,
        } = &responses[0]
        else {
            panic!("expected malformed-frame error, got {:?}", responses[0]);
        };
        assert!(message.len() < 2048, "clipped to {}", message.len());
        assert!(message.ends_with("[truncated]"));
        assert!(conn.closing().is_none(), "still a recoverable error");
    }
}
