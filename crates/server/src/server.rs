//! The TCP event loop: accept thread plus worker poll loops.
//!
//! The shape is thread-per-core-style over nonblocking `std::net` sockets
//! (the workspace is hermetic — no async runtime, no epoll crate): an
//! acceptor thread hands fresh connections round-robin to `N` workers, and
//! each worker owns its connections outright, sweeping them in a poll loop
//! — read what's there, run the state machine, flush what fits.  No
//! connection ever migrates between workers, so there is no cross-worker
//! synchronisation beyond the shared engine lock and the handoff inbox.
//!
//! **Backpressure** is enforced at both ends of the state machine: a
//! connection whose write buffer exceeds [`HIGH_WATER`] is not *read*
//! again until the buffer drains below it, and the frame pump itself
//! stops consuming already-buffered pipelined frames at the same mark
//! (the decoder retains them; the sweep resumes the pump after each
//! drain).  A client that stops draining pages — or pipelines thousands
//! of fetches in one burst — therefore stops the server from producing
//! more of them: the `O(k)`-per-fetch discipline extends to memory, not
//! just time.
//!
//! The poll sweep sleeps `IDLE_SLEEP` (500 µs) when a pass makes no progress;
//! latency under load is bounded by the sweep, not the sleep, and the
//! sleep keeps idle workers off the CPU.

pub use crate::conn::HIGH_WATER;
use crate::conn::{CloseReason, Connection, ConnectionQuotas, Shared};
use omq_serve::ServingEngine;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between poll sweeps.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// How long a fatally-errored connection may keep draining its final
/// error frame before the worker gives up on a peer that is not reading.
const FATAL_DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Read chunk size per sweep pass.
const READ_CHUNK: usize = 64 * 1024;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port; see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Worker threads sweeping connections (≥ 1).
    pub workers: usize,
    /// Per-connection resource quotas (open cursors, pinned snapshots).
    pub quotas: ConnectionQuotas,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("loopback literal"),
            workers: 2,
            quotas: ConnectionQuotas::default(),
        }
    }
}

/// One worker-owned connection: the socket plus its state machine.
struct Slot {
    stream: TcpStream,
    conn: Connection,
    /// Set on the first sweep that finds a fatal close still waiting on
    /// unflushed bytes; the connection closes at the deadline even if the
    /// peer never reads its final error frame.
    fatal_deadline: Option<Instant>,
}

/// A running OMQ server: the acceptor, its workers, and the shared engine.
///
/// Dropping the server shuts it down (see [`Server::shutdown`]); clients
/// connected at that point see the socket close.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address and starts the acceptor and worker
    /// threads over `engine`.
    pub fn start(engine: ServingEngine, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);

        // Handoff inboxes: the acceptor pushes, each worker drains its own.
        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..workers)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();

        let mut threads = Vec::with_capacity(workers + 1);
        for inbox in &inboxes {
            let inbox = Arc::clone(inbox);
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let quotas = config.quotas;
            threads.push(std::thread::spawn(move || {
                worker_loop(inbox, shared, stop, quotas)
            }));
        }
        {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, inboxes, stop)
            }));
        }
        Ok(Server {
            shared,
            addr,
            stop,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine, for in-process introspection alongside the wire
    /// (e.g. comparing a wire-paged cursor against an in-process drain at
    /// the same epoch).  Lock discipline is the caller's: holding the write
    /// lock stalls every connection's commits and cursor opens.
    pub fn shared_engine(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Stops the acceptor and workers and joins them.  In-flight
    /// connections are closed; the engine (and its store) survives inside
    /// the returned `Arc` if the caller kept one.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor promptly: it polls with the same idle sleep
        // as the workers, so joining is bounded by one sweep.
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    stop: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // peer already gone
                }
                inboxes[next].lock().expect("inbox lock").push(stream);
                next = (next + 1) % inboxes.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_SLEEP);
            }
            Err(_) => std::thread::sleep(IDLE_SLEEP),
        }
    }
}

fn worker_loop(
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    quotas: ConnectionQuotas,
) {
    let mut slots: Vec<Slot> = Vec::new();
    let mut read_buf = vec![0u8; READ_CHUNK];
    while !stop.load(Ordering::SeqCst) {
        // Adopt newly accepted connections.
        {
            let mut inbox = inbox.lock().expect("inbox lock");
            for stream in inbox.drain(..) {
                slots.push(Slot {
                    stream,
                    conn: Connection::with_quotas(quotas),
                    fatal_deadline: None,
                });
            }
        }
        let mut progressed = false;
        let mut i = 0;
        while i < slots.len() {
            // Contain panics per connection: a request that blows up takes
            // down its own slot, not the worker — a dead worker would keep
            // receiving fresh connections from the acceptor's round-robin
            // and leave them hanging forever.
            let slot = &mut slots[i];
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sweep_slot(slot, &shared, &mut read_buf)
            }))
            .unwrap_or(SweepOutcome::Close);
            match outcome {
                SweepOutcome::Progress => {
                    progressed = true;
                    i += 1;
                }
                SweepOutcome::Idle => i += 1,
                SweepOutcome::Close => {
                    slots.swap_remove(i);
                    progressed = true;
                }
            }
        }
        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

enum SweepOutcome {
    Progress,
    Idle,
    Close,
}

/// One pass over one connection: flush, resume any frames backpressure
/// parked, then (unless backpressured or closing) read + process, then
/// flush what that produced.
fn sweep_slot(slot: &mut Slot, shared: &Shared, read_buf: &mut [u8]) -> SweepOutcome {
    let mut progressed = false;

    if !flush(slot, &mut progressed) {
        return SweepOutcome::Close;
    }

    // Resume frames the decoder retained under backpressure: the pump
    // stops once the write buffer passes HIGH_WATER, so the drain above
    // may have unblocked it.
    if slot.conn.closing().is_none() && slot.conn.pump(shared) {
        progressed = true;
        if !flush(slot, &mut progressed) {
            return SweepOutcome::Close;
        }
    }

    if let Some(reason) = slot.conn.closing() {
        if slot.conn.pending_out().is_empty() {
            let _ = slot.stream.flush();
            return SweepOutcome::Close;
        }
        if reason == CloseReason::Fatal {
            // The final error frame gets a short bounded grace to drain —
            // the client deserves to see *why* it is being hung up on —
            // but a corrupt stream does not wait on a peer that never
            // reads.
            let now = Instant::now();
            let deadline = *slot.fatal_deadline.get_or_insert(now + FATAL_DRAIN_GRACE);
            if now >= deadline {
                return SweepOutcome::Close;
            }
        }
        return if progressed {
            SweepOutcome::Progress
        } else {
            SweepOutcome::Idle
        };
    }

    // Backpressure: a peer that is not draining its pages is not read.
    if slot.conn.pending_out().len() < HIGH_WATER {
        match slot.stream.read(read_buf) {
            Ok(0) => return SweepOutcome::Close, // peer hung up
            Ok(n) => {
                slot.conn.on_bytes(&read_buf[..n], shared);
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return SweepOutcome::Close,
        }
    }

    if !flush(slot, &mut progressed) {
        return SweepOutcome::Close;
    }
    if progressed {
        SweepOutcome::Progress
    } else {
        SweepOutcome::Idle
    }
}

/// Writes as much pending output as the socket accepts.  Returns `false`
/// iff the connection is dead.
fn flush(slot: &mut Slot, progressed: &mut bool) -> bool {
    while !slot.conn.pending_out().is_empty() {
        match slot.stream.write(slot.conn.pending_out()) {
            Ok(0) => return false,
            Ok(n) => {
                slot.conn.advance_out(n);
                *progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}
