//! # omq-server — a network front end over the OMQ serving engine
//!
//! The paper's guarantee — constant-delay enumeration after linear
//! preprocessing (Lutz & Przybyłko, PODS 2022) — reaches remote callers
//! only if the wire preserves the cursor discipline the in-process layers
//! built: answers are *pulled*, a page of `k` answers costs `O(k)` after
//! preprocessing, and a cursor's pages replay one pinned epoch no matter
//! what commits concurrently.  This crate is that wire:
//!
//! - [`protocol`] — the server frame grammar over the shared `omq-wire`
//!   codec (length-prefixed JSON frames, hand-rolled on [`json`]; the
//!   workspace is hermetic, no crates.io), incremental reassembly under
//!   torn reads, wire [`ErrorCode`]s partitioned into client faults (4xx)
//!   and server failures (5xx);
//! - [`conn`] — per-connection state machines holding connection-scoped
//!   snapshot and cursor handles, socket-free and unit-testable;
//! - [`server`] — the accept/event loop over nonblocking `std::net`
//!   sockets: one acceptor, `N` workers that own their connections,
//!   write-buffer backpressure ([`HIGH_WATER`]) at both the read *and*
//!   the frame pump so slow readers and pipelined bursts stall their own
//!   producers and nothing else, page frames byte-capped at
//!   [`MAX_PAGE_BYTES`] so no response can outgrow the frame limit;
//! - [`client`] — a small blocking client used by the examples, the
//!   end-to-end tests and the E19 load harness in `omq-bench`.
//!
//! The serving semantics on the wire are exactly the in-process ones: a
//! cursor maps onto `ServingEngine::serve_stream` and its pages onto
//! `AnswerStream::next_batch`; `count`/`exists` map onto the
//! non-materialising aggregate paths; commits map onto transactional
//! `register_data`.  The end-to-end tests check the strongest form of
//! that claim — the paged answer sequence of a pinned wire cursor is
//! byte-identical to an in-process drain at the pinned epoch, under a
//! concurrent commit writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod errors;

pub mod client;
pub mod conn;
pub mod protocol;
pub mod server;

pub use omq_wire::json;

pub use client::{Client, ClientError, WireCommit, WireCount, WireCursor, WirePage, WireSnapshot};
pub use conn::{CloseReason, Connection, ConnectionQuotas, Shared};
pub use errors::wire_code_for_serve;
pub use protocol::{
    answer_wire_len, render_answer, ClientFrame, ErrorCode, FrameDecoder, QueryTarget, ServerFrame,
    TxnOp, MAX_FRAME_LEN, MAX_PAGE, MAX_PAGE_BYTES, MAX_WIRE_INT,
};
pub use server::{Server, ServerConfig, HIGH_WATER};

#[cfg(test)]
mod assertions {
    /// The shared state and the running server handle must be usable from
    /// multiple threads (workers, plus whoever holds `shared_engine`).
    #[test]
    fn shared_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Shared>();
        assert_send_sync::<super::Server>();
    }
}
