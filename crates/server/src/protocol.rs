//! The `omq` wire protocol: length-prefixed JSON frames.
//!
//! Every frame on the wire is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 JSON — one object per frame, tagged by its `"t"`
//! member.  The framing substrate (encoder, [`FrameDecoder`] reassembly
//! under torn reads, the [`MAX_FRAME_LEN`] cap, [`ErrorCode`]s and the
//! payload field accessors) lives in `omq-wire`, shared with the cluster
//! protocol; this module defines the *server* frame grammar on top of it:
//! [`ClientFrame`] is what clients send, [`ServerFrame`] what the server
//! answers.
//!
//! # Grammar
//!
//! ```text
//! frame        := u32_be(len) payload            len = |payload| ≤ MAX_FRAME_LEN
//! payload      := JSON object with member "t"
//!
//! client  "t"  : register | commit | pin | open | fetch | count | exists
//!              | close_cursor | release | bye
//! server  "t"  : registered | committed | pinned | opened | page | counted
//!              | exists | cursor_closed | released | bye | error
//! ```
//!
//! Answers travel as arrays of strings: constants by their interned name,
//! the single wildcard as `"*"`, multi-wildcards as `"*1"`, `"*2"`, … — the
//! rendering is [`render_answer`], shared by the server, the cluster, the
//! load harness and the end-to-end tests so "byte-identical to an
//! in-process drain" is checkable by string equality.
//!
//! # Error discipline
//!
//! A syntactically intact frame whose payload is rejected (bad JSON, missing
//! field, unknown tag) is answered with an [`ServerFrame::Error`] carrying
//! [`ErrorCode::MalformedFrame`] — the connection stays up, because the
//! length prefix keeps the stream in sync.  Only a corrupt length prefix
//! (declared length above [`MAX_FRAME_LEN`]) is fatal: past that there is no
//! way to find the next frame boundary, so the connection is closed.  Error
//! codes below 500 are the client's fault ([`ErrorCode::is_client_error`]);
//! 5xx codes are server-side failures.

use crate::json::Json;
use omq_data::Semantics;
use omq_wire::{
    bool_field, decode_object, field, opt_u64_field, semantics_field, semantics_name, str_field,
    u64_field, violation,
};

// The wire substrate, re-exported so `crate::protocol::{frame_payload, …}`
// keeps working for the connection layer and downstream users.
pub use omq_wire::{
    answer_wire_len, frame_payload, render_answer, ErrorCode, FrameDecoder, FrameTooLarge,
    ProtocolViolation, MAX_FRAME_LEN, MAX_WIRE_INT,
};

/// Upper bound on the `k` of one fetch — pagination is the backpressure
/// mechanism, so a single page is kept bounded.
pub const MAX_PAGE: usize = 65_536;

/// Soft cap on the encoded bytes of rendered answers inside one `page`
/// frame (1 MiB).  Constant names are client-supplied with no length
/// bound, so `k` alone does not bound a page: a fetch stops adding
/// answers once the next one would push the page past this cap and
/// defers the rest to the following fetch.  Page frames therefore stay
/// far below [`MAX_FRAME_LEN`] by construction, and `done` — not page
/// length — is the end-of-stream signal.
pub const MAX_PAGE_BYTES: usize = 1024 * 1024;

/// One transaction operation inside a [`ClientFrame::Commit`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Insert one fact: relation name plus constant names.
    Insert {
        /// Relation symbol.
        relation: String,
        /// Constant names, one per position.
        tuple: Vec<String>,
    },
    /// Add a relation symbol to the store schema.
    AddRelation {
        /// Relation symbol.
        relation: String,
        /// Its arity.
        arity: usize,
    },
}

/// Names a registered query inside a request: by the id returned at
/// registration, or by registration name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTarget {
    /// A query id from a previous `registered` response.
    Id(u64),
    /// The name the query was registered under.
    Name(String),
}

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Parse + compile an ontology-mediated query and add it to the server's
    /// catalogue.
    Register {
        /// Catalogue name for the query.
        name: String,
        /// Ontology text (TGDs, `omq_chase::Ontology::parse` syntax).
        ontology: String,
        /// Conjunctive-query text (`omq_cq::ConjunctiveQuery::parse` syntax).
        query: String,
    },
    /// Commit a transaction batch to the server's store.
    Commit {
        /// The operations, applied atomically (commit-or-rollback).
        ops: Vec<TxnOp>,
    },
    /// Pin the store head: later commits never change what the returned
    /// snapshot handle answers.
    Pin,
    /// Open an answer cursor.  The cursor pins its snapshot at open time —
    /// the store head, or a previously pinned handle — and every later page
    /// replays that one epoch.
    OpenCursor {
        /// Which query to enumerate.
        query: QueryTarget,
        /// Answer semantics.
        semantics: Semantics,
        /// A snapshot handle from a previous `pin` (`None` = pin the head
        /// at open time).
        snapshot: Option<u64>,
        /// Leading answers to skip before the first page.
        offset: u64,
        /// Total answers the cursor may yield (`None` = unbounded).
        limit: Option<u64>,
    },
    /// Pull the next page of at most `k` answers off a cursor — `O(k)` work
    /// server-side, mapped directly onto `AnswerStream::next_batch`.
    Fetch {
        /// Cursor handle from `opened`.
        cursor: u64,
        /// Page size (clamped to [`MAX_PAGE`]).
        k: u64,
    },
    /// Count the query's answers without materialising them.
    Count {
        /// Which query to count.
        query: QueryTarget,
        /// Answer semantics to count under.
        semantics: Semantics,
        /// Optional pinned snapshot handle (`None` = head).
        snapshot: Option<u64>,
    },
    /// Probe whether the query has any answer at all (cheaper than `count`).
    Exists {
        /// Which query to probe.
        query: QueryTarget,
        /// Answer semantics to probe under.
        semantics: Semantics,
        /// Optional pinned snapshot handle (`None` = head).
        snapshot: Option<u64>,
    },
    /// Release a cursor without draining it.
    CloseCursor {
        /// Cursor handle to drop.
        cursor: u64,
    },
    /// Release a pinned snapshot handle.
    ReleaseSnapshot {
        /// Snapshot handle to drop.
        snapshot: u64,
    },
    /// Graceful goodbye; the server answers [`ServerFrame::Bye`] and closes.
    Bye,
}

/// A frame sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Response to [`ClientFrame::Register`].
    Registered {
        /// Catalogue id of the new query.
        id: u64,
        /// The name it was registered under (echoed).
        name: String,
    },
    /// Response to [`ClientFrame::Commit`].
    Committed {
        /// Store epoch after the commit.
        epoch: u64,
        /// Facts that were new to the store.
        new_facts: u64,
        /// Staged facts that were already present.
        duplicate_facts: u64,
    },
    /// Response to [`ClientFrame::Pin`].
    Pinned {
        /// Connection-scoped snapshot handle.
        snapshot: u64,
        /// The epoch the snapshot is pinned at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::OpenCursor`].
    CursorOpened {
        /// Connection-scoped cursor handle.
        cursor: u64,
        /// The epoch the cursor is pinned at — every page of this cursor
        /// replays this epoch, no matter what commits in the meantime.
        epoch: u64,
        /// The cursor's answer semantics (echoed).
        semantics: Semantics,
    },
    /// Response to [`ClientFrame::Fetch`]: one page of answers.
    Page {
        /// The cursor the page came off (echoed).
        cursor: u64,
        /// Rendered answers, see [`render_answer`].
        answers: Vec<Vec<String>>,
        /// `true` iff the cursor is exhausted.  A page may come up short
        /// of `k` without being the last one — pages are capped by
        /// encoded bytes ([`MAX_PAGE_BYTES`]) as well as by `k` — so this
        /// flag, not page length, signals the end of the stream.
        done: bool,
    },
    /// Response to [`ClientFrame::Count`].
    Counted {
        /// Number of answers under the requested semantics.
        count: u64,
        /// `count > 0`.
        exists: bool,
        /// The epoch the aggregate was served at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::Exists`].
    Exists {
        /// Whether any answer exists.
        exists: bool,
        /// The epoch the probe was served at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::CloseCursor`].
    CursorClosed {
        /// The released handle (echoed).
        cursor: u64,
    },
    /// Response to [`ClientFrame::ReleaseSnapshot`].
    SnapshotReleased {
        /// The released handle (echoed).
        snapshot: u64,
    },
    /// Response to [`ClientFrame::Bye`]; the server closes after sending it.
    Bye,
    /// Any request that could not be served.  The connection stays open
    /// (framing is intact); the code tells the client whose fault it was.
    Error {
        /// What went wrong, machine-readable.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn query_target_json(query: &QueryTarget) -> Json {
    match query {
        QueryTarget::Id(id) => Json::uint(*id),
        QueryTarget::Name(name) => Json::str(name.clone()),
    }
}

fn query_field(obj: &Json) -> Result<QueryTarget, ProtocolViolation> {
    match field(obj, "query")? {
        Json::Str(name) => Ok(QueryTarget::Name(name.clone())),
        v => v
            .as_u64()
            .map(QueryTarget::Id)
            .ok_or_else(|| violation("field `query` must be a string or a non-negative integer")),
    }
}

impl ClientFrame {
    /// Serialises the frame payload (no length prefix).
    pub fn to_json(&self) -> Json {
        match self {
            ClientFrame::Register {
                name,
                ontology,
                query,
            } => Json::obj([
                ("t", Json::str("register")),
                ("name", Json::str(name.clone())),
                ("ontology", Json::str(ontology.clone())),
                ("query", Json::str(query.clone())),
            ]),
            ClientFrame::Commit { ops } => {
                let ops = ops
                    .iter()
                    .map(|op| match op {
                        TxnOp::Insert { relation, tuple } => Json::obj([
                            ("op", Json::str("insert")),
                            ("rel", Json::str(relation.clone())),
                            (
                                "tuple",
                                Json::Arr(tuple.iter().map(|c| Json::str(c.clone())).collect()),
                            ),
                        ]),
                        TxnOp::AddRelation { relation, arity } => Json::obj([
                            ("op", Json::str("add_relation")),
                            ("rel", Json::str(relation.clone())),
                            ("arity", Json::uint(*arity as u64)),
                        ]),
                    })
                    .collect();
                Json::obj([("t", Json::str("commit")), ("ops", Json::Arr(ops))])
            }
            ClientFrame::Pin => Json::obj([("t", Json::str("pin"))]),
            ClientFrame::OpenCursor {
                query,
                semantics,
                snapshot,
                offset,
                limit,
            } => {
                let mut members = vec![
                    ("t", Json::str("open")),
                    ("query", query_target_json(query)),
                    ("semantics", Json::str(semantics_name(*semantics))),
                    ("offset", Json::uint(*offset)),
                ];
                if let Some(s) = snapshot {
                    members.push(("snapshot", Json::uint(*s)));
                }
                if let Some(l) = limit {
                    members.push(("limit", Json::uint(*l)));
                }
                Json::obj(members)
            }
            ClientFrame::Fetch { cursor, k } => Json::obj([
                ("t", Json::str("fetch")),
                ("cursor", Json::uint(*cursor)),
                ("k", Json::uint(*k)),
            ]),
            ClientFrame::Count {
                query,
                semantics,
                snapshot,
            }
            | ClientFrame::Exists {
                query,
                semantics,
                snapshot,
            } => {
                let tag = if matches!(self, ClientFrame::Count { .. }) {
                    "count"
                } else {
                    "exists"
                };
                let mut members = vec![
                    ("t", Json::str(tag)),
                    ("query", query_target_json(query)),
                    ("semantics", Json::str(semantics_name(*semantics))),
                ];
                if let Some(s) = snapshot {
                    members.push(("snapshot", Json::uint(*s)));
                }
                Json::obj(members)
            }
            ClientFrame::CloseCursor { cursor } => Json::obj([
                ("t", Json::str("close_cursor")),
                ("cursor", Json::uint(*cursor)),
            ]),
            ClientFrame::ReleaseSnapshot { snapshot } => Json::obj([
                ("t", Json::str("release")),
                ("snapshot", Json::uint(*snapshot)),
            ]),
            ClientFrame::Bye => Json::obj([("t", Json::str("bye"))]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<ClientFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        let tag = str_field(&doc, "t")?;
        match tag.as_str() {
            "register" => Ok(ClientFrame::Register {
                name: str_field(&doc, "name")?,
                ontology: str_field(&doc, "ontology")?,
                query: str_field(&doc, "query")?,
            }),
            "commit" => {
                let ops = field(&doc, "ops")?
                    .as_arr()
                    .ok_or_else(|| violation("field `ops` must be an array"))?;
                let ops = ops
                    .iter()
                    .map(|op| {
                        let kind = str_field(op, "op")?;
                        match kind.as_str() {
                            "insert" => {
                                let tuple = field(op, "tuple")?
                                    .as_arr()
                                    .ok_or_else(|| violation("field `tuple` must be an array"))?
                                    .iter()
                                    .map(|c| {
                                        c.as_str().map(str::to_owned).ok_or_else(|| {
                                            violation("tuple entries must be strings")
                                        })
                                    })
                                    .collect::<Result<Vec<String>, _>>()?;
                                Ok(TxnOp::Insert {
                                    relation: str_field(op, "rel")?,
                                    tuple,
                                })
                            }
                            "add_relation" => Ok(TxnOp::AddRelation {
                                relation: str_field(op, "rel")?,
                                arity: u64_field(op, "arity")? as usize,
                            }),
                            other => Err(violation(format!("unknown txn op `{other}`"))),
                        }
                    })
                    .collect::<Result<Vec<TxnOp>, _>>()?;
                Ok(ClientFrame::Commit { ops })
            }
            "pin" => Ok(ClientFrame::Pin),
            "open" => Ok(ClientFrame::OpenCursor {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
                offset: opt_u64_field(&doc, "offset")?.unwrap_or(0),
                limit: opt_u64_field(&doc, "limit")?,
            }),
            "fetch" => Ok(ClientFrame::Fetch {
                cursor: u64_field(&doc, "cursor")?,
                k: u64_field(&doc, "k")?,
            }),
            "count" => Ok(ClientFrame::Count {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
            }),
            "exists" => Ok(ClientFrame::Exists {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
            }),
            "close_cursor" => Ok(ClientFrame::CloseCursor {
                cursor: u64_field(&doc, "cursor")?,
            }),
            "release" => Ok(ClientFrame::ReleaseSnapshot {
                snapshot: u64_field(&doc, "snapshot")?,
            }),
            "bye" => Ok(ClientFrame::Bye),
            other => Err(violation(format!("unknown request tag `{other}`"))),
        }
    }
}

impl ServerFrame {
    /// Serialises the frame payload (no length prefix).
    pub fn to_json(&self) -> Json {
        match self {
            ServerFrame::Registered { id, name } => Json::obj([
                ("t", Json::str("registered")),
                ("id", Json::uint(*id)),
                ("name", Json::str(name.clone())),
            ]),
            ServerFrame::Committed {
                epoch,
                new_facts,
                duplicate_facts,
            } => Json::obj([
                ("t", Json::str("committed")),
                ("epoch", Json::uint(*epoch)),
                ("new_facts", Json::uint(*new_facts)),
                ("duplicate_facts", Json::uint(*duplicate_facts)),
            ]),
            ServerFrame::Pinned { snapshot, epoch } => Json::obj([
                ("t", Json::str("pinned")),
                ("snapshot", Json::uint(*snapshot)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::CursorOpened {
                cursor,
                epoch,
                semantics,
            } => Json::obj([
                ("t", Json::str("opened")),
                ("cursor", Json::uint(*cursor)),
                ("epoch", Json::uint(*epoch)),
                ("semantics", Json::str(semantics_name(*semantics))),
            ]),
            ServerFrame::Page {
                cursor,
                answers,
                done,
            } => Json::obj([
                ("t", Json::str("page")),
                ("cursor", Json::uint(*cursor)),
                (
                    "answers",
                    Json::Arr(
                        answers
                            .iter()
                            .map(|a| Json::Arr(a.iter().map(|v| Json::str(v.clone())).collect()))
                            .collect(),
                    ),
                ),
                ("done", Json::Bool(*done)),
            ]),
            ServerFrame::Counted {
                count,
                exists,
                epoch,
            } => Json::obj([
                ("t", Json::str("counted")),
                ("count", Json::uint(*count)),
                ("exists", Json::Bool(*exists)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::Exists { exists, epoch } => Json::obj([
                ("t", Json::str("exists")),
                ("exists", Json::Bool(*exists)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::CursorClosed { cursor } => Json::obj([
                ("t", Json::str("cursor_closed")),
                ("cursor", Json::uint(*cursor)),
            ]),
            ServerFrame::SnapshotReleased { snapshot } => Json::obj([
                ("t", Json::str("released")),
                ("snapshot", Json::uint(*snapshot)),
            ]),
            ServerFrame::Bye => Json::obj([("t", Json::str("bye"))]),
            ServerFrame::Error { code, message } => Json::obj([
                ("t", Json::str("error")),
                ("code", Json::uint(code.as_u16() as u64)),
                ("message", Json::str(message.clone())),
            ]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<ServerFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        let tag = str_field(&doc, "t")?;
        match tag.as_str() {
            "registered" => Ok(ServerFrame::Registered {
                id: u64_field(&doc, "id")?,
                name: str_field(&doc, "name")?,
            }),
            "committed" => Ok(ServerFrame::Committed {
                epoch: u64_field(&doc, "epoch")?,
                new_facts: u64_field(&doc, "new_facts")?,
                duplicate_facts: u64_field(&doc, "duplicate_facts")?,
            }),
            "pinned" => Ok(ServerFrame::Pinned {
                snapshot: u64_field(&doc, "snapshot")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "opened" => Ok(ServerFrame::CursorOpened {
                cursor: u64_field(&doc, "cursor")?,
                epoch: u64_field(&doc, "epoch")?,
                semantics: semantics_field(&doc)?,
            }),
            "page" => {
                let answers = field(&doc, "answers")?
                    .as_arr()
                    .ok_or_else(|| violation("field `answers` must be an array"))?
                    .iter()
                    .map(|a| {
                        a.as_arr()
                            .ok_or_else(|| violation("answers must be arrays"))?
                            .iter()
                            .map(|v| {
                                v.as_str()
                                    .map(str::to_owned)
                                    .ok_or_else(|| violation("answer entries must be strings"))
                            })
                            .collect::<Result<Vec<String>, _>>()
                    })
                    .collect::<Result<Vec<Vec<String>>, _>>()?;
                Ok(ServerFrame::Page {
                    cursor: u64_field(&doc, "cursor")?,
                    answers,
                    done: bool_field(&doc, "done")?,
                })
            }
            "counted" => Ok(ServerFrame::Counted {
                count: u64_field(&doc, "count")?,
                exists: bool_field(&doc, "exists")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "exists" => Ok(ServerFrame::Exists {
                exists: bool_field(&doc, "exists")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "cursor_closed" => Ok(ServerFrame::CursorClosed {
                cursor: u64_field(&doc, "cursor")?,
            }),
            "released" => Ok(ServerFrame::SnapshotReleased {
                snapshot: u64_field(&doc, "snapshot")?,
            }),
            "bye" => Ok(ServerFrame::Bye),
            "error" => {
                let raw = u64_field(&doc, "code")?;
                let code = u16::try_from(raw)
                    .ok()
                    .and_then(ErrorCode::from_u16)
                    .ok_or_else(|| violation(format!("unknown error code {raw}")))?;
                Ok(ServerFrame::Error {
                    code,
                    message: str_field(&doc, "message")?,
                })
            }
            other => Err(violation(format!("unknown response tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The codec itself (torn reads, oversized prefixes, wire-length
    /// arithmetic) is tested in `omq-wire`; what remains here is the frame
    /// *grammar* — that it decodes through the shared codec.
    #[test]
    fn frames_decode_through_the_shared_codec() {
        let frames = [
            ClientFrame::Pin.encode(),
            ClientFrame::Fetch { cursor: 7, k: 32 }.encode(),
            ClientFrame::Bye.encode(),
        ];
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frames.concat());
        let mut got = Vec::new();
        while let Some(payload) = decoder.next_frame().unwrap() {
            got.push(ClientFrame::decode(&payload).unwrap());
        }
        assert_eq!(
            got,
            vec![
                ClientFrame::Pin,
                ClientFrame::Fetch { cursor: 7, k: 32 },
                ClientFrame::Bye
            ]
        );
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn malformed_payloads_report_but_do_not_panic() {
        for payload in [
            &b"not json"[..],
            b"[1,2,3]",
            b"{\"t\":\"nope\"}",
            b"{\"t\":\"fetch\",\"cursor\":\"x\",\"k\":1}",
            b"{\"t\":\"fetch\",\"k\":1}",
            b"{\"t\":\"open\",\"query\":true,\"semantics\":\"complete\"}",
            b"{\"t\":\"open\",\"query\":\"q\",\"semantics\":\"certain\"}",
            b"{\"t\":\"commit\",\"ops\":[{\"op\":\"upsert\"}]}",
            b"\xff\xfe",
        ] {
            assert!(ClientFrame::decode(payload).is_err());
        }
        assert!(ServerFrame::decode(b"{\"t\":\"error\",\"code\":999,\"message\":\"\"}").is_err());
    }
}
