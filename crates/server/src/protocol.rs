//! The `omq` wire protocol: length-prefixed JSON frames.
//!
//! Every frame on the wire is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 JSON — one object per frame, tagged by its `"t"`
//! member.  The same framing runs in both directions; [`ClientFrame`] is
//! what clients send, [`ServerFrame`] what the server answers, and both
//! sides reassemble frames from arbitrary byte chunks with [`FrameDecoder`]
//! (TCP does not respect frame boundaries).
//!
//! # Grammar
//!
//! ```text
//! frame        := u32_be(len) payload            len = |payload| ≤ MAX_FRAME_LEN
//! payload      := JSON object with member "t"
//!
//! client  "t"  : register | commit | pin | open | fetch | count | exists
//!              | close_cursor | release | bye
//! server  "t"  : registered | committed | pinned | opened | page | counted
//!              | exists | cursor_closed | released | bye | error
//! ```
//!
//! Answers travel as arrays of strings: constants by their interned name,
//! the single wildcard as `"*"`, multi-wildcards as `"*1"`, `"*2"`, … — the
//! rendering is [`render_answer`], shared by the server, the load harness
//! and the end-to-end tests so "byte-identical to an in-process drain" is
//! checkable by string equality.
//!
//! # Error discipline
//!
//! A syntactically intact frame whose payload is rejected (bad JSON, missing
//! field, unknown tag) is answered with an [`ServerFrame::Error`] carrying
//! [`ErrorCode::MalformedFrame`] — the connection stays up, because the
//! length prefix keeps the stream in sync.  Only a corrupt length prefix
//! (declared length above [`MAX_FRAME_LEN`]) is fatal: past that there is no
//! way to find the next frame boundary, so the connection is closed.  Error
//! codes below 500 are the client's fault ([`ErrorCode::is_client_error`]);
//! 5xx codes are server-side failures.

use crate::json::{self, Json};
use omq_data::{Answer, Database, MultiValue, PartialValue, Semantics};
use std::fmt;

/// Hard cap on the payload length of one frame (8 MiB).  A declared length
/// beyond this is treated as a corrupt stream, not a large frame.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Upper bound on the `k` of one fetch — pagination is the backpressure
/// mechanism, so a single page is kept bounded.
pub const MAX_PAGE: usize = 65_536;

/// Soft cap on the encoded bytes of rendered answers inside one `page`
/// frame (1 MiB).  Constant names are client-supplied with no length
/// bound, so `k` alone does not bound a page: a fetch stops adding
/// answers once the next one would push the page past this cap and
/// defers the rest to the following fetch.  Page frames therefore stay
/// far below [`MAX_FRAME_LEN`] by construction, and `done` — not page
/// length — is the end-of-stream signal.
pub const MAX_PAGE_BYTES: usize = 1024 * 1024;

/// Integers on the wire are carried as exact JSON integers in
/// `0..=MAX_WIRE_INT` (`i64::MAX`).  Every wire integer is a sequential
/// counter (handle, epoch, count, page size), so the bound is nowhere near
/// reachable; values above it would degrade to floating point in many JSON
/// implementations.
pub const MAX_WIRE_INT: u64 = i64::MAX as u64;

/// One transaction operation inside a [`ClientFrame::Commit`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Insert one fact: relation name plus constant names.
    Insert {
        /// Relation symbol.
        relation: String,
        /// Constant names, one per position.
        tuple: Vec<String>,
    },
    /// Add a relation symbol to the store schema.
    AddRelation {
        /// Relation symbol.
        relation: String,
        /// Its arity.
        arity: usize,
    },
}

/// Names a registered query inside a request: by the id returned at
/// registration, or by registration name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTarget {
    /// A query id from a previous `registered` response.
    Id(u64),
    /// The name the query was registered under.
    Name(String),
}

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Parse + compile an ontology-mediated query and add it to the server's
    /// catalogue.
    Register {
        /// Catalogue name for the query.
        name: String,
        /// Ontology text (TGDs, `omq_chase::Ontology::parse` syntax).
        ontology: String,
        /// Conjunctive-query text (`omq_cq::ConjunctiveQuery::parse` syntax).
        query: String,
    },
    /// Commit a transaction batch to the server's store.
    Commit {
        /// The operations, applied atomically (commit-or-rollback).
        ops: Vec<TxnOp>,
    },
    /// Pin the store head: later commits never change what the returned
    /// snapshot handle answers.
    Pin,
    /// Open an answer cursor.  The cursor pins its snapshot at open time —
    /// the store head, or a previously pinned handle — and every later page
    /// replays that one epoch.
    OpenCursor {
        /// Which query to enumerate.
        query: QueryTarget,
        /// Answer semantics.
        semantics: Semantics,
        /// A snapshot handle from a previous `pin` (`None` = pin the head
        /// at open time).
        snapshot: Option<u64>,
        /// Leading answers to skip before the first page.
        offset: u64,
        /// Total answers the cursor may yield (`None` = unbounded).
        limit: Option<u64>,
    },
    /// Pull the next page of at most `k` answers off a cursor — `O(k)` work
    /// server-side, mapped directly onto `AnswerStream::next_batch`.
    Fetch {
        /// Cursor handle from `opened`.
        cursor: u64,
        /// Page size (clamped to [`MAX_PAGE`]).
        k: u64,
    },
    /// Count the query's answers without materialising them.
    Count {
        /// Which query to count.
        query: QueryTarget,
        /// Answer semantics to count under.
        semantics: Semantics,
        /// Optional pinned snapshot handle (`None` = head).
        snapshot: Option<u64>,
    },
    /// Probe whether the query has any answer at all (cheaper than `count`).
    Exists {
        /// Which query to probe.
        query: QueryTarget,
        /// Answer semantics to probe under.
        semantics: Semantics,
        /// Optional pinned snapshot handle (`None` = head).
        snapshot: Option<u64>,
    },
    /// Release a cursor without draining it.
    CloseCursor {
        /// Cursor handle to drop.
        cursor: u64,
    },
    /// Release a pinned snapshot handle.
    ReleaseSnapshot {
        /// Snapshot handle to drop.
        snapshot: u64,
    },
    /// Graceful goodbye; the server answers [`ServerFrame::Bye`] and closes.
    Bye,
}

/// A frame sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Response to [`ClientFrame::Register`].
    Registered {
        /// Catalogue id of the new query.
        id: u64,
        /// The name it was registered under (echoed).
        name: String,
    },
    /// Response to [`ClientFrame::Commit`].
    Committed {
        /// Store epoch after the commit.
        epoch: u64,
        /// Facts that were new to the store.
        new_facts: u64,
        /// Staged facts that were already present.
        duplicate_facts: u64,
    },
    /// Response to [`ClientFrame::Pin`].
    Pinned {
        /// Connection-scoped snapshot handle.
        snapshot: u64,
        /// The epoch the snapshot is pinned at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::OpenCursor`].
    CursorOpened {
        /// Connection-scoped cursor handle.
        cursor: u64,
        /// The epoch the cursor is pinned at — every page of this cursor
        /// replays this epoch, no matter what commits in the meantime.
        epoch: u64,
        /// The cursor's answer semantics (echoed).
        semantics: Semantics,
    },
    /// Response to [`ClientFrame::Fetch`]: one page of answers.
    Page {
        /// The cursor the page came off (echoed).
        cursor: u64,
        /// Rendered answers, see [`render_answer`].
        answers: Vec<Vec<String>>,
        /// `true` iff the cursor is exhausted.  A page may come up short
        /// of `k` without being the last one — pages are capped by
        /// encoded bytes ([`MAX_PAGE_BYTES`]) as well as by `k` — so this
        /// flag, not page length, signals the end of the stream.
        done: bool,
    },
    /// Response to [`ClientFrame::Count`].
    Counted {
        /// Number of answers under the requested semantics.
        count: u64,
        /// `count > 0`.
        exists: bool,
        /// The epoch the aggregate was served at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::Exists`].
    Exists {
        /// Whether any answer exists.
        exists: bool,
        /// The epoch the probe was served at.
        epoch: u64,
    },
    /// Response to [`ClientFrame::CloseCursor`].
    CursorClosed {
        /// The released handle (echoed).
        cursor: u64,
    },
    /// Response to [`ClientFrame::ReleaseSnapshot`].
    SnapshotReleased {
        /// The released handle (echoed).
        snapshot: u64,
    },
    /// Response to [`ClientFrame::Bye`]; the server closes after sending it.
    Bye,
    /// Any request that could not be served.  The connection stays open
    /// (framing is intact); the code tells the client whose fault it was.
    Error {
        /// What went wrong, machine-readable.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable wire error codes.
///
/// Codes below 500 mean the request was at fault and retrying it unchanged
/// will fail again; 5xx codes mean the server failed and the request may be
/// valid.  The split is the wire-level surface of the unified `omq::Error`:
/// see `omq::Error::wire_code` for the full mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// 400 — the frame was not a valid protocol request (bad JSON, missing
    /// or ill-typed field, unknown tag).
    MalformedFrame,
    /// 404 — the named or numbered query is not in the catalogue.
    UnknownQuery,
    /// 405 — the cursor handle is unknown on this connection.
    UnknownCursor,
    /// 406 — the snapshot handle is unknown on this connection.
    UnknownSnapshot,
    /// 409 — the query name is already registered.
    DuplicateQuery,
    /// 410 — the request does not fit the store's schema (unknown relation,
    /// arity mismatch, unknown constant, ill-formed tuple).
    SchemaMismatch,
    /// 411 — the submitted query/ontology was rejected at compile time
    /// (parse error, not guarded, not acyclic, not free-connex).
    BadQuery,
    /// 413 — the frame's declared length exceeds [`MAX_FRAME_LEN`]; fatal,
    /// the stream cannot be resynchronised.
    FrameTooLarge,
    /// 500 — a server-side failure (internal invariant, resource exhaustion,
    /// poisoned lock); not the request's fault.
    Internal,
}

impl ErrorCode {
    /// The numeric code carried on the wire.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::MalformedFrame => 400,
            ErrorCode::UnknownQuery => 404,
            ErrorCode::UnknownCursor => 405,
            ErrorCode::UnknownSnapshot => 406,
            ErrorCode::DuplicateQuery => 409,
            ErrorCode::SchemaMismatch => 410,
            ErrorCode::BadQuery => 411,
            ErrorCode::FrameTooLarge => 413,
            ErrorCode::Internal => 500,
        }
    }

    /// Decodes a wire code.
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        let code = match code {
            400 => ErrorCode::MalformedFrame,
            404 => ErrorCode::UnknownQuery,
            405 => ErrorCode::UnknownCursor,
            406 => ErrorCode::UnknownSnapshot,
            409 => ErrorCode::DuplicateQuery,
            410 => ErrorCode::SchemaMismatch,
            411 => ErrorCode::BadQuery,
            413 => ErrorCode::FrameTooLarge,
            500 => ErrorCode::Internal,
            _ => return None,
        };
        Some(code)
    }

    /// Every wire error code, for exhaustive table tests.
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::MalformedFrame,
        ErrorCode::UnknownQuery,
        ErrorCode::UnknownCursor,
        ErrorCode::UnknownSnapshot,
        ErrorCode::DuplicateQuery,
        ErrorCode::SchemaMismatch,
        ErrorCode::BadQuery,
        ErrorCode::FrameTooLarge,
        ErrorCode::Internal,
    ];

    /// `true` iff the request was at fault (4xx): retrying it unchanged will
    /// fail again.  `false` means a server-side failure (5xx).
    pub fn is_client_error(self) -> bool {
        self.as_u16() < 500
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::UnknownQuery => "unknown-query",
            ErrorCode::UnknownCursor => "unknown-cursor",
            ErrorCode::UnknownSnapshot => "unknown-snapshot",
            ErrorCode::DuplicateQuery => "duplicate-query",
            ErrorCode::SchemaMismatch => "schema-mismatch",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{} {kind}", self.as_u16())
    }
}

/// A payload that was framed correctly but is not a valid protocol request.
/// Answered with [`ErrorCode::MalformedFrame`]; never fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// What was wrong with the payload.
    pub message: String,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.message)
    }
}

impl std::error::Error for ProtocolViolation {}

fn violation(message: impl Into<String>) -> ProtocolViolation {
    ProtocolViolation {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Framing: length prefix + reassembly.
// ---------------------------------------------------------------------------

/// Encodes one payload into a length-prefixed frame.
///
/// Never panics on size: a payload above [`MAX_FRAME_LEN`] is framed
/// faithfully and it is the *peer* that rejects it as a corrupt stream.
/// Well-behaved senders keep payloads under the cap — the server bounds
/// its pages by [`MAX_PAGE_BYTES`], clips error messages, and degrades
/// anything still oversized to a bounded error frame before it reaches
/// the wire (see `Connection::send`).
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// A corrupt length prefix: the declared payload length exceeds
/// [`MAX_FRAME_LEN`].  Fatal for the connection — with the prefix untrusted
/// there is no next frame boundary to resynchronise at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The length the prefix declared.
    pub declared: usize,
}

impl fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "declared frame length {} exceeds the {MAX_FRAME_LEN}-byte cap",
            self.declared
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Incremental frame reassembly: feed it byte chunks as they arrive off the
/// socket (torn at arbitrary boundaries), pull complete payloads out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim consumed prefix before growing the buffer.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete payload, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameTooLarge { declared: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Payload encoding/decoding.
// ---------------------------------------------------------------------------

fn semantics_name(semantics: Semantics) -> &'static str {
    match semantics {
        Semantics::Complete => "complete",
        Semantics::MinimalPartial => "minimal-partial",
        Semantics::MinimalPartialMulti => "minimal-partial-multi",
    }
}

fn parse_semantics(name: &str) -> Result<Semantics, ProtocolViolation> {
    match name {
        "complete" => Ok(Semantics::Complete),
        "minimal-partial" => Ok(Semantics::MinimalPartial),
        "minimal-partial-multi" => Ok(Semantics::MinimalPartialMulti),
        other => Err(violation(format!("unknown semantics `{other}`"))),
    }
}

fn query_target_json(query: &QueryTarget) -> Json {
    match query {
        QueryTarget::Id(id) => Json::uint(*id),
        QueryTarget::Name(name) => Json::str(name.clone()),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProtocolViolation> {
    obj.get(key)
        .ok_or_else(|| violation(format!("missing field `{key}`")))
}

fn str_field(obj: &Json, key: &str) -> Result<String, ProtocolViolation> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| violation(format!("field `{key}` must be a string")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, ProtocolViolation> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| violation(format!("field `{key}` must be a non-negative integer")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtocolViolation> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| violation(format!("field `{key}` must be a boolean")))
}

fn opt_u64_field(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolViolation> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| violation(format!("field `{key}` must be a non-negative integer"))),
    }
}

fn query_field(obj: &Json) -> Result<QueryTarget, ProtocolViolation> {
    match field(obj, "query")? {
        Json::Str(name) => Ok(QueryTarget::Name(name.clone())),
        v => v
            .as_u64()
            .map(QueryTarget::Id)
            .ok_or_else(|| violation("field `query` must be a string or a non-negative integer")),
    }
}

fn semantics_field(obj: &Json) -> Result<Semantics, ProtocolViolation> {
    parse_semantics(&str_field(obj, "semantics")?)
}

impl ClientFrame {
    /// Serialises the frame payload (no length prefix).
    pub fn to_json(&self) -> Json {
        match self {
            ClientFrame::Register {
                name,
                ontology,
                query,
            } => Json::obj([
                ("t", Json::str("register")),
                ("name", Json::str(name.clone())),
                ("ontology", Json::str(ontology.clone())),
                ("query", Json::str(query.clone())),
            ]),
            ClientFrame::Commit { ops } => {
                let ops = ops
                    .iter()
                    .map(|op| match op {
                        TxnOp::Insert { relation, tuple } => Json::obj([
                            ("op", Json::str("insert")),
                            ("rel", Json::str(relation.clone())),
                            (
                                "tuple",
                                Json::Arr(tuple.iter().map(|c| Json::str(c.clone())).collect()),
                            ),
                        ]),
                        TxnOp::AddRelation { relation, arity } => Json::obj([
                            ("op", Json::str("add_relation")),
                            ("rel", Json::str(relation.clone())),
                            ("arity", Json::uint(*arity as u64)),
                        ]),
                    })
                    .collect();
                Json::obj([("t", Json::str("commit")), ("ops", Json::Arr(ops))])
            }
            ClientFrame::Pin => Json::obj([("t", Json::str("pin"))]),
            ClientFrame::OpenCursor {
                query,
                semantics,
                snapshot,
                offset,
                limit,
            } => {
                let mut members = vec![
                    ("t", Json::str("open")),
                    ("query", query_target_json(query)),
                    ("semantics", Json::str(semantics_name(*semantics))),
                    ("offset", Json::uint(*offset)),
                ];
                if let Some(s) = snapshot {
                    members.push(("snapshot", Json::uint(*s)));
                }
                if let Some(l) = limit {
                    members.push(("limit", Json::uint(*l)));
                }
                Json::obj(members)
            }
            ClientFrame::Fetch { cursor, k } => Json::obj([
                ("t", Json::str("fetch")),
                ("cursor", Json::uint(*cursor)),
                ("k", Json::uint(*k)),
            ]),
            ClientFrame::Count {
                query,
                semantics,
                snapshot,
            }
            | ClientFrame::Exists {
                query,
                semantics,
                snapshot,
            } => {
                let tag = if matches!(self, ClientFrame::Count { .. }) {
                    "count"
                } else {
                    "exists"
                };
                let mut members = vec![
                    ("t", Json::str(tag)),
                    ("query", query_target_json(query)),
                    ("semantics", Json::str(semantics_name(*semantics))),
                ];
                if let Some(s) = snapshot {
                    members.push(("snapshot", Json::uint(*s)));
                }
                Json::obj(members)
            }
            ClientFrame::CloseCursor { cursor } => Json::obj([
                ("t", Json::str("close_cursor")),
                ("cursor", Json::uint(*cursor)),
            ]),
            ClientFrame::ReleaseSnapshot { snapshot } => Json::obj([
                ("t", Json::str("release")),
                ("snapshot", Json::uint(*snapshot)),
            ]),
            ClientFrame::Bye => Json::obj([("t", Json::str("bye"))]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<ClientFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        let tag = str_field(&doc, "t")?;
        match tag.as_str() {
            "register" => Ok(ClientFrame::Register {
                name: str_field(&doc, "name")?,
                ontology: str_field(&doc, "ontology")?,
                query: str_field(&doc, "query")?,
            }),
            "commit" => {
                let ops = field(&doc, "ops")?
                    .as_arr()
                    .ok_or_else(|| violation("field `ops` must be an array"))?;
                let ops = ops
                    .iter()
                    .map(|op| {
                        let kind = str_field(op, "op")?;
                        match kind.as_str() {
                            "insert" => {
                                let tuple = field(op, "tuple")?
                                    .as_arr()
                                    .ok_or_else(|| violation("field `tuple` must be an array"))?
                                    .iter()
                                    .map(|c| {
                                        c.as_str().map(str::to_owned).ok_or_else(|| {
                                            violation("tuple entries must be strings")
                                        })
                                    })
                                    .collect::<Result<Vec<String>, _>>()?;
                                Ok(TxnOp::Insert {
                                    relation: str_field(op, "rel")?,
                                    tuple,
                                })
                            }
                            "add_relation" => Ok(TxnOp::AddRelation {
                                relation: str_field(op, "rel")?,
                                arity: u64_field(op, "arity")? as usize,
                            }),
                            other => Err(violation(format!("unknown txn op `{other}`"))),
                        }
                    })
                    .collect::<Result<Vec<TxnOp>, _>>()?;
                Ok(ClientFrame::Commit { ops })
            }
            "pin" => Ok(ClientFrame::Pin),
            "open" => Ok(ClientFrame::OpenCursor {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
                offset: opt_u64_field(&doc, "offset")?.unwrap_or(0),
                limit: opt_u64_field(&doc, "limit")?,
            }),
            "fetch" => Ok(ClientFrame::Fetch {
                cursor: u64_field(&doc, "cursor")?,
                k: u64_field(&doc, "k")?,
            }),
            "count" => Ok(ClientFrame::Count {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
            }),
            "exists" => Ok(ClientFrame::Exists {
                query: query_field(&doc)?,
                semantics: semantics_field(&doc)?,
                snapshot: opt_u64_field(&doc, "snapshot")?,
            }),
            "close_cursor" => Ok(ClientFrame::CloseCursor {
                cursor: u64_field(&doc, "cursor")?,
            }),
            "release" => Ok(ClientFrame::ReleaseSnapshot {
                snapshot: u64_field(&doc, "snapshot")?,
            }),
            "bye" => Ok(ClientFrame::Bye),
            other => Err(violation(format!("unknown request tag `{other}`"))),
        }
    }
}

impl ServerFrame {
    /// Serialises the frame payload (no length prefix).
    pub fn to_json(&self) -> Json {
        match self {
            ServerFrame::Registered { id, name } => Json::obj([
                ("t", Json::str("registered")),
                ("id", Json::uint(*id)),
                ("name", Json::str(name.clone())),
            ]),
            ServerFrame::Committed {
                epoch,
                new_facts,
                duplicate_facts,
            } => Json::obj([
                ("t", Json::str("committed")),
                ("epoch", Json::uint(*epoch)),
                ("new_facts", Json::uint(*new_facts)),
                ("duplicate_facts", Json::uint(*duplicate_facts)),
            ]),
            ServerFrame::Pinned { snapshot, epoch } => Json::obj([
                ("t", Json::str("pinned")),
                ("snapshot", Json::uint(*snapshot)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::CursorOpened {
                cursor,
                epoch,
                semantics,
            } => Json::obj([
                ("t", Json::str("opened")),
                ("cursor", Json::uint(*cursor)),
                ("epoch", Json::uint(*epoch)),
                ("semantics", Json::str(semantics_name(*semantics))),
            ]),
            ServerFrame::Page {
                cursor,
                answers,
                done,
            } => Json::obj([
                ("t", Json::str("page")),
                ("cursor", Json::uint(*cursor)),
                (
                    "answers",
                    Json::Arr(
                        answers
                            .iter()
                            .map(|a| Json::Arr(a.iter().map(|v| Json::str(v.clone())).collect()))
                            .collect(),
                    ),
                ),
                ("done", Json::Bool(*done)),
            ]),
            ServerFrame::Counted {
                count,
                exists,
                epoch,
            } => Json::obj([
                ("t", Json::str("counted")),
                ("count", Json::uint(*count)),
                ("exists", Json::Bool(*exists)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::Exists { exists, epoch } => Json::obj([
                ("t", Json::str("exists")),
                ("exists", Json::Bool(*exists)),
                ("epoch", Json::uint(*epoch)),
            ]),
            ServerFrame::CursorClosed { cursor } => Json::obj([
                ("t", Json::str("cursor_closed")),
                ("cursor", Json::uint(*cursor)),
            ]),
            ServerFrame::SnapshotReleased { snapshot } => Json::obj([
                ("t", Json::str("released")),
                ("snapshot", Json::uint(*snapshot)),
            ]),
            ServerFrame::Bye => Json::obj([("t", Json::str("bye"))]),
            ServerFrame::Error { code, message } => Json::obj([
                ("t", Json::str("error")),
                ("code", Json::uint(code.as_u16() as u64)),
                ("message", Json::str(message.clone())),
            ]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<ServerFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        let tag = str_field(&doc, "t")?;
        match tag.as_str() {
            "registered" => Ok(ServerFrame::Registered {
                id: u64_field(&doc, "id")?,
                name: str_field(&doc, "name")?,
            }),
            "committed" => Ok(ServerFrame::Committed {
                epoch: u64_field(&doc, "epoch")?,
                new_facts: u64_field(&doc, "new_facts")?,
                duplicate_facts: u64_field(&doc, "duplicate_facts")?,
            }),
            "pinned" => Ok(ServerFrame::Pinned {
                snapshot: u64_field(&doc, "snapshot")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "opened" => Ok(ServerFrame::CursorOpened {
                cursor: u64_field(&doc, "cursor")?,
                epoch: u64_field(&doc, "epoch")?,
                semantics: semantics_field(&doc)?,
            }),
            "page" => {
                let answers = field(&doc, "answers")?
                    .as_arr()
                    .ok_or_else(|| violation("field `answers` must be an array"))?
                    .iter()
                    .map(|a| {
                        a.as_arr()
                            .ok_or_else(|| violation("answers must be arrays"))?
                            .iter()
                            .map(|v| {
                                v.as_str()
                                    .map(str::to_owned)
                                    .ok_or_else(|| violation("answer entries must be strings"))
                            })
                            .collect::<Result<Vec<String>, _>>()
                    })
                    .collect::<Result<Vec<Vec<String>>, _>>()?;
                Ok(ServerFrame::Page {
                    cursor: u64_field(&doc, "cursor")?,
                    answers,
                    done: bool_field(&doc, "done")?,
                })
            }
            "counted" => Ok(ServerFrame::Counted {
                count: u64_field(&doc, "count")?,
                exists: bool_field(&doc, "exists")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "exists" => Ok(ServerFrame::Exists {
                exists: bool_field(&doc, "exists")?,
                epoch: u64_field(&doc, "epoch")?,
            }),
            "cursor_closed" => Ok(ServerFrame::CursorClosed {
                cursor: u64_field(&doc, "cursor")?,
            }),
            "released" => Ok(ServerFrame::SnapshotReleased {
                snapshot: u64_field(&doc, "snapshot")?,
            }),
            "bye" => Ok(ServerFrame::Bye),
            "error" => {
                let raw = u64_field(&doc, "code")?;
                let code = u16::try_from(raw)
                    .ok()
                    .and_then(ErrorCode::from_u16)
                    .ok_or_else(|| violation(format!("unknown error code {raw}")))?;
                Ok(ServerFrame::Error {
                    code,
                    message: str_field(&doc, "message")?,
                })
            }
            other => Err(violation(format!("unknown response tag `{other}`"))),
        }
    }
}

fn decode_object(payload: &[u8]) -> Result<Json, ProtocolViolation> {
    let text = std::str::from_utf8(payload).map_err(|_| violation("frame payload is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| violation(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(violation("frame payload must be a JSON object"));
    }
    Ok(doc)
}

// ---------------------------------------------------------------------------
// Answer rendering.
// ---------------------------------------------------------------------------

/// Exact number of bytes one rendered answer occupies as a JSON array
/// inside a `page` frame's `answers` member, mirroring [`crate::json`]'s
/// writer escapes.  The connection layer uses it to cap pages at
/// [`MAX_PAGE_BYTES`] *before* encoding them, so no outgoing frame can
/// approach [`MAX_FRAME_LEN`] however large `k` or the constant names are.
pub fn answer_wire_len(answer: &[String]) -> usize {
    let mut len = 2; // the brackets
    if !answer.is_empty() {
        len += answer.len() - 1; // the commas
    }
    for value in answer {
        len += 2; // the quotes
        for c in value.chars() {
            len += match c {
                '"' | '\\' | '\n' | '\r' | '\t' => 2,
                c if (c as u32) < 0x20 => 6, // \u00xx
                c => c.len_utf8(),
            };
        }
    }
    len
}

/// Renders one answer as the wire carries it: constants by their interned
/// name in `db`, the single wildcard as `"*"`, multi-wildcards as `"*k"`.
///
/// The server, the load harness and the end-to-end tests all render through
/// this one function, so "the paged sequence is byte-identical to an
/// in-process drain" is a plain string comparison.
pub fn render_answer(answer: &Answer, db: &Database) -> Vec<String> {
    match answer {
        Answer::Complete(t) => t.iter().map(|&c| db.const_name(c).to_owned()).collect(),
        Answer::Partial(t) => {
            t.0.iter()
                .map(|v| match v {
                    PartialValue::Const(c) => db.const_name(*c).to_owned(),
                    PartialValue::Star => "*".to_owned(),
                })
                .collect()
        }
        Answer::Multi(t) => {
            t.0.iter()
                .map(|v| match v {
                    MultiValue::Const(c) => db.const_name(*c).to_owned(),
                    MultiValue::Wild(k) => format!("*{k}"),
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_reassembles_across_torn_reads() {
        let frames: Vec<Vec<u8>> = vec![
            ClientFrame::Pin.encode(),
            ClientFrame::Fetch { cursor: 7, k: 32 }.encode(),
            ClientFrame::Bye.encode(),
        ];
        let wire: Vec<u8> = frames.concat();
        for chunk in [1usize, 2, 3, 5, wire.len()] {
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                decoder.feed(piece);
                while let Some(payload) = decoder.next_frame().unwrap() {
                    got.push(ClientFrame::decode(&payload).unwrap());
                }
            }
            assert_eq!(
                got,
                vec![
                    ClientFrame::Pin,
                    ClientFrame::Fetch { cursor: 7, k: 32 },
                    ClientFrame::Bye
                ],
                "chunk size {chunk}"
            );
            assert_eq!(decoder.pending(), 0);
        }
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn malformed_payloads_report_but_do_not_panic() {
        for payload in [
            &b"not json"[..],
            b"[1,2,3]",
            b"{\"t\":\"nope\"}",
            b"{\"t\":\"fetch\",\"cursor\":\"x\",\"k\":1}",
            b"{\"t\":\"fetch\",\"k\":1}",
            b"{\"t\":\"open\",\"query\":true,\"semantics\":\"complete\"}",
            b"{\"t\":\"open\",\"query\":\"q\",\"semantics\":\"certain\"}",
            b"{\"t\":\"commit\",\"ops\":[{\"op\":\"upsert\"}]}",
            b"\xff\xfe",
        ] {
            assert!(ClientFrame::decode(payload).is_err());
        }
        assert!(ServerFrame::decode(b"{\"t\":\"error\",\"code\":999,\"message\":\"\"}").is_err());
    }

    #[test]
    fn answer_wire_len_matches_the_encoder_exactly() {
        for answer in [
            vec![],
            vec!["plain".to_owned()],
            vec!["*".to_owned(), "*17".to_owned()],
            vec![
                "quote\"".to_owned(),
                "back\\slash".to_owned(),
                "nl\n tab\t cr\r".to_owned(),
                "nul\u{1}bel\u{7}".to_owned(),
                "é\u{1F600}".to_owned(),
                String::new(),
            ],
        ] {
            let encoded =
                Json::Arr(answer.iter().map(|v| Json::str(v.clone())).collect()).to_json();
            assert_eq!(answer_wire_len(&answer), encoded.len(), "{answer:?}");
        }
    }

    #[test]
    fn error_codes_partition_into_client_and_server_faults() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
            assert_eq!(code.is_client_error(), code.as_u16() < 500);
            assert!(code.to_string().starts_with(&code.as_u16().to_string()));
        }
        assert!(ErrorCode::from_u16(200).is_none());
        assert!(!ErrorCode::Internal.is_client_error());
        assert!(ErrorCode::MalformedFrame.is_client_error());
    }
}
