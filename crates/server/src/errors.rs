//! Classifying serving-layer errors into wire [`ErrorCode`]s.
//!
//! The classifiers for the layers below (`for_data`, `for_cq`, `for_chase`,
//! `for_core`) live in `omq-wire` as inherent methods on [`ErrorCode`], so
//! the cluster shares them; `ServeError` sits above the wire crate, so its
//! classifier is the one piece that lives here.  The `omq` facade's
//! `Error::wire_code` delegates to both so in-process and over-the-wire
//! callers classify identically (the facade carries the table test).

use crate::protocol::ErrorCode;
use omq_serve::ServeError;

/// Classifies a serving-layer error.
pub fn wire_code_for_serve(e: &ServeError) -> ErrorCode {
    match e {
        ServeError::DuplicateQuery(_) => ErrorCode::DuplicateQuery,
        ServeError::UnknownQuery(_) | ServeError::UnknownQueryName(_) => ErrorCode::UnknownQuery,
        ServeError::Data(e) => ErrorCode::for_data(e),
        ServeError::Core(e) => ErrorCode::for_core(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::ChaseError;
    use omq_core::CoreError;
    use omq_data::DataError;

    #[test]
    fn classification_agrees_with_the_fault_line() {
        // Request-side faults are 4xx…
        assert!(wire_code_for_serve(&ServeError::UnknownQueryName("q".into())).is_client_error());
        assert_eq!(
            wire_code_for_serve(&ServeError::DuplicateQuery("q".into())),
            ErrorCode::DuplicateQuery
        );
        // …server-side failures are 5xx, even when nested through layers.
        assert_eq!(
            wire_code_for_serve(&ServeError::Core(CoreError::Chase(
                ChaseError::ChaseBudgetExceeded { max_facts: 10 }
            ))),
            ErrorCode::Internal
        );
        // Nested data errors classify the same as at the data layer.
        let data = DataError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            actual: 3,
        };
        assert_eq!(
            wire_code_for_serve(&ServeError::Data(data.clone())),
            ErrorCode::for_data(&data)
        );
    }
}
