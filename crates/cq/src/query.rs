//! The conjunctive query type and structural operations on it.

use crate::atom::Atom;
use crate::error::CqError;
use crate::term::{Term, VarId};
use crate::Result;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunctive query `q(x̄) ← φ(x̄, ȳ)`.
///
/// * `answer_vars` is the tuple `x̄` (possibly with repetitions, as allowed by
///   the paper);
/// * `atoms` is the body `φ`, a set of relational atoms over variables and
///   constants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Query name (head predicate), only used for display.
    pub name: String,
    var_names: Vec<String>,
    answer_vars: Vec<VarId>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates an empty Boolean query with the given name.
    pub fn empty(name: impl Into<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            var_names: Vec::new(),
            answer_vars: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Parses the textual syntax, e.g.
    /// `q(x1, x2) :- HasOffice(x1, x2), Researcher(x1)`.
    ///
    /// Bare identifiers denote variables; quoted identifiers (`'mary'` or
    /// `"mary"`) denote constants.
    pub fn parse(text: &str) -> Result<Self> {
        crate::parser::parse_query(text)
    }

    /// Interns a variable by name, returning its identifier.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(idx) = self.var_names.iter().position(|n| n == name) {
            return VarId(idx as u32);
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        id
    }

    /// Looks up a variable by name without interning.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Returns the name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Total number of interned variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Appends an answer variable (by identifier).
    pub fn push_answer_var(&mut self, v: VarId) {
        self.answer_vars.push(v);
    }

    /// Appends an atom.
    pub fn push_atom(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// The answer tuple `x̄` (possibly with repeated variables).
    pub fn answer_vars(&self) -> &[VarId] {
        &self.answer_vars
    }

    /// The distinct answer variables, in first-occurrence order.
    pub fn distinct_answer_vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for &v in &self.answer_vars {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// The arity of the query (length of the answer tuple).
    pub fn arity(&self) -> usize {
        self.answer_vars.len()
    }

    /// Returns `true` iff the query is Boolean (arity 0).
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// All variables occurring in the body, in first-occurrence order
    /// (`var(q)` in the paper).
    pub fn body_vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// The quantified variables: body variables that are not answer variables.
    pub fn quantified_vars(&self) -> Vec<VarId> {
        let answers: FxHashSet<VarId> = self.answer_vars.iter().copied().collect();
        self.body_vars()
            .into_iter()
            .filter(|v| !answers.contains(v))
            .collect()
    }

    /// Returns `true` iff `v` is an answer variable.
    pub fn is_answer_var(&self, v: VarId) -> bool {
        self.answer_vars.contains(&v)
    }

    /// All constant names occurring in the body (`con(q)`), in
    /// first-occurrence order.
    pub fn constants(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for atom in &self.atoms {
            for c in atom.constants() {
                if !seen.iter().any(|s| s == c) {
                    seen.push(c.to_owned());
                }
            }
        }
        seen
    }

    /// The relation symbols used, with their arities.  Returns an error if a
    /// symbol is used with two different arities.
    pub fn relations(&self) -> Result<FxHashMap<String, usize>> {
        let mut map = FxHashMap::default();
        for atom in &self.atoms {
            match map.get(&atom.relation) {
                Some(&arity) if arity != atom.arity() => {
                    return Err(CqError::ArityConflict {
                        relation: atom.relation.clone(),
                        first: arity,
                        second: atom.arity(),
                    })
                }
                Some(_) => {}
                None => {
                    map.insert(atom.relation.clone(), atom.arity());
                }
            }
        }
        Ok(map)
    }

    /// Returns `true` iff the query is *self-join free*: no relation symbol
    /// occurs in more than one atom.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = FxHashSet::default();
        self.atoms.iter().all(|a| seen.insert(&a.relation))
    }

    /// Validates the query: answer variables must occur in the body and
    /// relation symbols must have consistent arities.
    pub fn validate(&self) -> Result<()> {
        let body: FxHashSet<VarId> = self.body_vars().into_iter().collect();
        for &v in &self.answer_vars {
            if !body.contains(&v) {
                return Err(CqError::UnboundAnswerVariable(self.var_name(v).to_owned()));
            }
        }
        self.relations().map(|_| ())
    }

    /// Returns a Boolean version of the query (all answer variables become
    /// quantified).
    pub fn boolean_version(&self) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.answer_vars.clear();
        q
    }

    /// Returns the query obtained by substituting the answer variables by the
    /// given constant names position-wise (used for single-testing).  The
    /// result is a Boolean query.
    pub fn substitute_answer_constants(&self, constants: &[String]) -> Result<ConjunctiveQuery> {
        if constants.len() != self.answer_vars.len() {
            return Err(CqError::Parse(format!(
                "expected {} constants, got {}",
                self.answer_vars.len(),
                constants.len()
            )));
        }
        let mut substitution: FxHashMap<VarId, String> = FxHashMap::default();
        for (&v, c) in self.answer_vars.iter().zip(constants) {
            if let Some(previous) = substitution.get(&v) {
                if previous != c {
                    // Repeated answer variable substituted by two different
                    // constants: the query is unsatisfiable; encode this with a
                    // fresh never-matching constant pair so callers simply get
                    // the empty answer.
                    return Ok(ConjunctiveQuery {
                        name: self.name.clone(),
                        var_names: vec![],
                        answer_vars: vec![],
                        atoms: vec![Atom::new(
                            "__unsat__",
                            vec![Term::Const("__unsat__".to_owned())],
                        )],
                    });
                }
            }
            substitution.insert(v, c.clone());
        }
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                a.map_terms(|t| match t {
                    Term::Var(v) if substitution.contains_key(v) => {
                        Term::Const(substitution[v].clone())
                    }
                    other => other.clone(),
                })
            })
            .collect();
        // Re-intern the remaining variables compactly.
        let mut q = ConjunctiveQuery::empty(self.name.clone());
        let mut remap: FxHashMap<VarId, VarId> = FxHashMap::default();
        let atoms: Vec<Atom> = atoms;
        for atom in &atoms {
            for old in atom.variables() {
                if let std::collections::hash_map::Entry::Vacant(entry) = remap.entry(old) {
                    entry.insert(q.var(self.var_name(old)));
                }
            }
        }
        for atom in atoms {
            let mapped = atom.map_terms(|t| match t {
                Term::Var(v) => Term::Var(remap[v]),
                c => c.clone(),
            });
            q.push_atom(mapped);
        }
        Ok(q)
    }

    /// Returns a copy where the answer variables in `to_quantify` become
    /// quantified (they remain in the body).
    pub fn quantify_answer_vars(&self, to_quantify: &FxHashSet<VarId>) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.answer_vars.retain(|v| !to_quantify.contains(v));
        q
    }

    /// Returns a copy with the given variables identified: every variable is
    /// replaced by the representative (first element) of the group containing
    /// it.  Groups must be disjoint.  Used by the multi-wildcard testing
    /// machinery (the `q̂` construction of the paper).
    pub fn identify_vars(&self, groups: &[Vec<VarId>]) -> ConjunctiveQuery {
        let mut replacement: FxHashMap<VarId, VarId> = FxHashMap::default();
        for group in groups {
            if let Some(&repr) = group.first() {
                for &v in group {
                    replacement.insert(v, repr);
                }
            }
        }
        let map = |v: VarId| *replacement.get(&v).unwrap_or(&v);
        let atoms = self
            .atoms
            .iter()
            .map(|a| {
                a.map_terms(|t| match t {
                    Term::Var(v) => Term::Var(map(*v)),
                    c => c.clone(),
                })
            })
            .collect();
        ConjunctiveQuery {
            name: self.name.clone(),
            var_names: self.var_names.clone(),
            answer_vars: self.answer_vars.iter().map(|&v| map(v)).collect(),
            atoms,
        }
    }

    /// Returns a copy extended with an extra atom.
    pub fn with_extra_atom(&self, atom: Atom) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.atoms.push(atom);
        q
    }

    /// Splits the query into its maximal connected components.  Two atoms are
    /// connected if they share a variable or a constant (connectedness "via a
    /// constant", as in the paper).  Each component keeps the answer-variable
    /// positions that fall into it; the returned vector also reports, for each
    /// component, the indices of the original answer positions it owns.
    pub fn connected_components(&self) -> Vec<(ConjunctiveQuery, Vec<usize>)> {
        if self.atoms.is_empty() {
            return vec![(self.clone(), (0..self.answer_vars.len()).collect())];
        }
        // Union-find over atoms.
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        let mut var_owner: FxHashMap<VarId, usize> = FxHashMap::default();
        let mut const_owner: FxHashMap<String, usize> = FxHashMap::default();
        for (i, atom) in self.atoms.iter().enumerate() {
            for v in atom.variables() {
                if let Some(&j) = var_owner.get(&v) {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                } else {
                    var_owner.insert(v, i);
                }
            }
            for c in atom.constants() {
                if let Some(&j) = const_owner.get(c) {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                } else {
                    const_owner.insert(c.to_owned(), i);
                }
            }
        }
        let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut components: Vec<(ConjunctiveQuery, Vec<usize>)> = Vec::new();
        let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
        group_list.sort();
        for atom_indices in group_list {
            let mut q = ConjunctiveQuery::empty(format!("{}_cc{}", self.name, components.len()));
            let mut remap: FxHashMap<VarId, VarId> = FxHashMap::default();
            let mut component_vars: FxHashSet<VarId> = FxHashSet::default();
            for &ai in &atom_indices {
                for v in self.atoms[ai].variables() {
                    component_vars.insert(v);
                }
            }
            let mut answer_positions = Vec::new();
            for (pos, &av) in self.answer_vars.iter().enumerate() {
                if component_vars.contains(&av) {
                    answer_positions.push(pos);
                }
            }
            // Intern variables: answer variables first (in position order),
            // then the rest.
            for &pos in &answer_positions {
                let av = self.answer_vars[pos];
                let id = *remap.entry(av).or_insert_with(|| q.var(self.var_name(av)));
                q.push_answer_var(id);
            }
            for &ai in &atom_indices {
                let mapped = self.atoms[ai].map_terms(|t| match t {
                    Term::Var(v) => {
                        let id = *remap.entry(*v).or_insert_with(|| q.var(self.var_name(*v)));
                        Term::Var(id)
                    }
                    c => c.clone(),
                });
                q.push_atom(mapped);
            }
            components.push((q, answer_positions));
        }
        components
    }

    /// Returns `true` iff the query is connected (single connected component).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// The variable adjacency ("Gaifman") graph of the query: an edge between
    /// two distinct variables whenever they co-occur in an atom.
    pub fn variable_graph(&self) -> FxHashMap<VarId, FxHashSet<VarId>> {
        let mut graph: FxHashMap<VarId, FxHashSet<VarId>> = FxHashMap::default();
        for v in self.body_vars() {
            graph.entry(v).or_default();
        }
        for atom in &self.atoms {
            let vars = atom.variables();
            for (i, &a) in vars.iter().enumerate() {
                for &b in &vars[i + 1..] {
                    if a != b {
                        graph.entry(a).or_default().insert(b);
                        graph.entry(b).or_default().insert(a);
                    }
                }
            }
        }
        graph
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head_args: Vec<&str> = self.answer_vars.iter().map(|&v| self.var_name(v)).collect();
        write!(f, "{}({}) :- ", self.name, head_args.join(", "))?;
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let args: Vec<String> = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => self.var_name(*v).to_owned(),
                        Term::Const(c) => format!("'{c}'"),
                    })
                    .collect();
                format!("{}({})", a.relation, args.join(", "))
            })
            .collect();
        write!(f, "{}", atoms.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConjunctiveQuery {
        ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap()
    }

    #[test]
    fn accessors() {
        let q = sample();
        assert_eq!(q.arity(), 3);
        assert!(!q.is_boolean());
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.body_vars().len(), 3);
        assert!(q.quantified_vars().is_empty());
        assert!(q.is_self_join_free());
        assert!(q.is_connected());
        assert!(q.validate().is_ok());
        assert_eq!(
            format!("{q}"),
            "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)"
        );
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), R(y, z)").unwrap();
        assert!(!q.is_self_join_free());
        assert_eq!(q.quantified_vars().len(), 2);
    }

    #[test]
    fn relations_conflict() {
        // The parser rejects conflicting arities outright.
        assert!(matches!(
            ConjunctiveQuery::parse("q(x) :- R(x, y), R(x)"),
            Err(CqError::ArityConflict { .. })
        ));
        // Manually constructed queries report the conflict via `relations()`.
        let mut q = ConjunctiveQuery::empty("q");
        let x = q.var("x");
        let y = q.var("y");
        q.push_atom(Atom::new("R", vec![Term::Var(x), Term::Var(y)]));
        q.push_atom(Atom::new("R", vec![Term::Var(x)]));
        assert!(matches!(q.relations(), Err(CqError::ArityConflict { .. })));
        assert!(q.validate().is_err());
    }

    #[test]
    fn boolean_version_and_substitution() {
        let q = sample();
        let b = q.boolean_version();
        assert!(b.is_boolean());
        assert_eq!(b.atoms().len(), 2);

        let grounded = q
            .substitute_answer_constants(&[
                "mary".to_owned(),
                "room1".to_owned(),
                "main1".to_owned(),
            ])
            .unwrap();
        assert!(grounded.is_boolean());
        assert!(grounded.body_vars().is_empty());
        assert_eq!(grounded.constants().len(), 3);
    }

    #[test]
    fn substitution_with_repeated_answer_var() {
        let q = ConjunctiveQuery::parse("q(x, x) :- R(x, y)").unwrap();
        let same = q
            .substitute_answer_constants(&["a".to_owned(), "a".to_owned()])
            .unwrap();
        assert_eq!(same.constants(), vec!["a".to_owned()]);
        let diff = q
            .substitute_answer_constants(&["a".to_owned(), "b".to_owned()])
            .unwrap();
        // Unsatisfiable marker query.
        assert_eq!(diff.atoms()[0].relation, "__unsat__");
    }

    #[test]
    fn connected_components_split() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(z, w)").unwrap();
        assert!(!q.is_connected());
        let components = q.connected_components();
        assert_eq!(components.len(), 2);
        let (c0, pos0) = &components[0];
        let (c1, pos1) = &components[1];
        assert_eq!(c0.arity() + c1.arity(), 2);
        assert_eq!(pos0.len() + pos1.len(), 2);
    }

    #[test]
    fn connectedness_via_constant() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, 'a'), S(z, 'a')").unwrap();
        assert!(q.is_connected());
    }

    #[test]
    fn identify_vars() {
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, z), S(y, z)").unwrap();
        let x = q.var_id("x").unwrap();
        let y = q.var_id("y").unwrap();
        let identified = q.identify_vars(&[vec![x, y]]);
        assert_eq!(identified.answer_vars()[0], identified.answer_vars()[1]);
        assert_eq!(identified.body_vars().len(), 2);
    }

    #[test]
    fn quantify_answer_vars() {
        let q = sample();
        let x2 = q.var_id("x2").unwrap();
        let quantified = q.quantify_answer_vars(&[x2].into_iter().collect());
        assert_eq!(quantified.arity(), 2);
        assert_eq!(quantified.quantified_vars(), vec![x2]);
    }

    #[test]
    fn unbound_answer_variable_rejected() {
        let err = ConjunctiveQuery::parse("q(x, u) :- R(x, y)").unwrap_err();
        assert!(matches!(err, CqError::UnboundAnswerVariable(_)));
    }

    #[test]
    fn variable_graph_edges() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let g = q.variable_graph();
        let x = q.var_id("x").unwrap();
        let y = q.var_id("y").unwrap();
        let z = q.var_id("z").unwrap();
        assert!(g[&x].contains(&y));
        assert!(g[&y].contains(&z));
        assert!(!g[&x].contains(&z));
    }
}
