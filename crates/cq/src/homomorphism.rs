//! Homomorphism search from a conjunctive query into a database.
//!
//! A homomorphism maps the query's variables to active-domain values such that
//! every atom becomes a fact of the database; query constants must map to
//! themselves.  This module implements a straightforward backtracking search
//! over the database indexes.  It is *not* the constant-delay machinery of the
//! paper — it serves as:
//!
//! * the evaluation oracle used by brute-force baselines and tests,
//! * the single-testing workhorse for small (fixed) queries, where its running
//!   time is linear in the database for acyclic-shaped bindings,
//! * a building block of the chase (applicability of TGDs).

use crate::query::ConjunctiveQuery;
use crate::term::{Term, VarId};
use omq_data::{Database, RelId, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// A (partial) assignment of query variables to database values.
pub type Assignment = FxHashMap<VarId, Value>;

/// A prepared homomorphism search from a fixed query into a fixed database.
#[derive(Debug)]
pub struct HomSearch<'a> {
    query: &'a ConjunctiveQuery,
    db: &'a Database,
    /// Relation id per atom (`None` if the relation does not exist in the
    /// database schema, in which case no homomorphism exists).
    rel_ids: Vec<Option<RelId>>,
    /// Resolved constant values per atom position (`None` for variables).
    const_args: Vec<Vec<Option<Value>>>,
    /// `true` if some query constant does not occur in the database: in that
    /// case, atoms mentioning it can never be matched.
    unresolved_constant: Vec<bool>,
}

impl<'a> HomSearch<'a> {
    /// Prepares a search of `query` into `db`.
    pub fn new(query: &'a ConjunctiveQuery, db: &'a Database) -> Self {
        let mut rel_ids = Vec::with_capacity(query.atoms().len());
        let mut const_args = Vec::with_capacity(query.atoms().len());
        let mut unresolved_constant = Vec::with_capacity(query.atoms().len());
        for atom in query.atoms() {
            rel_ids.push(db.schema().relation_id(&atom.relation));
            let mut unresolved = false;
            let resolved: Vec<Option<Value>> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(_) => None,
                    Term::Const(c) => match db.const_id(c) {
                        Some(id) => Some(Value::Const(id)),
                        None => {
                            unresolved = true;
                            None
                        }
                    },
                })
                .collect();
            const_args.push(resolved);
            unresolved_constant.push(unresolved);
        }
        HomSearch {
            query,
            db,
            rel_ids,
            const_args,
            unresolved_constant,
        }
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        self.query
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Returns `true` iff a homomorphism extending `partial` exists.
    pub fn exists(&self, partial: &Assignment) -> bool {
        let mut found = false;
        self.search(partial, &mut |_| {
            found = true;
            false // stop
        });
        found
    }

    /// Collects all homomorphisms extending `partial`.
    pub fn find_all(&self, partial: &Assignment) -> Vec<Assignment> {
        let mut out = Vec::new();
        self.search(partial, &mut |assignment| {
            out.push(assignment.clone());
            true
        });
        out
    }

    /// Visits every homomorphism extending `partial`; the callback returns
    /// `false` to stop the search early.
    pub fn for_each(&self, partial: &Assignment, mut f: impl FnMut(&Assignment) -> bool) {
        self.search(partial, &mut f);
    }

    /// All answers of the query on the database (deduplicated answer tuples,
    /// possibly containing nulls when the database does).
    pub fn answers(&self) -> Vec<Vec<Value>> {
        self.answers_extending(&Assignment::default())
    }

    /// All answers extending a partial assignment.
    pub fn answers_extending(&self, partial: &Assignment) -> Vec<Vec<Value>> {
        let mut set: FxHashSet<Vec<Value>> = FxHashSet::default();
        let mut out = Vec::new();
        self.search(partial, &mut |assignment| {
            let tuple: Vec<Value> = self
                .query
                .answer_vars()
                .iter()
                .map(|v| assignment[v])
                .collect();
            if set.insert(tuple.clone()) {
                out.push(tuple);
            }
            true
        });
        out
    }

    /// Core backtracking search.  The callback returns `false` to abort.
    fn search(&self, partial: &Assignment, f: &mut dyn FnMut(&Assignment) -> bool) {
        // An atom over a missing relation or an unresolved constant can never
        // be satisfied.
        for (idx, rel) in self.rel_ids.iter().enumerate() {
            if rel.is_none() || self.unresolved_constant[idx] {
                return;
            }
        }
        let mut assignment = partial.clone();
        let mut remaining: Vec<usize> = (0..self.query.atoms().len()).collect();
        self.go(&mut assignment, &mut remaining, f);
    }

    fn go(
        &self,
        assignment: &mut Assignment,
        remaining: &mut Vec<usize>,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        if remaining.is_empty() {
            // All atoms matched; make sure every answer variable is bound (it
            // must occur in the body, so it is).
            return f(assignment);
        }
        // Choose the most constrained atom: maximal number of bound positions,
        // breaking ties towards fewer candidate facts.
        let (pick_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &atom_idx)| {
                let bound = self.bound_positions(atom_idx, assignment);
                (i, bound)
            })
            .max_by_key(|&(_, bound)| bound)
            .expect("non-empty remaining");
        let atom_idx = remaining.swap_remove(pick_idx);
        let atom = &self.query.atoms()[atom_idx];
        let rel = self.rel_ids[atom_idx].expect("checked in search()");

        let binding: Vec<Option<Value>> = atom
            .terms
            .iter()
            .enumerate()
            .map(|(pos, t)| match t {
                Term::Var(v) => assignment.get(v).copied(),
                Term::Const(_) => self.const_args[atom_idx][pos],
            })
            .collect();
        let candidates = self.db.facts_matching(rel, &binding);
        let mut keep_going = true;
        'facts: for fact_idx in candidates {
            let fact = self.db.fact(fact_idx);
            // Extend the assignment; record which variables we newly bound so
            // we can undo on backtracking.
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    match assignment.get(v) {
                        Some(&existing) => {
                            if existing != fact.args[pos] {
                                for nb in newly_bound.drain(..) {
                                    assignment.remove(&nb);
                                }
                                continue 'facts;
                            }
                        }
                        None => {
                            assignment.insert(*v, fact.args[pos]);
                            newly_bound.push(*v);
                        }
                    }
                }
            }
            keep_going = self.go(assignment, remaining, f);
            for nb in newly_bound {
                assignment.remove(&nb);
            }
            if !keep_going {
                break;
            }
        }
        remaining.push(atom_idx);
        // Restore `remaining` order irrelevant; only membership matters.
        keep_going
    }

    fn bound_positions(&self, atom_idx: usize, assignment: &Assignment) -> usize {
        let atom = &self.query.atoms()[atom_idx];
        atom.terms
            .iter()
            .enumerate()
            .filter(|(pos, t)| match t {
                Term::Var(v) => assignment.contains_key(v),
                Term::Const(_) => self.const_args[atom_idx][*pos].is_some(),
            })
            .count()
    }
}

/// Evaluates a query on a database, returning the deduplicated answer tuples.
/// Convenience wrapper around [`HomSearch`].
pub fn evaluate(query: &ConjunctiveQuery, db: &Database) -> Vec<Vec<Value>> {
    HomSearch::new(query, db).answers()
}

/// Decides whether the Boolean query holds on the database.
pub fn holds(query: &ConjunctiveQuery, db: &Database) -> bool {
    HomSearch::new(query, db).exists(&Assignment::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Schema;

    fn office_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    #[test]
    fn evaluate_path_query() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- HasOffice(x, y), InBuilding(y, z)").unwrap();
        let answers = evaluate(&q, &db);
        assert_eq!(answers.len(), 1);
        let mary = Value::Const(db.const_id("mary").unwrap());
        assert_eq!(answers[0][0], mary);
    }

    #[test]
    fn evaluate_with_projection_dedups() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(x) :- HasOffice(x, y)").unwrap();
        let answers = evaluate(&q, &db);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn boolean_queries() {
        let db = office_db();
        let yes = ConjunctiveQuery::parse("q() :- Researcher(x), HasOffice(x, y)").unwrap();
        let no = ConjunctiveQuery::parse("q() :- InBuilding(x, y), InBuilding(y, z)").unwrap();
        assert!(holds(&yes, &db));
        assert!(!holds(&no, &db));
    }

    #[test]
    fn constants_must_match() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(y) :- HasOffice('mary', y)").unwrap();
        let answers = evaluate(&q, &db);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0], Value::Const(db.const_id("room1").unwrap()));

        let missing = ConjunctiveQuery::parse("q(y) :- HasOffice('zoe', y)").unwrap();
        assert!(evaluate(&missing, &db).is_empty());
    }

    #[test]
    fn unknown_relation_yields_no_answers() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(x) :- Unknown(x)").unwrap();
        assert!(evaluate(&q, &db).is_empty());
        assert!(!HomSearch::new(&q, &db).exists(&Assignment::default()));
    }

    #[test]
    fn partial_assignment_restricts_search() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(x, y) :- HasOffice(x, y)").unwrap();
        let x = q.var_id("x").unwrap();
        let john = Value::Const(db.const_id("john").unwrap());
        let mut partial = Assignment::default();
        partial.insert(x, john);
        let search = HomSearch::new(&q, &db);
        let answers = search.answers_extending(&partial);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0], john);
        assert!(search.exists(&partial));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut s = Schema::new();
        s.add_relation("E", 2).unwrap();
        let db = Database::builder(s)
            .fact("E", ["a", "a"])
            .fact("E", ["a", "b"])
            .build()
            .unwrap();
        let q = ConjunctiveQuery::parse("q(x) :- E(x, x)").unwrap();
        let answers = evaluate(&q, &db);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0], Value::Const(db.const_id("a").unwrap()));
    }

    #[test]
    fn early_stop_via_for_each() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q(x) :- Researcher(x)").unwrap();
        let search = HomSearch::new(&q, &db);
        let mut count = 0;
        search.for_each(&Assignment::default(), |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn find_all_returns_full_assignments() {
        let db = office_db();
        let q = ConjunctiveQuery::parse("q() :- HasOffice(x, y)").unwrap();
        let search = HomSearch::new(&q, &db);
        let homs = search.find_all(&Assignment::default());
        assert_eq!(homs.len(), 2);
        for h in homs {
            assert_eq!(h.len(), 2);
        }
    }
}
