//! Text syntax for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query := head ":-" body
//! head  := NAME "(" [term ("," term)*] ")"
//! body  := atom ("," atom)*           (may be empty for trivially true queries)
//! atom  := NAME "(" [term ("," term)*] ")"
//! term  := NAME            -- a variable
//!        | "'" chars "'"   -- a constant
//!        | '"' chars '"'   -- a constant
//! ```
//!
//! The head terms must be variables occurring in the body.

use crate::atom::Atom;
use crate::error::CqError;
use crate::query::ConjunctiveQuery;
use crate::term::Term;
use crate::Result;

/// Parses a conjunctive query from its textual syntax.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery> {
    let text = text.trim();
    let (head, body) = match text.split_once(":-") {
        Some((h, b)) => (h.trim(), b.trim()),
        None => (text, ""),
    };
    let (name, head_args) = parse_predicate(head)?;
    let mut query = ConjunctiveQuery::empty(name);

    let body_atoms = split_atoms(body)?;
    // Intern head variables *after* parsing them as raw names so that answer
    // variables keep their written order.
    let mut head_vars: Vec<String> = Vec::with_capacity(head_args.len());
    for arg in head_args {
        match parse_term_spec(&arg)? {
            RawTerm::Var(v) => head_vars.push(v),
            RawTerm::Const(_) => {
                return Err(CqError::Parse(format!(
                    "head arguments must be variables, found constant in `{head}`"
                )))
            }
        }
    }
    for spec in &body_atoms {
        let (rel, args) = parse_predicate(spec)?;
        let mut terms = Vec::with_capacity(args.len());
        for arg in args {
            match parse_term_spec(&arg)? {
                RawTerm::Var(v) => terms.push(Term::Var(query.var(&v))),
                RawTerm::Const(c) => terms.push(Term::Const(c)),
            }
        }
        query.push_atom(Atom::new(rel, terms));
    }
    for v in head_vars {
        match query.var_id(&v) {
            Some(id) => query.push_answer_var(id),
            None => return Err(CqError::UnboundAnswerVariable(v)),
        }
    }
    query.validate()?;
    Ok(query)
}

enum RawTerm {
    Var(String),
    Const(String),
}

fn parse_term_spec(spec: &str) -> Result<RawTerm> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Err(CqError::Parse("empty term".to_owned()));
    }
    let bytes = spec.as_bytes();
    if (bytes[0] == b'\'' || bytes[0] == b'"')
        && bytes.len() >= 2
        && bytes[bytes.len() - 1] == bytes[0]
    {
        return Ok(RawTerm::Const(spec[1..spec.len() - 1].to_owned()));
    }
    if !is_identifier(spec) {
        return Err(CqError::Parse(format!("invalid term `{spec}`")));
    }
    Ok(RawTerm::Var(spec.to_owned()))
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'')
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
}

/// Parses `Name(arg, arg, ...)` into the name and the raw argument strings.
fn parse_predicate(spec: &str) -> Result<(String, Vec<String>)> {
    let spec = spec.trim();
    let open = spec
        .find('(')
        .ok_or_else(|| CqError::Parse(format!("expected `(...)` in `{spec}`")))?;
    if !spec.ends_with(')') {
        return Err(CqError::Parse(format!("expected closing `)` in `{spec}`")));
    }
    let name = spec[..open].trim();
    if name.is_empty() || !is_identifier(name) {
        return Err(CqError::Parse(format!(
            "invalid predicate name in `{spec}`"
        )));
    }
    let inner = spec[open + 1..spec.len() - 1].trim();
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|s| s.trim().to_owned()).collect()
    };
    Ok((name.to_owned(), args))
}

/// Splits a comma-separated list of atoms, respecting parentheses.
fn split_atoms(body: &str) -> Result<Vec<String>> {
    let body = body.trim();
    if body.is_empty() {
        return Ok(Vec::new());
    }
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| CqError::Parse("unbalanced parentheses".to_owned()))?;
                current.push(c);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    atoms.push(current.trim().to_owned());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if depth != 0 {
        return Err(CqError::Parse("unbalanced parentheses".to_owned()));
    }
    if !current.trim().is_empty() {
        atoms.push(current.trim().to_owned());
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_running_example() {
        let q = parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
        assert_eq!(q.arity(), 3);
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.atoms()[0].relation, "HasOffice");
    }

    #[test]
    fn parses_boolean_query() {
        let q = parse_query("q() :- R(x, y), S(y, z)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms().len(), 2);
    }

    #[test]
    fn parses_constants() {
        let q = parse_query("q(x) :- R(x, 'a'), S(\"b\", x)").unwrap();
        assert_eq!(q.constants(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(q.body_vars().len(), 1);
    }

    #[test]
    fn parses_nullary_atoms() {
        let q = parse_query("q() :- Flag()").unwrap();
        assert_eq!(q.atoms()[0].arity(), 0);
    }

    #[test]
    fn rejects_constant_in_head() {
        assert!(parse_query("q('a') :- R('a')").is_err());
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let err = parse_query("q(x) :- R(y, z)").unwrap_err();
        assert!(matches!(err, CqError::UnboundAnswerVariable(_)));
    }

    #[test]
    fn rejects_malformed_atoms() {
        assert!(parse_query("q(x) :- R(x").is_err());
        assert!(parse_query("q(x) :- (x)").is_err());
        assert!(parse_query("q(x :- R(x)").is_err());
        assert!(parse_query("q(x) :- R(x,)").is_err());
    }

    #[test]
    fn repeated_answer_variables_allowed() {
        let q = parse_query("q(x, x) :- R(x, y)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.distinct_answer_vars().len(), 1);
    }

    #[test]
    fn whitespace_is_irrelevant() {
        let q = parse_query("  q ( x , y )   :-   R ( x , y ) ").unwrap();
        assert_eq!(q.arity(), 2);
    }
}
