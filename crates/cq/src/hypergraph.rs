//! Hypergraphs, the GYO reduction and join trees.
//!
//! A conjunctive query is *acyclic* iff it has a *join tree*: an undirected
//! tree over its atoms such that, for every variable, the atoms containing the
//! variable form a connected subtree.  The classical GYO (Graham /
//! Yu–Özsoyoğlu) reduction decides acyclicity and produces a join tree as a
//! by-product.

use crate::term::VarId;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// A hypergraph whose hyperedges are identified by caller-chosen `usize` ids
/// (typically atom indices) and whose vertices are query variables.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    edges: Vec<(usize, BTreeSet<VarId>)>,
}

impl Hypergraph {
    /// Creates an empty hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a hyperedge with the given id and vertex set.
    pub fn add_edge(&mut self, id: usize, vertices: impl IntoIterator<Item = VarId>) {
        self.edges.push((id, vertices.into_iter().collect()));
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The vertex set of the hypergraph.
    pub fn vertices(&self) -> BTreeSet<VarId> {
        self.edges
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect()
    }

    /// Runs the GYO reduction.  Returns a join tree if the hypergraph is
    /// acyclic and `None` otherwise.
    ///
    /// If the hypergraph is disconnected, the components are joined by
    /// arbitrary tree edges: this is sound because the join-tree connectivity
    /// condition is vacuous for variables that do not occur in both endpoints.
    pub fn gyo(&self) -> Option<JoinTree> {
        if self.edges.is_empty() {
            return Some(JoinTree::default());
        }
        let ids: Vec<usize> = self.edges.iter().map(|(id, _)| *id).collect();
        let mut working: FxHashMap<usize, BTreeSet<VarId>> = self
            .edges
            .iter()
            .map(|(id, vs)| (*id, vs.clone()))
            .collect();
        // If the same id was added twice the later edge wins; callers use
        // distinct atom indices so this does not occur in practice.
        let mut alive: Vec<usize> = working.keys().copied().collect();
        alive.sort_unstable();
        let mut tree_edges: Vec<(usize, usize)> = Vec::new();

        loop {
            let mut changed = false;

            // Rule 1: drop vertices that occur in exactly one alive edge.
            let mut occurrence: FxHashMap<VarId, usize> = FxHashMap::default();
            for id in &alive {
                for v in &working[id] {
                    *occurrence.entry(*v).or_insert(0) += 1;
                }
            }
            for id in &alive {
                let set = working.get_mut(id).expect("alive edge present");
                let before = set.len();
                set.retain(|v| occurrence[v] > 1);
                if set.len() != before {
                    changed = true;
                }
            }

            // Rule 2: drop an edge whose vertex set is contained in another
            // alive edge (an "ear"), recording the witness as its tree parent.
            if alive.len() > 1 {
                let mut removal: Option<(usize, usize)> = None;
                'outer: for (i, &e) in alive.iter().enumerate() {
                    for (j, &f) in alive.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        let ve = &working[&e];
                        let vf = &working[&f];
                        let subset = ve.is_subset(vf);
                        if subset && (ve.len() < vf.len() || i < j) {
                            // Tie-break equal sets by index so only one of the
                            // two is removed per pass.
                            removal = Some((e, f));
                            break 'outer;
                        }
                    }
                }
                if let Some((e, f)) = removal {
                    alive.retain(|&x| x != e);
                    tree_edges.push((e, f));
                    changed = true;
                }
            }

            if !changed {
                break;
            }
        }

        if alive.len() > 1 {
            return None;
        }

        let mut tree = JoinTree::default();
        for id in &ids {
            tree.add_node(*id);
        }
        for (a, b) in tree_edges {
            tree.add_edge(a, b);
        }
        // Connect remaining forest components arbitrarily (possible only when
        // the hypergraph was disconnected before vertex elimination).
        let components = tree.components();
        if components.len() > 1 {
            let anchors: Vec<usize> = components.iter().map(|c| c[0]).collect();
            for pair in anchors.windows(2) {
                tree.add_edge(pair[0], pair[1]);
            }
        }
        Some(tree)
    }
}

/// An undirected join tree over hyperedge/atom ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinTree {
    nodes: Vec<usize>,
    adjacency: FxHashMap<usize, Vec<usize>>,
}

impl JoinTree {
    /// Adds a node.
    pub fn add_node(&mut self, id: usize) {
        if !self.adjacency.contains_key(&id) {
            self.nodes.push(id);
            self.adjacency.insert(id, Vec::new());
        }
    }

    /// Adds an undirected edge (nodes are created if missing).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.add_node(a);
        self.add_node(b);
        self.adjacency.get_mut(&a).expect("node a").push(b);
        self.adjacency.get_mut(&b).expect("node b").push(a);
    }

    /// All node ids, in insertion order.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, id: usize) -> &[usize] {
        self.adjacency.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` iff the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Connected components (lists of node ids, each sorted).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        let mut components = Vec::new();
        for &start in &self.nodes {
            if seen.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(v) = stack.pop() {
                component.push(v);
                for &n in self.neighbours(v) {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Roots the tree at `root`, producing parent/children maps and a
    /// pre-order traversal.
    ///
    /// # Panics
    /// Panics if `root` is not a node of the tree.
    pub fn rooted_at(&self, root: usize) -> RootedJoinTree {
        assert!(
            self.adjacency.contains_key(&root),
            "root {root} is not a node of the join tree"
        );
        let mut parent: FxHashMap<usize, usize> = FxHashMap::default();
        let mut children: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        let mut preorder: Vec<usize> = Vec::with_capacity(self.nodes.len());
        let mut visited: FxHashSet<usize> = FxHashSet::default();
        let mut stack = vec![root];
        visited.insert(root);
        children.entry(root).or_default();
        while let Some(v) = stack.pop() {
            preorder.push(v);
            // Sort neighbours for determinism.
            let mut ns: Vec<usize> = self.neighbours(v).to_vec();
            ns.sort_unstable();
            ns.reverse(); // so that the smaller id is popped/visited first
            for n in ns {
                if visited.insert(n) {
                    parent.insert(n, v);
                    children.entry(v).or_default().push(n);
                    children.entry(n).or_default();
                    stack.push(n);
                }
            }
        }
        // Children lists were pushed in reverse order; normalise.
        for list in children.values_mut() {
            list.sort_unstable();
        }
        // Recompute the pre-order from the normalised children lists so that
        // the traversal matches `children` exactly.
        let mut ordered = Vec::with_capacity(preorder.len());
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            ordered.push(v);
            for &c in children[&v].iter().rev() {
                stack.push(c);
            }
        }
        RootedJoinTree {
            root,
            parent,
            children,
            preorder: ordered,
        }
    }

    /// Checks the join-tree property for the given atoms: for every variable,
    /// the nodes whose vertex sets contain it form a connected subtree.  The
    /// `vertex_sets` map assigns to each node id its variable set.
    pub fn is_valid_for(&self, vertex_sets: &FxHashMap<usize, BTreeSet<VarId>>) -> bool {
        if self.nodes.len() != vertex_sets.len()
            || !self.nodes.iter().all(|n| vertex_sets.contains_key(n))
        {
            return false;
        }
        // Must be a tree: connected with n-1 edges.
        let edge_count: usize = self.adjacency.values().map(Vec::len).sum::<usize>() / 2;
        if !self.nodes.is_empty()
            && (edge_count != self.nodes.len() - 1 || self.components().len() != 1)
        {
            return false;
        }
        let all_vars: BTreeSet<VarId> = vertex_sets
            .values()
            .flat_map(|s| s.iter().copied())
            .collect();
        for v in all_vars {
            let holders: FxHashSet<usize> = self
                .nodes
                .iter()
                .copied()
                .filter(|n| vertex_sets[n].contains(&v))
                .collect();
            if holders.is_empty() {
                continue;
            }
            // BFS within holders.
            let start = *holders.iter().next().expect("non-empty");
            let mut seen: FxHashSet<usize> = FxHashSet::default();
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(x) = stack.pop() {
                for &n in self.neighbours(x) {
                    if holders.contains(&n) && seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }
}

/// A join tree rooted at a designated node.
#[derive(Debug, Clone)]
pub struct RootedJoinTree {
    /// The root node id.
    pub root: usize,
    /// Parent of each non-root node.
    pub parent: FxHashMap<usize, usize>,
    /// Children of each node (possibly empty).
    pub children: FxHashMap<usize, Vec<usize>>,
    /// Pre-order traversal starting at the root.
    pub preorder: Vec<usize>,
}

impl RootedJoinTree {
    /// Children of a node.
    pub fn children_of(&self, id: usize) -> &[usize] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parent of a node (`None` for the root).
    pub fn parent_of(&self, id: usize) -> Option<usize> {
        self.parent.get(&id).copied()
    }

    /// Nodes in bottom-up order (reverse pre-order: children before parents).
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order = self.preorder.clone();
        order.reverse();
        order
    }

    /// The node ids of the subtree rooted at `id`, in pre-order.
    pub fn subtree(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.children_of(v).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn path_query_is_acyclic() {
        // R(x,y), S(y,z)
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(1), v(2)]);
        let tree = h.gyo().expect("acyclic");
        assert_eq!(tree.len(), 2);
        let sets: FxHashMap<usize, BTreeSet<VarId>> = [
            (0, [v(0), v(1)].into_iter().collect()),
            (1, [v(1), v(2)].into_iter().collect()),
        ]
        .into_iter()
        .collect();
        assert!(tree.is_valid_for(&sets));
    }

    #[test]
    fn triangle_is_cyclic() {
        // R(x,y), S(y,z), T(z,x)
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(1), v(2)]);
        h.add_edge(2, [v(2), v(0)]);
        assert!(h.gyo().is_none());
    }

    #[test]
    fn triangle_with_guard_is_acyclic() {
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(1), v(2)]);
        h.add_edge(2, [v(2), v(0)]);
        h.add_edge(3, [v(0), v(1), v(2)]);
        let tree = h.gyo().expect("acyclic with guard");
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn disconnected_hypergraph_gets_a_tree() {
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(2), v(3)]);
        let tree = h.gyo().expect("acyclic");
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.components().len(), 1);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new();
        let tree = h.gyo().expect("trivially acyclic");
        assert!(tree.is_empty());
    }

    #[test]
    fn single_edge() {
        let mut h = Hypergraph::new();
        h.add_edge(7, [v(0), v(1), v(2)]);
        let tree = h.gyo().expect("acyclic");
        assert_eq!(tree.nodes(), &[7]);
    }

    #[test]
    fn duplicate_vertex_sets_are_handled() {
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(0), v(1)]);
        h.add_edge(2, [v(1), v(2)]);
        let tree = h.gyo().expect("acyclic");
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(1), v(2)]);
        h.add_edge(2, [v(2), v(3)]);
        h.add_edge(3, [v(3), v(0)]);
        assert!(h.gyo().is_none());
    }

    #[test]
    fn rooted_traversal() {
        let mut h = Hypergraph::new();
        h.add_edge(0, [v(0), v(1)]);
        h.add_edge(1, [v(1), v(2)]);
        h.add_edge(2, [v(2), v(3)]);
        let tree = h.gyo().expect("acyclic");
        let rooted = tree.rooted_at(0);
        assert_eq!(rooted.root, 0);
        assert_eq!(rooted.preorder.len(), 3);
        assert_eq!(rooted.preorder[0], 0);
        assert_eq!(rooted.parent_of(0), None);
        // Each non-root node has a parent.
        for &n in &rooted.preorder[1..] {
            assert!(rooted.parent_of(n).is_some());
        }
        let bottom_up = rooted.bottom_up();
        assert_eq!(bottom_up.last(), Some(&0));
        assert_eq!(rooted.subtree(0).len(), 3);
    }

    #[test]
    fn is_valid_rejects_bad_tree() {
        // Star tree where the connectivity of variable v1 fails.
        let mut tree = JoinTree::default();
        tree.add_edge(0, 1);
        tree.add_edge(1, 2);
        let sets: FxHashMap<usize, BTreeSet<VarId>> = [
            (0, [v(0), v(5)].into_iter().collect()),
            (1, [v(0), v(1)].into_iter().collect()),
            (2, [v(5)].into_iter().collect()),
        ]
        .into_iter()
        .collect();
        // v5 occurs in nodes 0 and 2 which are not adjacent and node 1 does not
        // contain it.
        assert!(!tree.is_valid_for(&sets));
    }
}
