//! Relational atoms of conjunctive queries.

use crate::term::{Term, VarId};
use serde::{Deserialize, Serialize};

/// A relational atom `R(t₁, …, tₙ)` over terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Relation symbol name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates a new atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// The arity (number of argument positions).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The distinct variables of this atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !seen.contains(v) {
                    seen.push(*v);
                }
            }
        }
        seen
    }

    /// The distinct constant names of this atom, in first-occurrence order.
    pub fn constants(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for t in &self.terms {
            if let Term::Const(c) = t {
                if !seen.contains(&c.as_str()) {
                    seen.push(c);
                }
            }
        }
        seen
    }

    /// Returns `true` iff the atom mentions the variable `v`.
    pub fn mentions(&self, v: VarId) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(v))
    }

    /// The positions (0-based) at which variable `v` occurs.
    pub fn positions_of(&self, v: VarId) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect()
    }

    /// Applies a variable renaming/substitution to the atom's terms.
    pub fn map_terms(&self, f: impl FnMut(&Term) -> Term) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self.terms.iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Atom {
        Atom::new(
            "R",
            vec![
                Term::Var(VarId(0)),
                Term::Const("a".to_owned()),
                Term::Var(VarId(1)),
                Term::Var(VarId(0)),
            ],
        )
    }

    #[test]
    fn variables_and_constants() {
        let a = atom();
        assert_eq!(a.arity(), 4);
        assert_eq!(a.variables(), vec![VarId(0), VarId(1)]);
        assert_eq!(a.constants(), vec!["a"]);
        assert!(a.mentions(VarId(0)));
        assert!(!a.mentions(VarId(7)));
        assert_eq!(a.positions_of(VarId(0)), vec![0, 3]);
    }

    #[test]
    fn map_terms_substitutes() {
        let a = atom();
        let substituted = a.map_terms(|t| match t {
            Term::Var(VarId(0)) => Term::Const("zero".to_owned()),
            other => other.clone(),
        });
        assert_eq!(substituted.variables(), vec![VarId(1)]);
        assert_eq!(substituted.constants(), vec!["zero", "a"]);
    }
}
