//! Conjunctive queries for the OMQ enumeration library.
//!
//! This crate implements the query-side formalism of *Efficiently Enumerating
//! Answers to Ontology-Mediated Queries* (Lutz & Przybyłko, PODS 2022):
//!
//! * the **conjunctive query** AST and a small text syntax
//!   (`q(x, y) :- R(x, z), S(z, y)`), see [`ConjunctiveQuery`] and [`parser`];
//! * **hypergraphs**, the **GYO reduction** and **join trees**, see
//!   [`hypergraph`];
//! * the acyclicity notions of the paper — *acyclic*, *weakly acyclic*,
//!   *free-connex acyclic* — together with self-join freeness, connectedness
//!   and *bad paths*, see [`acyclicity`];
//! * the **canonical database** `D_q` of a query, see [`canonical`];
//! * **homomorphism search** from a query into a database (used by the
//!   brute-force baselines, the chase machinery and the testers), see
//!   [`homomorphism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclicity;
pub mod atom;
pub mod canonical;
pub mod error;
pub mod homomorphism;
pub mod hypergraph;
pub mod parser;
pub mod query;
pub mod term;

pub use acyclicity::AcyclicityReport;
pub use atom::Atom;
pub use error::CqError;
pub use homomorphism::{Assignment, HomSearch};
pub use hypergraph::{Hypergraph, JoinTree, RootedJoinTree};
pub use query::ConjunctiveQuery;
pub use term::{Term, VarId};

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CqError>;
