//! Terms of conjunctive queries: variables and constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a variable within one [`crate::ConjunctiveQuery`].
///
/// Variables are interned per query; the query stores the original names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// A term: a variable or a constant (referred to by name; constants are
/// resolved against a concrete database only at evaluation time).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant, by name.
    Const(String),
}

impl Term {
    /// Returns the variable identifier, if this term is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Returns `true` iff this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` iff this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_classification() {
        let v = Term::Var(VarId(0));
        let c = Term::Const("mary".to_owned());
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.as_var(), Some(VarId(0)));
        assert_eq!(c.as_var(), None);
    }
}
