//! The canonical database `D_q` of a conjunctive query.
//!
//! Every CQ `q` can be viewed as a database obtained by treating its variables
//! as fresh constants.  The canonical database is used by the chase (TGD heads
//! are instantiated from their canonical databases) and by the brute-force
//! baselines.

use crate::query::ConjunctiveQuery;
use crate::term::{Term, VarId};
use crate::Result;
use omq_data::{ConstId, Database, Fact, Schema, Value};
use rustc_hash::FxHashMap;

/// The canonical database of a query, together with the mapping from query
/// variables to the constants that represent them.
#[derive(Debug, Clone)]
pub struct CanonicalDatabase {
    /// The database `D_q`.
    pub database: Database,
    /// Mapping from query variables to their representing constants.
    pub var_constants: FxHashMap<VarId, ConstId>,
}

/// Builds the canonical database of `query`.
///
/// Variables are represented by constants named `_v:<name>`; query constants
/// keep their own names.
pub fn canonical_database(query: &ConjunctiveQuery) -> Result<CanonicalDatabase> {
    let mut schema = Schema::new();
    for (name, arity) in query.relations()? {
        schema.add_relation(&name, arity)?;
    }
    let mut db = Database::new(schema);
    let mut var_constants: FxHashMap<VarId, ConstId> = FxHashMap::default();
    for v in query.body_vars() {
        let c = db.intern_const(&format!("_v:{}", query.var_name(v)));
        var_constants.insert(v, c);
    }
    for atom in query.atoms() {
        let rel = db.schema().require(&atom.relation)?;
        let args: Vec<Value> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Value::Const(var_constants[v]),
                // Placeholder; constants are interned in the second pass below.
                Term::Const(c) => Value::Const(db.const_id(c).unwrap_or(ConstId(u32::MAX))),
            })
            .collect();
        // Second pass to intern constants (cannot intern while immutably
        // borrowing above).
        let args: Vec<Value> = atom
            .terms
            .iter()
            .zip(args)
            .map(|(t, v)| match t {
                Term::Const(c) => Value::Const(db.intern_const(c)),
                Term::Var(_) => v,
            })
            .collect();
        db.add_fact(Fact::new(rel, args))?;
    }
    Ok(CanonicalDatabase {
        database: db,
        var_constants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_database_of_path_query() {
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y, 'alice')").unwrap();
        let canonical = canonical_database(&q).unwrap();
        let db = &canonical.database;
        assert_eq!(db.len(), 2);
        assert_eq!(db.adom().len(), 3); // x, y, alice
        let x = q.var_id("x").unwrap();
        let cx = canonical.var_constants[&x];
        assert_eq!(db.const_name(cx), "_v:x");
        assert!(db.const_id("alice").is_some());
    }

    #[test]
    fn repeated_variables_share_a_constant() {
        let q = ConjunctiveQuery::parse("q() :- R(x, x)").unwrap();
        let canonical = canonical_database(&q).unwrap();
        let fact = &canonical.database.facts()[0];
        assert_eq!(fact.args[0], fact.args[1]);
    }

    #[test]
    fn arity_conflicts_are_reported() {
        use crate::atom::Atom;
        use crate::term::Term;
        let mut q = ConjunctiveQuery::empty("q");
        let x = q.var("x");
        let y = q.var("y");
        q.push_atom(Atom::new("R", vec![Term::Var(x)]));
        q.push_atom(Atom::new("R", vec![Term::Var(x), Term::Var(y)]));
        assert!(canonical_database(&q).is_err());
    }
}
