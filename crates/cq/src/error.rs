//! Error type for the conjunctive-query crate.

use std::fmt;

/// Errors raised while parsing or manipulating conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// The textual syntax could not be parsed.
    Parse(String),
    /// An answer variable does not occur in the query body.
    UnboundAnswerVariable(String),
    /// A relation symbol is used with two different arities inside the query.
    ArityConflict {
        /// Relation symbol.
        relation: String,
        /// First arity seen.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// An operation required an acyclic query but the query is not acyclic.
    NotAcyclic(String),
    /// A data-layer error bubbled up (e.g. while building a canonical
    /// database).
    Data(omq_data::DataError),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::Parse(msg) => write!(f, "parse error: {msg}"),
            CqError::UnboundAnswerVariable(v) => {
                write!(f, "answer variable `{v}` does not occur in the query body")
            }
            CqError::ArityConflict {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation `{relation}` used with conflicting arities {first} and {second}"
            ),
            CqError::NotAcyclic(what) => write!(f, "query is not acyclic: {what}"),
            CqError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CqError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<omq_data::DataError> for CqError {
    fn from(e: omq_data::DataError) -> Self {
        CqError::Data(e)
    }
}
