//! Yannakakis-style evaluation of acyclic conjunctive queries.
//!
//! The paper uses Yannakakis' algorithm as a black box for linear-time
//! single-testing (Theorem 3.1): ground the (weakly acyclic) query with the
//! candidate answer, obtain an acyclic Boolean query, and evaluate it with a
//! bottom-up semijoin pass over a join tree.

use crate::error::CoreError;
use crate::extension::Extension;
use crate::Result;
use omq_cq::acyclicity;
use omq_cq::homomorphism;
use omq_cq::ConjunctiveQuery;
use omq_data::Database;
use rustc_hash::FxHashSet;

/// Decides a Boolean acyclic query by a bottom-up semijoin pass.
///
/// Returns an error if the query is not acyclic.
pub fn boolean_holds_acyclic(query: &ConjunctiveQuery, db: &Database) -> Result<bool> {
    if query.atoms().is_empty() {
        return Ok(true);
    }
    let tree =
        acyclicity::join_tree(query).ok_or_else(|| CoreError::NotAcyclic(query.to_string()))?;
    let mut extensions: Vec<Extension> = query
        .atoms()
        .iter()
        .map(|a| Extension::of_atom(a, db, &FxHashSet::default()))
        .collect();
    if extensions.iter().any(Extension::is_empty) {
        return Ok(false);
    }
    let root = tree.nodes()[0];
    let rooted = tree.rooted_at(root);
    for &node in &rooted.bottom_up() {
        for &child in rooted.children_of(node) {
            // Split the borrow: children and parents are distinct indices.
            let child_ext = extensions[child].clone();
            let changed = extensions[node].semijoin(&child_ext);
            if changed && extensions[node].is_empty() {
                return Ok(false);
            }
        }
    }
    Ok(!extensions[root].is_empty())
}

/// Decides a Boolean query: uses the linear-time acyclic procedure when the
/// query is acyclic and falls back to backtracking homomorphism search
/// otherwise.
pub fn boolean_holds(query: &ConjunctiveQuery, db: &Database) -> bool {
    match boolean_holds_acyclic(query, db) {
        Ok(answer) => answer,
        Err(_) => homomorphism::holds(query, db),
    }
}

/// Single-tests a complete candidate answer of a plain CQ (no ontology):
/// substitutes the candidate constants for the answer variables and decides
/// the resulting Boolean query.
pub fn single_test_cq(
    query: &ConjunctiveQuery,
    db: &Database,
    candidate: &[String],
) -> Result<bool> {
    if candidate.len() != query.arity() {
        return Err(CoreError::ArityMismatch {
            expected: query.arity(),
            actual: candidate.len(),
        });
    }
    let grounded = query.substitute_answer_constants(candidate)?;
    Ok(boolean_holds(&grounded, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("T", 2).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("S", ["b", "c"])
            .fact("T", ["c", "a"])
            .fact("R", ["x", "y"])
            .build()
            .unwrap()
    }

    #[test]
    fn acyclic_boolean_path() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        assert!(boolean_holds_acyclic(&q, &db()).unwrap());
        let q2 = ConjunctiveQuery::parse("q() :- S(x, y), R(y, z)").unwrap();
        assert!(!boolean_holds_acyclic(&q2, &db()).unwrap());
    }

    #[test]
    fn cyclic_query_is_rejected_then_falls_back() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z), T(z, x)").unwrap();
        assert!(matches!(
            boolean_holds_acyclic(&q, &db()),
            Err(CoreError::NotAcyclic(_))
        ));
        // The triangle a -> b -> c -> a exists.
        assert!(boolean_holds(&q, &db()));
    }

    #[test]
    fn empty_body_is_trivially_true() {
        let q = ConjunctiveQuery::parse("q() :- ").unwrap();
        assert!(boolean_holds_acyclic(&q, &db()).unwrap());
    }

    #[test]
    fn disconnected_boolean_query() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), T(u, v)").unwrap();
        assert!(boolean_holds_acyclic(&q, &db()).unwrap());
        let q2 = ConjunctiveQuery::parse("q() :- R(x, y), Missing(u)").unwrap();
        assert!(!boolean_holds_acyclic(&q2, &db()).unwrap());
    }

    #[test]
    fn single_test_complete_candidates() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(single_test_cq(&q, &db(), &["a".into(), "c".into()]).unwrap());
        assert!(!single_test_cq(&q, &db(), &["a".into(), "a".into()]).unwrap());
        assert!(!single_test_cq(&q, &db(), &["zzz".into(), "c".into()]).unwrap());
        assert!(matches!(
            single_test_cq(&q, &db(), &["a".into()]),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn single_test_with_repeated_answer_vars() {
        let q = ConjunctiveQuery::parse("q(x, x) :- R(x, y)").unwrap();
        assert!(single_test_cq(&q, &db(), &["a".into(), "a".into()]).unwrap());
        assert!(!single_test_cq(&q, &db(), &["a".into(), "x".into()]).unwrap());
    }

    #[test]
    fn agrees_with_brute_force_on_examples() {
        let database = db();
        for text in [
            "q() :- R(x, y), S(y, z), T(z, x)",
            "q() :- R(x, y), S(y, z)",
            "q() :- R(x, x)",
            "q() :- R(x, y), R(y, z)",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            assert_eq!(
                boolean_holds(&q, &database),
                homomorphism::holds(&q, &database),
                "{text}"
            );
        }
    }
}
