//! All-testing of complete answers (Theorem 4.1(2) and Proposition 4.2).
//!
//! An all-testing algorithm has a preprocessing phase (linear in the database)
//! followed by a testing phase in which candidate tuples are answered
//! `yes`/`no` in constant time each.  For *free-connex acyclic* queries (not
//! necessarily acyclic!), the paper decomposes the query along the join tree
//! of `q⁺` into components that are each acyclic and free-connex acyclic, and
//! tests a candidate by testing its projection on every component
//! (Proposition 4.2).

use crate::error::CoreError;
use crate::extension::Tuple;
use crate::preprocess::FreeConnexStructure;
use crate::Result;
use omq_cq::acyclicity::{self, guard_node_id};
use omq_cq::{ConjunctiveQuery, VarId};
use omq_data::{Database, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// One decomposed component: the tuple sets of its `q₁` nodes.
#[derive(Debug, Clone)]
struct ComponentTester {
    /// `(vars, tuples)` per node of the component's preprocessed structure.
    nodes: Vec<(Vec<VarId>, FxHashSet<Tuple>)>,
    /// `Some(false)` if the component is an unsatisfiable Boolean filter.
    boolean: Option<bool>,
    /// The component has no answer at all.
    empty: bool,
}

/// A prepared all-tester for a free-connex acyclic query over a fixed
/// database.
#[derive(Debug, Clone)]
pub struct AllTester {
    query: ConjunctiveQuery,
    components: Vec<ComponentTester>,
    /// For Boolean queries: the query's truth value.
    boolean: Option<bool>,
}

impl AllTester {
    /// Preprocesses `query` over `db`.  Requires the query to be free-connex
    /// acyclic.  When `complete_only` is set, candidate values are implicitly
    /// restricted to constants (the `P_db` relativisation).
    pub fn build(query: &ConjunctiveQuery, db: &Database, complete_only: bool) -> Result<Self> {
        query.validate()?;
        if !acyclicity::is_free_connex_acyclic(query) {
            return Err(CoreError::NotFreeConnex(query.to_string()));
        }
        if query.is_boolean() {
            let holds = crate::yannakakis::boolean_holds(query, db);
            return Ok(AllTester {
                query: query.clone(),
                components: Vec::new(),
                boolean: Some(holds),
            });
        }
        let guard = guard_node_id(query);
        let tree_plus = acyclicity::join_tree_plus(query)
            .ok_or_else(|| CoreError::NotFreeConnex(query.to_string()))?;
        let rooted = tree_plus.rooted_at(guard);
        let answer_set: FxHashSet<VarId> = query.distinct_answer_vars().into_iter().collect();

        let mut components = Vec::new();
        for &child in rooted.children_of(guard) {
            let atom_indices = rooted.subtree(child);
            // Build the component query, reusing the original variable ids by
            // interning the variable names in identical order.
            let mut component = ConjunctiveQuery::empty(format!("{}_comp", query.name));
            for v in 0..query.var_count() {
                component.var(query.var_name(VarId(v as u32)));
            }
            let mut component_vars: FxHashSet<VarId> = FxHashSet::default();
            for &ai in &atom_indices {
                let atom = query.atoms()[ai].clone();
                for v in atom.variables() {
                    component_vars.insert(v);
                }
                component.push_atom(atom);
            }
            for v in query.distinct_answer_vars() {
                if component_vars.contains(&v) && answer_set.contains(&v) {
                    component.push_answer_var(v);
                }
            }
            let structure = FreeConnexStructure::build(&component, db, complete_only)?;
            let tester = ComponentTester {
                nodes: structure
                    .nodes
                    .iter()
                    .map(|n| (n.vars.clone(), n.extension.tuple_set()))
                    .collect(),
                boolean: structure.boolean_satisfiable,
                empty: structure.empty,
            };
            components.push(tester);
        }
        Ok(AllTester {
            query: query.clone(),
            components,
            boolean: None,
        })
    }

    /// Tests a candidate tuple (over the query's answer positions) in time
    /// independent of the database.
    pub fn test(&self, candidate: &[Value]) -> Result<bool> {
        if candidate.len() != self.query.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.query.arity(),
                actual: candidate.len(),
            });
        }
        if let Some(answer) = self.boolean {
            return Ok(answer);
        }
        // Coherence: repeated answer variables must carry equal values.
        let mut assignment: FxHashMap<VarId, Value> = FxHashMap::default();
        for (&var, &value) in self.query.answer_vars().iter().zip(candidate) {
            match assignment.get(&var) {
                Some(&existing) if existing != value => return Ok(false),
                Some(_) => {}
                None => {
                    assignment.insert(var, value);
                }
            }
        }
        for component in &self.components {
            if component.empty {
                return Ok(false);
            }
            if let Some(holds) = component.boolean {
                if !holds {
                    return Ok(false);
                }
                continue;
            }
            for (vars, tuples) in &component.nodes {
                let projection: Tuple = vars.iter().map(|v| assignment[v]).collect();
                if !tuples.contains(&projection) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_cq::homomorphism;
    use omq_data::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("T", 2).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["b", "c"])
            .fact("R", ["c", "a"])
            .fact("S", ["b", "c"])
            .fact("S", ["c", "d"])
            .fact("T", ["c", "a"])
            .fact("T", ["d", "b"])
            .build()
            .unwrap()
    }

    fn assert_agrees_with_brute_force(query_text: &str, database: &Database) {
        let q = ConjunctiveQuery::parse(query_text).unwrap();
        let tester = AllTester::build(&q, database, false).unwrap();
        let answers: FxHashSet<Vec<Value>> =
            homomorphism::evaluate(&q, database).into_iter().collect();
        // Test every tuple over the active domain of the right arity (the
        // databases are tiny, so this is feasible).
        let adom: Vec<Value> = database.adom().to_vec();
        let arity = q.arity();
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..arity {
            let mut next = Vec::new();
            for t in &tuples {
                for &v in &adom {
                    let mut extended = t.clone();
                    extended.push(v);
                    next.push(extended);
                }
            }
            tuples = next;
        }
        for t in tuples {
            assert_eq!(
                tester.test(&t).unwrap(),
                answers.contains(&t),
                "query {query_text}, tuple {t:?}"
            );
        }
    }

    #[test]
    fn full_triangle_query_not_acyclic_but_free_connex() {
        // The triangle with all variables free is free-connex acyclic but not
        // acyclic: all-testing works, enumeration preprocessing would not.
        let q = "q(x, y, z) :- R(x, y), S(y, z), T(z, x)";
        assert!(!acyclicity::is_acyclic(
            &ConjunctiveQuery::parse(q).unwrap()
        ));
        assert_agrees_with_brute_force(q, &db());
    }

    #[test]
    fn path_queries_agree_with_brute_force() {
        let database = db();
        for text in [
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x, x) :- R(x, x)",
            "q(x, y, u, v) :- R(x, y), S(u, v)",
        ] {
            assert_agrees_with_brute_force(text, &database);
        }
    }

    #[test]
    fn non_free_connex_query_is_rejected() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            AllTester::build(&q, &db(), false),
            Err(CoreError::NotFreeConnex(_))
        ));
    }

    #[test]
    fn boolean_query_testing() {
        let database = db();
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let tester = AllTester::build(&q, &database, false).unwrap();
        assert!(tester.test(&[]).unwrap());
        let q2 = ConjunctiveQuery::parse("q() :- S(x, x)").unwrap();
        let tester2 = AllTester::build(&q2, &database, false).unwrap();
        assert!(!tester2.test(&[]).unwrap());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let tester = AllTester::build(&q, &db(), false).unwrap();
        assert!(matches!(
            tester.test(&[Value::Const(omq_data::ConstId(0))]),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn repeated_answer_vars_require_coherent_candidates() {
        let database = db();
        let q = ConjunctiveQuery::parse("q(x, x) :- R(x, y)").unwrap();
        let tester = AllTester::build(&q, &database, false).unwrap();
        let a = Value::Const(database.const_id("a").unwrap());
        let b = Value::Const(database.const_id("b").unwrap());
        assert!(tester.test(&[a, a]).unwrap());
        assert!(!tester.test(&[a, b]).unwrap());
    }
}
