//! The compile-once/execute-many evaluation pipeline: [`QueryPlan`] and
//! [`PreparedInstance`].
//!
//! Everything the engines derive from the *query* side of an OMQ — the
//! guardedness check, the acyclicity classification, the GYO join tree and
//! reduced-relation layout ([`PlanSkeleton`]), and the query-directed chase's
//! rule-trigger tables ([`omq_chase::QchasePlan`]) — depends only on the OMQ,
//! not on the data.  A [`QueryPlan`] compiles all of it exactly once;
//! [`QueryPlan::execute`] then evaluates the plan over any number of
//! databases, each call producing a [`PreparedInstance`] that exposes every
//! evaluation mode of the paper over that database's query-directed chase.
//!
//! This is the architectural seam for serving workloads: a fixed catalogue of
//! OMQs is compiled up front, and per-request databases are only charged the
//! data-linear work (chase copy + columnar extension scans), with the chase's
//! bag-type memo amortised across requests.  [`crate::OmqEngine`] remains as
//! a thin per-database facade over a plan plus one instance.

use crate::all_testing::AllTester;
use crate::error::CoreError;
use crate::multi_enum;
use crate::partial_enum::PartialEnumerator;
use crate::preprocess::{FreeConnexStructure, PlanSkeleton};
use crate::single_testing;
use crate::{EngineConfig, PreprocessStats, Result};
use omq_chase::{OntologyMediatedQuery, QchasePlan};
use omq_cq::acyclicity::AcyclicityReport;
use omq_data::{ConstId, Database, MultiTuple, PartialTuple, Value};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct PlanInner {
    omq: OntologyMediatedQuery,
    config: EngineConfig,
    report: AcyclicityReport,
    /// The reduced-relation layout; `None` when the query is not
    /// enumeration-tractable (testing modes still work).
    skeleton: Option<PlanSkeleton>,
    /// Why skeleton compilation failed, for error reporting on demand.
    skeleton_error: Option<String>,
    chase: QchasePlan,
}

/// A compiled evaluation plan for one OMQ, reusable across databases.
///
/// Cheap to clone (the compiled state is shared behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    inner: Arc<PlanInner>,
}

impl QueryPlan {
    /// Compiles a plan with the default configuration.
    ///
    /// Returns an error if the ontology is not guarded.
    pub fn compile(omq: &OntologyMediatedQuery) -> Result<QueryPlan> {
        Self::compile_with(omq, &EngineConfig::default())
    }

    /// Compiles a plan with an explicit configuration.
    pub fn compile_with(omq: &OntologyMediatedQuery, config: &EngineConfig) -> Result<QueryPlan> {
        if !omq.is_guarded() {
            return Err(CoreError::NotGuarded(
                omq.ontology()
                    .first_unguarded()
                    .map(|t| t.to_string())
                    .unwrap_or_default(),
            ));
        }
        let report = omq.classify();
        let (skeleton, skeleton_error) = match PlanSkeleton::compile(omq.query()) {
            Ok(skeleton) => (Some(skeleton), None),
            Err(e) => (None, Some(e.to_string())),
        };
        let chase = QchasePlan::new(omq, &config.qchase)?;
        Ok(QueryPlan {
            inner: Arc::new(PlanInner {
                omq: omq.clone(),
                config: *config,
                report,
                skeleton,
                skeleton_error,
                chase,
            }),
        })
    }

    /// The OMQ this plan evaluates.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        &self.inner.omq
    }

    /// The configuration the plan was compiled with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The acyclicity classification of the query.
    pub fn report(&self) -> &AcyclicityReport {
        &self.inner.report
    }

    /// The compiled reduced-relation layout, or an error if the query is not
    /// both acyclic and free-connex acyclic.
    pub fn skeleton(&self) -> Result<&PlanSkeleton> {
        self.inner.skeleton.as_ref().ok_or_else(|| {
            CoreError::NotEnumerationTractable(
                self.inner
                    .skeleton_error
                    .clone()
                    .unwrap_or_else(|| self.inner.omq.query().to_string()),
            )
        })
    }

    /// The reusable query-directed chase plan.
    pub fn chase_plan(&self) -> &QchasePlan {
        &self.inner.chase
    }

    /// Executes the plan over a database: runs the linear-time preprocessing
    /// (query-directed chase, reusing the plan's memoised bag-type tables)
    /// and returns a [`PreparedInstance`] exposing every evaluation mode.
    pub fn execute(&self, db: &Database) -> Result<PreparedInstance> {
        let start = Instant::now();
        let chased = self.inner.chase.chase(db)?;
        let stats = PreprocessStats {
            input_facts: db.len(),
            chased_facts: chased.database.len(),
            chase_micros: start.elapsed().as_micros(),
            grafts: chased.grafts,
            memo_hits: chased.memo_hits,
            saturation_converged: chased.saturation_converged,
        };
        Ok(PreparedInstance {
            plan: self.clone(),
            d0: chased.database,
            stats,
        })
    }
}

/// A plan executed over one database: the query-directed chase `ch^q_O(D)`
/// plus every evaluation mode of the paper over it.
#[derive(Debug)]
pub struct PreparedInstance {
    plan: QueryPlan,
    d0: Database,
    stats: PreprocessStats,
}

impl PreparedInstance {
    /// The plan this instance was produced by.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The OMQ being evaluated.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        self.plan.omq()
    }

    /// The query-directed chase `ch^q_O(D)` the instance evaluates over.
    pub fn chased_database(&self) -> &Database {
        &self.d0
    }

    /// Preprocessing statistics of this execution.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Complete answers.
    // ------------------------------------------------------------------

    /// Builds the constant-delay enumeration structure for complete answers
    /// (Theorem 4.1(1)).  Requires the query to be acyclic and free-connex
    /// acyclic.
    pub fn complete_structure(&self) -> Result<FreeConnexStructure> {
        FreeConnexStructure::materialize(self.plan.skeleton()?, &self.d0, true)
    }

    /// Builds the enumeration structure for partial answers (labelled nulls
    /// kept), shared by the wildcard engines.
    pub fn partial_structure(&self) -> Result<FreeConnexStructure> {
        FreeConnexStructure::materialize(self.plan.skeleton()?, &self.d0, false)
    }

    /// Enumerates all complete (certain) answers.
    pub fn enumerate_complete(&self) -> Result<Vec<Vec<ConstId>>> {
        let structure = self.complete_structure()?;
        let mut out = Vec::new();
        for answer in crate::enumerate::AnswerIter::new(&structure) {
            out.push(
                answer
                    .into_iter()
                    .map(|v| match v {
                        Value::Const(c) => Ok(c),
                        Value::Null(_) => Err(CoreError::Internal(
                            "complete answer contains a null".to_owned(),
                        )),
                    })
                    .collect::<Result<Vec<ConstId>>>()?,
            );
        }
        Ok(out)
    }

    /// Streams the complete answers to a callback (useful for measuring the
    /// per-answer delay).
    pub fn stream_complete(&self, mut f: impl FnMut(&[Value])) -> Result<usize> {
        let structure = self.complete_structure()?;
        let mut count = 0usize;
        for answer in crate::enumerate::AnswerIter::new(&structure) {
            count += 1;
            f(&answer);
        }
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Minimal partial answers.
    // ------------------------------------------------------------------

    /// Builds the Algorithm 1 enumerator (linear-time preprocessing of
    /// Theorem 5.2).  The returned enumerator is consumed by a single
    /// enumeration run; build a new one to re-enumerate.
    pub fn partial_enumerator(&self) -> Result<PartialEnumerator> {
        PartialEnumerator::with_skeleton(self.plan.skeleton()?, &self.d0)
    }

    /// Enumerates the minimal partial answers (single wildcard, Theorem 5.2).
    pub fn enumerate_minimal_partial(&self) -> Result<Vec<PartialTuple>> {
        self.partial_enumerator()?.collect()
    }

    /// Streams the minimal partial answers to a callback.
    pub fn stream_minimal_partial(&self, mut f: impl FnMut(&PartialTuple)) -> Result<usize> {
        let mut count = 0usize;
        self.partial_enumerator()?.enumerate(|t| {
            count += 1;
            f(&t);
        })?;
        Ok(count)
    }

    /// Enumerates the minimal partial answers with all complete answers first
    /// (Proposition 2.1).
    pub fn enumerate_minimal_partial_complete_first(&self) -> Result<Vec<PartialTuple>> {
        multi_enum::minimal_partial_answers_complete_first_prepared(self.plan.skeleton()?, &self.d0)
    }

    /// Enumerates the minimal partial answers with multi-wildcards
    /// (Theorem 6.1).
    pub fn enumerate_minimal_partial_multi(&self) -> Result<Vec<MultiTuple>> {
        let mut out = Vec::new();
        self.stream_minimal_partial_multi(|t| out.push(t.clone()))?;
        Ok(out)
    }

    /// Streams the minimal partial answers with multi-wildcards to a callback.
    pub fn stream_minimal_partial_multi(&self, mut f: impl FnMut(&MultiTuple)) -> Result<usize> {
        let mut count = 0usize;
        multi_enum::enumerate_minimal_partial_multi_prepared(
            self.plan.skeleton()?,
            &self.d0,
            |t| {
                count += 1;
                f(&t);
            },
        )?;
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Testing.
    // ------------------------------------------------------------------

    /// Builds the all-tester for complete answers (Theorem 4.1(2)); requires
    /// the query to be free-connex acyclic (acyclicity is *not* required).
    pub fn all_tester(&self) -> Result<AllTester> {
        AllTester::build(self.omq().query(), &self.d0, true)
    }

    /// Single-tests a complete answer given by constant names.
    pub fn test_complete_names(&self, names: &[&str]) -> Result<bool> {
        let values = match single_testing::resolve_constants(&self.d0, names) {
            Ok(v) => v,
            // A name that does not occur in the data cannot be an answer.
            Err(CoreError::UnknownConstant(_)) => return Ok(false),
            Err(e) => return Err(e),
        };
        single_testing::test_complete(self.omq().query(), &self.d0, &values)
    }

    /// Single-tests a minimal partial answer (single wildcard).
    pub fn test_minimal_partial(&self, candidate: &PartialTuple) -> Result<bool> {
        single_testing::test_minimal_partial(self.omq().query(), &self.d0, candidate)
    }

    /// Single-tests a minimal partial answer with multi-wildcards.
    pub fn test_minimal_partial_multi(&self, candidate: &MultiTuple) -> Result<bool> {
        single_testing::test_minimal_partial_multi(self.omq().query(), &self.d0, candidate)
    }

    // ------------------------------------------------------------------
    // Convenience / display.
    // ------------------------------------------------------------------

    /// Resolves constant names to identifiers of the chased database.
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<ConstId>> {
        names
            .iter()
            .map(|n| {
                self.d0
                    .const_id(n)
                    .ok_or_else(|| CoreError::UnknownConstant((*n).to_owned()))
            })
            .collect()
    }

    /// Builds a partial tuple from constant names and `*` wildcards.
    pub fn parse_partial(&self, spec: &[&str]) -> Result<PartialTuple> {
        let values = spec
            .iter()
            .map(|s| {
                if *s == "*" {
                    Ok(omq_data::PartialValue::Star)
                } else {
                    self.d0
                        .const_id(s)
                        .map(omq_data::PartialValue::Const)
                        .ok_or_else(|| CoreError::UnknownConstant((*s).to_owned()))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PartialTuple(values))
    }

    /// Renders a complete answer with constant names.
    pub fn format_complete(&self, answer: &[ConstId]) -> String {
        let names: Vec<&str> = answer.iter().map(|&c| self.d0.const_name(c)).collect();
        format!("({})", names.join(","))
    }

    /// Renders a partial answer with constant names.
    pub fn format_partial(&self, answer: &PartialTuple) -> String {
        answer.display_with(|c| self.d0.const_name(c).to_owned())
    }

    /// Renders a multi-wildcard answer with constant names.
    pub fn format_multi(&self, answer: &MultiTuple) -> String {
        answer.display_with(|c| self.d0.const_name(c).to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OmqEngine;
    use omq_chase::Ontology;
    use omq_cq::ConjunctiveQuery;
    use omq_data::Schema;
    use rustc_hash::FxHashSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s
    }

    fn db_one() -> Database {
        Database::builder(schema())
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    fn db_two() -> Database {
        Database::builder(schema())
            .fact("Researcher", ["ada"])
            .fact("Researcher", ["bob"])
            .fact("HasOffice", ["ada", "lab2"])
            .fact("InBuilding", ["lab2", "west"])
            .fact("InBuilding", ["lab9", "east"])
            .build()
            .unwrap()
    }

    fn rendered_partial(instance: &PreparedInstance) -> FxHashSet<String> {
        instance
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| instance.format_partial(t))
            .collect()
    }

    #[test]
    fn one_plan_many_databases_matches_fresh_engines() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for db in [db_one(), db_two()] {
            let instance = plan.execute(&db).unwrap();
            let engine = OmqEngine::preprocess(&omq, &db).unwrap();
            // Complete answers.
            let via_plan: FxHashSet<String> = instance
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| instance.format_complete(a))
                .collect();
            let via_engine: FxHashSet<String> = engine
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| engine.format_complete(a))
                .collect();
            assert_eq!(via_plan, via_engine);
            // Minimal partial answers.
            let engine_partial: FxHashSet<String> = engine
                .enumerate_minimal_partial()
                .unwrap()
                .iter()
                .map(|t| engine.format_partial(t))
                .collect();
            assert_eq!(rendered_partial(&instance), engine_partial);
            // Multi-wildcard answers.
            let via_plan: FxHashSet<String> = instance
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| instance.format_multi(t))
                .collect();
            let via_engine: FxHashSet<String> = engine
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| engine.format_multi(t))
                .collect();
            assert_eq!(via_plan, via_engine);
        }
    }

    #[test]
    fn second_execution_reuses_chase_memo() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let first = plan.execute(&db_one()).unwrap();
        let types = plan.chase_plan().memoized_bag_types();
        assert!(types > 0);
        let second = plan.execute(&db_one()).unwrap();
        // Same shape, so the second run hits the memo for every bag.
        assert!(second.stats().memo_hits >= first.stats().memo_hits);
        assert_eq!(plan.chase_plan().memoized_bag_types(), types);
    }

    #[test]
    fn unguarded_ontology_is_rejected_at_compile_time() {
        let ontology = Ontology::parse("R(x, y), S(y, z) -> T(x, z)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, z) :- T(x, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        assert!(matches!(
            QueryPlan::compile(&omq),
            Err(CoreError::NotGuarded(_))
        ));
    }

    #[test]
    fn intractable_query_compiles_but_enumeration_errors() {
        // Projected path: weakly acyclic (testing works), not
        // enumeration-tractable.
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let plan = QueryPlan::compile(&omq).unwrap();
        assert!(plan.skeleton().is_err());
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        let db = Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("S", ["b", "c"])
            .build()
            .unwrap();
        let instance = plan.execute(&db).unwrap();
        assert!(matches!(
            instance.enumerate_complete(),
            Err(CoreError::NotEnumerationTractable(_))
        ));
        // Single-testing still works.
        assert!(instance.test_complete_names(&["a", "c"]).unwrap());
        assert!(!instance.test_complete_names(&["a", "b"]).unwrap());
    }
}
