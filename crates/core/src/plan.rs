//! The compile-once/execute-many evaluation pipeline: [`QueryPlan`] and
//! [`PreparedInstance`].
//!
//! Everything the engines derive from the *query* side of an OMQ — the
//! guardedness check, the acyclicity classification, the GYO join tree and
//! reduced-relation layout ([`PlanSkeleton`]), and the query-directed chase's
//! rule-trigger tables ([`omq_chase::QchasePlan`]) — depends only on the OMQ,
//! not on the data.  A [`QueryPlan`] compiles all of it exactly once;
//! [`QueryPlan::execute`] then evaluates the plan over any number of
//! databases, each call producing a [`PreparedInstance`] that exposes every
//! evaluation mode of the paper over that database's query-directed chase.
//!
//! This is the architectural seam for serving workloads: a fixed catalogue of
//! OMQs is compiled up front, and per-request databases are only charged the
//! data-linear work (chase copy + columnar extension scans), with the chase's
//! bag-type memo amortised across requests.  [`crate::OmqEngine`] remains as
//! a thin per-database facade over a plan plus one instance.

use crate::all_testing::AllTester;
use crate::error::CoreError;
use crate::multi_enum;
use crate::parallel::WildcardMerge;
use crate::partial_enum::PartialEnumerator;
use crate::preprocess::{FreeConnexStructure, PlanSkeleton};
use crate::single_testing;
use crate::stream::AnswerStream;
use crate::{EngineConfig, PreprocessStats, Result};
use omq_chase::{OntologyMediatedQuery, QchasePlan};
use omq_cq::acyclicity::AcyclicityReport;
use omq_data::{
    Answer, CommitReceipt, ConstId, Database, MultiTuple, PartialTuple, Semantics, Value,
};
use rustc_hash::{FxHashMap, FxHashSet};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

/// Pull granularity of the wildcard counting loops: large enough to amortise
/// the batched-cursor dispatch, small enough to stay cache-resident.
const COUNT_BATCH: usize = 256;

#[derive(Debug)]
struct PlanInner {
    omq: OntologyMediatedQuery,
    config: EngineConfig,
    report: AcyclicityReport,
    /// The reduced-relation layout; `None` when the query is not
    /// enumeration-tractable (testing modes still work).
    skeleton: Option<PlanSkeleton>,
    /// Why skeleton compilation failed, for error reporting on demand.
    skeleton_error: Option<String>,
    chase: QchasePlan,
}

/// A compiled evaluation plan for one OMQ, reusable across databases.
///
/// Cheap to clone (the compiled state is shared behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    inner: Arc<PlanInner>,
}

impl QueryPlan {
    /// Compiles a plan with the default configuration.
    ///
    /// Returns an error if the ontology is not guarded.
    pub fn compile(omq: &OntologyMediatedQuery) -> Result<QueryPlan> {
        Self::compile_with(omq, &EngineConfig::default())
    }

    /// Compiles a plan with an explicit configuration.
    pub fn compile_with(omq: &OntologyMediatedQuery, config: &EngineConfig) -> Result<QueryPlan> {
        if !omq.is_guarded() {
            return Err(CoreError::NotGuarded(
                omq.ontology()
                    .first_unguarded()
                    .map(|t| t.to_string())
                    .unwrap_or_default(),
            ));
        }
        let report = omq.classify();
        let (skeleton, skeleton_error) = match PlanSkeleton::compile(omq.query()) {
            Ok(skeleton) => (Some(skeleton), None),
            Err(e) => (None, Some(e.to_string())),
        };
        let chase = QchasePlan::new(omq, &config.qchase)?;
        Ok(QueryPlan {
            inner: Arc::new(PlanInner {
                omq: omq.clone(),
                config: *config,
                report,
                skeleton,
                skeleton_error,
                chase,
            }),
        })
    }

    /// The OMQ this plan evaluates.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        &self.inner.omq
    }

    /// The configuration the plan was compiled with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The acyclicity classification of the query.
    pub fn report(&self) -> &AcyclicityReport {
        &self.inner.report
    }

    /// The compiled reduced-relation layout, or an error if the query is not
    /// both acyclic and free-connex acyclic.
    pub fn skeleton(&self) -> Result<&PlanSkeleton> {
        self.inner.skeleton.as_ref().ok_or_else(|| {
            CoreError::NotEnumerationTractable(
                self.inner
                    .skeleton_error
                    .clone()
                    .unwrap_or_else(|| self.inner.omq.query().to_string()),
            )
        })
    }

    /// The reusable query-directed chase plan.
    pub fn chase_plan(&self) -> &QchasePlan {
        &self.inner.chase
    }

    /// Executes the plan over a database: runs the linear-time preprocessing
    /// (query-directed chase, reusing the plan's memoised bag-type tables)
    /// and returns a [`PreparedInstance`] exposing every evaluation mode.
    ///
    /// Accepts anything that views a [`Database`] — `&Database` as before,
    /// or a store [`omq_data::Snapshot`] pinned at some epoch.  Snapshots of
    /// one epoch share a single database allocation, so repeated executions
    /// over them reuse the already-built columnar indexes instead of
    /// recomputing per request.
    ///
    /// For multi-core execution over component-rich databases see
    /// [`QueryPlan::execute_parallel`].
    pub fn execute(&self, db: impl AsRef<Database>) -> Result<PreparedInstance> {
        let db = db.as_ref();
        let start = Instant::now();
        let chased = self.inner.chase.chase(db)?;
        let stats = PreprocessStats {
            input_facts: db.len(),
            chased_facts: chased.database.len(),
            chase_micros: start.elapsed().as_micros(),
            grafts: chased.grafts,
            memo_hits: chased.memo_hits,
            saturation_converged: chased.saturation_converged,
            shards: 1,
            reused_shards: 0,
        };
        Ok(PreparedInstance {
            plan: self.clone(),
            shards: Arc::new(vec![Arc::new(chased.database)]),
            stats,
            provenance: None,
        })
    }

    /// Like [`QueryPlan::execute`], but shards the database by Gaifman
    /// component (one shard per component, keyed by its stable component
    /// root) and records the keys as *provenance*, enabling incremental
    /// maintenance via [`PreparedInstance::refresh`]: after a store commit,
    /// only the components the commit touched are re-chased, and every
    /// untouched shard is spliced into the refreshed instance unchanged.
    ///
    /// Sharding is only sound for connected query bodies (see the `parallel`
    /// module docs); for a disconnected query — or an empty database, which
    /// has no components to key — this falls back to the sequential
    /// [`QueryPlan::execute`] and the resulting instance carries no
    /// provenance, so `refresh` on it degrades to a full re-execution
    /// (still tracked, so the *next* refresh is incremental again when
    /// possible).
    pub fn execute_tracked(&self, db: impl AsRef<Database>) -> Result<PreparedInstance> {
        let db = db.as_ref();
        if !self.omq().query().is_connected() || db.is_empty() {
            return self.execute(db);
        }
        let start = Instant::now();
        let keyed = db.shard_by_component_keyed();
        let (keys, parts): (Vec<Option<u32>>, Vec<Database>) = keyed.into_iter().unzip();
        let chased = self.inner.chase.chase_many(&parts)?;
        let mut stats = PreprocessStats {
            input_facts: db.len(),
            saturation_converged: true,
            shards: chased.len(),
            ..PreprocessStats::default()
        };
        let mut shards = Vec::with_capacity(chased.len());
        for part in chased {
            stats.chased_facts += part.database.len();
            stats.grafts += part.grafts;
            stats.memo_hits += part.memo_hits;
            stats.saturation_converged &= part.saturation_converged;
            shards.push(Arc::new(part.database));
        }
        stats.chase_micros = start.elapsed().as_micros();
        let provenance = Some(Arc::new(Provenance {
            source_revision: db.revision(),
            schema_len: db.schema().len(),
            keys,
        }));
        Ok(PreparedInstance {
            plan: self.clone(),
            shards: Arc::new(shards),
            stats,
            provenance,
        })
    }

    /// Builds a [`PreparedInstance`] from already-chased shard databases
    /// (used by the parallel executor).
    pub(crate) fn instance_from_shards(
        &self,
        shards: Vec<Database>,
        stats: PreprocessStats,
    ) -> PreparedInstance {
        debug_assert!(!shards.is_empty());
        PreparedInstance {
            plan: self.clone(),
            shards: Arc::new(shards.into_iter().map(Arc::new).collect()),
            stats,
            provenance: None,
        }
    }
}

/// Where a tracked instance's shards came from: the source database's
/// revision and the stable component key of every shard, in shard order.
/// [`PreparedInstance::refresh`] matches these keys against the refreshed
/// database's component partition to decide which shards can be reused.
#[derive(Debug)]
struct Provenance {
    /// `Database::revision` of the source at execution time.
    source_revision: u64,
    /// Number of schema relations at execution time; a schema that grew in
    /// the meantime (e.g. `add_relation` in a later transaction) invalidates
    /// the chase outputs' relation-id layout.
    schema_len: usize,
    /// Per shard, its stable component key: the canonical component root
    /// (`None` for the nullary pseudo-component).
    keys: Vec<Option<u32>>,
}

/// A plan executed over one database: the query-directed chase `ch^q_O(D)`
/// plus every evaluation mode of the paper over it.
///
/// A sequential [`QueryPlan::execute`] produces exactly one *shard* (the
/// whole chase); [`QueryPlan::execute_parallel`] produces one shard per
/// Gaifman component group, chased independently.  The unified cursor
/// ([`PreparedInstance::answers`]) and the testers are shard-aware and agree
/// with the sequential result (see `crate::parallel` for why sharding is
/// sound); the structure-level accessors
/// ([`PreparedInstance::complete_structure`] and friends) expose a single
/// chased database and therefore require a single-shard instance.
#[derive(Debug)]
pub struct PreparedInstance {
    plan: QueryPlan,
    /// The chased database(s), one per shard; never empty.  The vector is
    /// shared behind an [`Arc`] so that [`AnswerStream`]s own the data they
    /// enumerate and can outlive the instance; each *shard* is additionally
    /// its own [`Arc`] so that [`PreparedInstance::refresh`] can splice
    /// untouched shards — chase output, columnar indexes and all — into a
    /// successor instance without copying a fact.
    shards: Arc<Vec<Arc<Database>>>,
    stats: PreprocessStats,
    /// Component keys of the shards, present iff the instance was produced
    /// by [`QueryPlan::execute_tracked`] (or a refresh thereof).
    provenance: Option<Arc<Provenance>>,
}

impl PreparedInstance {
    /// The plan this instance was produced by.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The OMQ being evaluated.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        self.plan.omq()
    }

    /// The query-directed chase `ch^q_O(D)` the instance evaluates over.
    ///
    /// For sharded instances this is the *first* shard only; use
    /// [`PreparedInstance::shards`] to see all of them.
    pub fn chased_database(&self) -> &Database {
        &self.shards[0]
    }

    /// The chased shard databases (exactly one for sequential executions).
    ///
    /// Shards share one constant-interner snapshot (constant ids coincide
    /// everywhere), but **labelled nulls are shard-local**: independently
    /// chased shards mint `NullId`s from the same counter, so equal ids in
    /// different shards denote *different* nulls.  Do not union shard fact
    /// sets naively — remap each shard's nulls into a disjoint range first
    /// (e.g. via [`Database::null_counter`] offsets).  The answer semantics
    /// are unaffected: no enumerator or tester ever exposes a raw null.
    ///
    /// Each shard sits behind its own [`Arc`]: instances produced by
    /// [`PreparedInstance::refresh`] share the untouched shards of their
    /// predecessor by pointer (observable via [`Arc::ptr_eq`]).
    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// Number of shards of this instance.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The database used for symbol resolution and formatting.  All shards
    /// share one interner snapshot, so any of them resolves every constant.
    fn symbols(&self) -> &Database {
        &self.shards[0]
    }

    /// The sole shard, or an error naming the single-shard-only operation.
    fn single_shard(&self, op: &str) -> Result<&Database> {
        match self.shards.as_slice() {
            [single] => Ok(single),
            _ => Err(CoreError::ShardedInstance(op.to_owned())),
        }
    }

    /// Incrementally re-executes the plan after a store commit, reusing
    /// every shard whose Gaifman component the commit did not touch.
    ///
    /// `db` is the store's head *after* the commit and `receipt` the
    /// [`CommitReceipt`] that commit returned.  The dirty components are read
    /// off the receipt's delta window (`db.facts()[receipt.base_facts..]`):
    /// only those are re-chased (sharing the plan's bag-type memo), and the
    /// remaining shards of `self` are spliced into the new instance by
    /// [`Arc`]-clone — their chase output and columnar indexes are not
    /// recomputed ([`PreprocessStats::reused_shards`] counts them).  The
    /// freshly chased shards are ordered *first*, so the time to the first
    /// answer of a post-refresh [`PreparedInstance::answers`] stream scales
    /// with the delta's chase, not with `|D|`.
    ///
    /// Falls back to a full (tracked) re-execution whenever incremental
    /// maintenance would be unsound or the lineage cannot be verified:
    ///
    /// * `self` carries no provenance (sequential/parallel execution,
    ///   disconnected query, or empty source database);
    /// * the commit added relation symbols, or the schema length changed
    ///   (chase outputs bake in relation ids);
    /// * the receipt does not chain `self`'s source revision to `db`'s
    ///   current revision (a commit was skipped, or `db` mutated since);
    /// * an insert merged two previously separate components (the reusable
    ///   partition no longer exists).
    ///
    /// The fallback is transparent: the result is always answer-equivalent
    /// to `self.plan().execute(db)` (property-tested in
    /// `tests/incremental_maintenance.rs`).
    ///
    /// # Errors
    ///
    /// Besides chase errors, surfaces [`omq_data::DataError::StaleIndex`]
    /// (as `CoreError::Data`) if a shard selected for reuse carries a
    /// columnar index that no longer matches the shard's revision — a bug
    /// guard; shards are immutable once published.
    pub fn refresh(
        &self,
        db: impl AsRef<Database>,
        receipt: &CommitReceipt,
    ) -> Result<PreparedInstance> {
        let db = db.as_ref();
        let Some(prov) = &self.provenance else {
            return self.plan.execute_tracked(db);
        };
        if receipt.new_relations > 0
            || prov.source_revision != receipt.base_revision
            || db.revision() != receipt.revision
            || db.schema().len() != prov.schema_len
            || receipt.base_facts > db.len()
            || prov.keys.len() != self.shards.len()
        {
            return self.plan.execute_tracked(db);
        }
        if receipt.new_facts == 0 {
            // No-effect commit: the head did not change, share everything.
            let mut stats = self.stats;
            stats.chase_micros = 0;
            stats.reused_shards = self.shards.len();
            return Ok(PreparedInstance {
                plan: self.plan.clone(),
                shards: Arc::clone(&self.shards),
                stats,
                provenance: self.provenance.clone(),
            });
        }
        let start = Instant::now();
        // Dirty set: the components the delta facts landed in, under the
        // *new* head's partition.
        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        let mut nullary_dirty = false;
        for fact in &db.facts()[receipt.base_facts..] {
            match fact.args.first() {
                Some(&v) => {
                    let Some(root) = db.component_root(v) else {
                        // A fact argument always has a component root; treat
                        // a miss as lineage corruption and rebuild.
                        return self.plan.execute_tracked(db);
                    };
                    dirty.insert(root);
                }
                None => nullary_dirty = true,
            }
        }
        // Re-canonicalise every old shard key against the new partition.  If
        // two old components collapsed onto one root, a delta fact bridged
        // them: the old shard boundaries are gone, fall back to a rebuild.
        let mut owner: FxHashMap<u32, usize> = FxHashMap::default();
        let mut new_keys: Vec<Option<u32>> = Vec::with_capacity(prov.keys.len());
        for (idx, key) in prov.keys.iter().enumerate() {
            match key {
                Some(old_root) => {
                    let Some(root) = db.component_root_of_code(*old_root) else {
                        return self.plan.execute_tracked(db);
                    };
                    if owner.insert(root, idx).is_some() {
                        return self.plan.execute_tracked(db);
                    }
                    new_keys.push(Some(root));
                }
                None => new_keys.push(None),
            }
        }
        // Re-chase the dirty components from the new head.  Each component
        // database carries *all* of the component's facts (old and new), so
        // grown components and brand-new ones are handled uniformly.
        let mut fresh_roots: Vec<u32> = dirty.iter().copied().collect();
        fresh_roots.sort_unstable();
        let mut parts: Vec<Database> = fresh_roots
            .iter()
            .map(|&root| db.component_database(root))
            .collect();
        if nullary_dirty {
            parts.push(db.nullary_database());
        }
        let chased = self.plan.chase_plan().chase_many(&parts)?;
        let mut stats = PreprocessStats {
            input_facts: db.len(),
            saturation_converged: self.stats.saturation_converged,
            ..PreprocessStats::default()
        };
        // Fresh shards first: they derive from the new head (so the symbol
        // shard resolves every constant, including ones this commit minted)
        // and they are delta-sized, which is what makes post-refresh
        // time-to-first-answer proportional to the delta.
        let fresh_keys = fresh_roots
            .iter()
            .map(|&root| Some(root))
            .chain(nullary_dirty.then_some(None));
        let mut shards: Vec<Arc<Database>> = Vec::new();
        let mut keys: Vec<Option<u32>> = Vec::new();
        for (part, key) in chased.into_iter().zip(fresh_keys) {
            stats.chased_facts += part.database.len();
            stats.grafts += part.grafts;
            stats.memo_hits += part.memo_hits;
            stats.saturation_converged &= part.saturation_converged;
            shards.push(Arc::new(part.database));
            keys.push(key);
        }
        // Then the untouched shards of the predecessor, spliced by pointer.
        for (old_idx, key) in new_keys.iter().enumerate() {
            let clean = match key {
                Some(root) => !dirty.contains(root),
                None => !nullary_dirty,
            };
            if !clean {
                continue;
            }
            let shard = &self.shards[old_idx];
            shard.verify_columnar()?;
            stats.chased_facts += shard.len();
            stats.reused_shards += 1;
            shards.push(Arc::clone(shard));
            keys.push(*key);
        }
        stats.shards = shards.len();
        stats.chase_micros = start.elapsed().as_micros();
        let provenance = Some(Arc::new(Provenance {
            source_revision: db.revision(),
            schema_len: prov.schema_len,
            keys,
        }));
        Ok(PreparedInstance {
            plan: self.plan.clone(),
            shards: Arc::new(shards),
            stats,
            provenance,
        })
    }

    /// Preprocessing statistics of this execution.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // The unified answer cursor.
    // ------------------------------------------------------------------

    /// Returns the lazy answer cursor for `semantics` — the engine's one
    /// enumeration entry point (Theorems 4.1(1), 5.2 and 6.1 of the paper).
    ///
    /// The call runs the per-shard enumeration preprocessing (linear in the
    /// chase) and returns an [`AnswerStream`] whose `next()` is constant
    /// work, so `answers(sem)?.take(k)` costs `O(k)` beyond preprocessing —
    /// the complexity guarantee the paper is about, surfaced as an API.  The
    /// stream owns shared handles to the plan and the shard data: it may
    /// outlive this instance, be parked between requests (resumable
    /// pagination), or be dropped mid-way.
    ///
    /// On sharded instances the per-shard streams are chained and the
    /// cross-shard minimality filter for wildcard-only answers plus the
    /// Boolean empty-tuple dedup run inside the cursor, so sequential and
    /// parallel executions agree (see the `parallel` module docs).
    pub fn answers(&self, semantics: Semantics) -> Result<AnswerStream> {
        AnswerStream::build(self, semantics)
    }

    /// Streams the answers of `semantics` to `f` with `ControlFlow`-style
    /// early exit; returns the number of answers delivered (including the
    /// one `f` broke on).  Convenience wrapper over
    /// [`PreparedInstance::answers`] for callback-shaped callers.
    pub fn for_each_answer(
        &self,
        semantics: Semantics,
        mut f: impl FnMut(Answer) -> ControlFlow<()>,
    ) -> Result<usize> {
        let mut stream = self.answers(semantics)?;
        let mut delivered = 0usize;
        for answer in &mut stream {
            delivered += 1;
            if f(answer).is_break() {
                return Ok(delivered);
            }
        }
        match stream.error() {
            Some(e) => Err(e.clone()),
            None => Ok(delivered),
        }
    }

    /// Single-tests an answer of any semantics (Theorem 3.1), shard-aware:
    /// the one testing entry point matching [`PreparedInstance::answers`].
    pub fn test(&self, answer: &Answer) -> Result<bool> {
        match answer {
            Answer::Complete(tuple) => {
                let values: Vec<Value> = tuple.iter().map(|&c| Value::Const(c)).collect();
                for shard in self.shards.iter() {
                    if single_testing::test_complete(self.omq().query(), shard, &values)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Answer::Partial(t) => self.test_partial_impl(t),
            Answer::Multi(t) => self.test_multi_impl(t),
        }
    }

    /// The shard vector behind this instance, shared with the answer
    /// streams it produces.
    pub(crate) fn shared_shards(&self) -> &Arc<Vec<Arc<Database>>> {
        &self.shards
    }

    // ------------------------------------------------------------------
    // Aggregate fast paths: count and exists without materialisation.
    // ------------------------------------------------------------------

    /// Counts the answers of `semantics` **without materialising a single
    /// [`Answer`] tuple** — always equal to `answers(semantics)?.count()`,
    /// but structurally cheaper:
    ///
    /// * complete answers are counted by the prefix walk of
    ///   [`crate::enumerate::count_answers`], which folds the deepest
    ///   enumeration level into CSR fan-out sums instead of visiting it;
    /// * wildcard semantics drive the shard enumerators through their
    ///   allocation-free batched pulls and feed a borrowed-tuple minimality
    ///   filter ([`crate::parallel`]), so constant-bearing answers are
    ///   counted in place and only the wildcard-only patterns are tracked;
    /// * shards are counted independently and reduced (count is associative
    ///   — the embarrassingly parallel half of the sharded execution), on
    ///   scoped threads when the instance is sharded.
    pub fn count(&self, semantics: Semantics) -> Result<u64> {
        let skeleton = self.plan.skeleton()?;
        match semantics {
            Semantics::Complete => {
                let counts = self.map_shards(|shard| {
                    let structure = FreeConnexStructure::materialize(skeleton, shard, true)?;
                    Ok(crate::enumerate::count_answers(&structure))
                })?;
                if skeleton.boolean {
                    // The stream dedups the Boolean empty tuple across
                    // shards: the query is satisfiable, or it is not.
                    Ok(u64::from(counts.iter().any(|&c| c > 0)))
                } else {
                    Ok(counts.iter().sum())
                }
            }
            Semantics::MinimalPartial => {
                let arity = skeleton.answer_positions.len();
                let parts = self.map_shards(|shard| {
                    let mut cursor = PartialEnumerator::with_skeleton(skeleton, shard)?;
                    let mut merge = WildcardMerge::partial(arity);
                    let mut counted = 0u64;
                    let mut probe = PartialTuple(Vec::new());
                    loop {
                        let got = cursor.fill_values(COUNT_BATCH, |values| {
                            probe.0.clear();
                            probe.0.extend_from_slice(values);
                            counted += u64::from(merge.observe(&probe));
                        });
                        if got < COUNT_BATCH {
                            break;
                        }
                    }
                    Ok((counted, merge))
                })?;
                let mut total = 0u64;
                let mut merge = WildcardMerge::partial(arity);
                for (counted, shard_merge) in parts {
                    total += counted;
                    merge.absorb(shard_merge);
                }
                Ok(total + merge.survivors())
            }
            Semantics::MinimalPartialMulti => {
                let arity = skeleton.answer_positions.len();
                let parts = self.map_shards(|shard| {
                    let mut cursor = multi_enum::MultiEnumerator::with_skeleton(skeleton, shard)?;
                    let mut merge = WildcardMerge::multi(arity);
                    let mut counted = 0u64;
                    loop {
                        let got = cursor.fill_with(COUNT_BATCH, |t| {
                            counted += u64::from(merge.observe(&t));
                        });
                        if got < COUNT_BATCH {
                            break;
                        }
                    }
                    if let Some(e) = cursor.error() {
                        return Err(e.clone());
                    }
                    Ok((counted, merge))
                })?;
                let mut total = 0u64;
                let mut merge = WildcardMerge::multi(arity);
                for (counted, shard_merge) in parts {
                    total += counted;
                    merge.absorb(shard_merge);
                }
                Ok(total + merge.survivors())
            }
        }
    }

    /// Emptiness probe for `semantics` — always equal to
    /// `answers(semantics)?.next().is_some()`, without materialising any
    /// answer and without running the wildcard enumeration at all:
    ///
    /// * complete answers need one cursor descent per shard (first hit
    ///   wins);
    /// * for the wildcard semantics a non-empty enumeration structure
    ///   already guarantees an answer (Lemma 5.4's progress invariant), and
    ///   the cross-shard minimality filter only ever replaces answers with
    ///   dominating ones, so it cannot empty a non-empty union.
    pub fn exists(&self, semantics: Semantics) -> Result<bool> {
        let skeleton = self.plan.skeleton()?;
        let complete_only = semantics == Semantics::Complete;
        for shard in self.shards.iter() {
            let structure = FreeConnexStructure::materialize(skeleton, shard, complete_only)?;
            let found = if complete_only {
                crate::enumerate::has_answer(&structure)
            } else if let Some(satisfiable) = structure.boolean_satisfiable {
                satisfiable
            } else {
                !structure.empty
            };
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Applies `f` to every shard, on scoped worker threads when the
    /// instance is sharded — the map half of the aggregate reduces above.
    fn map_shards<R: Send>(&self, f: impl Fn(&Database) -> Result<R> + Sync) -> Result<Vec<R>> {
        if self.shards.len() <= 1 {
            return self.shards.iter().map(|shard| f(shard)).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let shard: &Database = shard;
                    let f = &f;
                    scope.spawn(move || f(shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard aggregate worker panicked"))
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Enumeration structures (single-shard, structure-level access).
    // ------------------------------------------------------------------

    /// Builds the constant-delay enumeration structure for complete answers
    /// (Theorem 4.1(1)).  Requires the query to be acyclic and free-connex
    /// acyclic, and the instance to be single-shard.
    pub fn complete_structure(&self) -> Result<FreeConnexStructure> {
        let shard = self.single_shard("complete_structure")?;
        FreeConnexStructure::materialize(self.plan.skeleton()?, shard, true)
    }

    /// Builds the enumeration structure for partial answers (labelled nulls
    /// kept), shared by the wildcard engines.  Single-shard instances only.
    pub fn partial_structure(&self) -> Result<FreeConnexStructure> {
        let shard = self.single_shard("partial_structure")?;
        FreeConnexStructure::materialize(self.plan.skeleton()?, shard, false)
    }

    /// Builds the Algorithm 1 cursor (linear-time preprocessing of
    /// Theorem 5.2).  The returned enumerator is an `Iterator` consumed by a
    /// single enumeration run; build a new one to re-enumerate.
    /// Single-shard instances only; sharded instances stream via
    /// [`PreparedInstance::answers`].
    pub fn partial_enumerator(&self) -> Result<PartialEnumerator> {
        let shard = self.single_shard("partial_enumerator")?;
        PartialEnumerator::with_skeleton(self.plan.skeleton()?, shard)
    }

    // ------------------------------------------------------------------
    // Legacy per-mode surface: thin wrappers over the cursor.
    // ------------------------------------------------------------------

    /// Enumerates all complete (certain) answers.
    #[deprecated(
        note = "use `answers(Semantics::Complete)` — the lazy cursor supports early termination"
    )]
    pub fn enumerate_complete(&self) -> Result<Vec<Vec<ConstId>>> {
        Ok(self
            .answers(Semantics::Complete)?
            .try_collect()?
            .into_iter()
            .map(|a| {
                a.into_complete()
                    .expect("complete stream yields complete answers")
            })
            .collect())
    }

    /// Streams the complete answers to a callback.
    #[deprecated(
        note = "use `answers(Semantics::Complete)`, or `for_each_answer` for callback-style \
                streaming with early exit"
    )]
    pub fn stream_complete(&self, mut f: impl FnMut(&[Value])) -> Result<usize> {
        self.for_each_answer(Semantics::Complete, |answer| {
            let tuple = answer
                .into_complete()
                .expect("complete stream yields complete answers");
            let values: Vec<Value> = tuple.into_iter().map(Value::Const).collect();
            f(&values);
            ControlFlow::Continue(())
        })
    }

    /// Enumerates the minimal partial answers (single wildcard, Theorem 5.2).
    #[deprecated(
        note = "use `answers(Semantics::MinimalPartial)` — the lazy cursor supports early \
                termination"
    )]
    pub fn enumerate_minimal_partial(&self) -> Result<Vec<PartialTuple>> {
        Ok(self
            .answers(Semantics::MinimalPartial)?
            .try_collect()?
            .into_iter()
            .map(|a| {
                a.into_partial()
                    .expect("partial stream yields partial answers")
            })
            .collect())
    }

    /// Streams the minimal partial answers to a callback.
    #[deprecated(
        note = "use `answers(Semantics::MinimalPartial)`, or `for_each_answer` for \
                callback-style streaming with early exit"
    )]
    pub fn stream_minimal_partial(&self, mut f: impl FnMut(&PartialTuple)) -> Result<usize> {
        self.for_each_answer(Semantics::MinimalPartial, |answer| {
            f(answer
                .as_partial()
                .expect("partial stream yields partial answers"));
            ControlFlow::Continue(())
        })
    }

    /// Enumerates the minimal partial answers with all complete answers first
    /// (Proposition 2.1).  This ordering guarantee is not expressible as a
    /// plain [`Semantics`], so the method is not deprecated; it materialises
    /// the full answer set by construction.
    pub fn enumerate_minimal_partial_complete_first(&self) -> Result<Vec<PartialTuple>> {
        if self.shards.len() == 1 {
            return multi_enum::minimal_partial_answers_complete_first_prepared(
                self.plan.skeleton()?,
                &self.shards[0],
            );
        }
        // Sharded: merge, then stable-partition the complete answers first.
        let merged: Vec<PartialTuple> = self
            .answers(Semantics::MinimalPartial)?
            .try_collect()?
            .into_iter()
            .map(|a| {
                a.into_partial()
                    .expect("partial stream yields partial answers")
            })
            .collect();
        let (complete, partial): (Vec<_>, Vec<_>) =
            merged.into_iter().partition(PartialTuple::is_complete);
        Ok(complete.into_iter().chain(partial).collect())
    }

    /// Enumerates the minimal partial answers with multi-wildcards
    /// (Theorem 6.1).
    #[deprecated(
        note = "use `answers(Semantics::MinimalPartialMulti)` — the lazy cursor supports \
                early termination"
    )]
    pub fn enumerate_minimal_partial_multi(&self) -> Result<Vec<MultiTuple>> {
        Ok(self
            .answers(Semantics::MinimalPartialMulti)?
            .try_collect()?
            .into_iter()
            .map(|a| a.into_multi().expect("multi stream yields multi answers"))
            .collect())
    }

    /// Streams the minimal partial answers with multi-wildcards to a callback.
    #[deprecated(
        note = "use `answers(Semantics::MinimalPartialMulti)`, or `for_each_answer` for \
                callback-style streaming with early exit"
    )]
    pub fn stream_minimal_partial_multi(&self, mut f: impl FnMut(&MultiTuple)) -> Result<usize> {
        self.for_each_answer(Semantics::MinimalPartialMulti, |answer| {
            f(answer
                .as_multi()
                .expect("multi stream yields multi answers"));
            ControlFlow::Continue(())
        })
    }

    // ------------------------------------------------------------------
    // Testing.
    // ------------------------------------------------------------------

    /// Builds the all-tester for complete answers (Theorem 4.1(2)); requires
    /// the query to be free-connex acyclic (acyclicity is *not* required).
    /// Single-shard instances only; on sharded instances use
    /// [`PreparedInstance::test_complete_names`], which tests across shards.
    pub fn all_tester(&self) -> Result<AllTester> {
        let shard = self.single_shard("all_tester")?;
        AllTester::build(self.omq().query(), shard, true)
    }

    /// Single-tests a complete answer given by constant names.
    ///
    /// Shard-aware: a connected query's witnessing homomorphism lies within
    /// one Gaifman component, so the candidate is an answer iff it is an
    /// answer of some shard.
    pub fn test_complete_names(&self, names: &[&str]) -> Result<bool> {
        let values = match single_testing::resolve_constants(self.symbols(), names) {
            Ok(v) => v,
            // A name that does not occur in the data cannot be an answer.
            Err(CoreError::UnknownConstant(_)) => return Ok(false),
            Err(e) => return Err(e),
        };
        for shard in self.shards.iter() {
            if single_testing::test_complete(self.omq().query(), shard, &values)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Single-tests a minimal partial answer (single wildcard).
    #[deprecated(note = "use `test(&Answer::Partial(candidate))`")]
    pub fn test_minimal_partial(&self, candidate: &PartialTuple) -> Result<bool> {
        self.test_partial_impl(candidate)
    }

    /// Single-tests a minimal partial answer with multi-wildcards.
    #[deprecated(note = "use `test(&Answer::Multi(candidate))`")]
    pub fn test_minimal_partial_multi(&self, candidate: &MultiTuple) -> Result<bool> {
        self.test_multi_impl(candidate)
    }

    /// Shard-aware single-testing of a minimal partial answer: a candidate
    /// carrying at least one constant is an answer only in the shard owning
    /// its constants, and every tuple dominating it shares those constants,
    /// so the shard-local test is exact.  A wildcard-only candidate's
    /// minimality is a cross-shard property; it is resolved against the
    /// merged enumeration (constant-many candidates exist, so this stays
    /// cheap relative to an enumeration pass).
    fn test_partial_impl(&self, candidate: &PartialTuple) -> Result<bool> {
        if self.shards.len() == 1 {
            return single_testing::test_minimal_partial(
                self.omq().query(),
                &self.shards[0],
                candidate,
            );
        }
        if candidate.0.iter().any(|v| !v.is_star()) {
            for shard in self.shards.iter() {
                if single_testing::test_minimal_partial(self.omq().query(), shard, candidate)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let mut found = false;
        self.for_each_answer(Semantics::MinimalPartial, |answer| {
            if answer.as_partial() == Some(candidate) {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })?;
        Ok(found)
    }

    /// Shard-aware single-testing with multi-wildcards, with the same split
    /// as [`PreparedInstance::test_partial_impl`].
    fn test_multi_impl(&self, candidate: &MultiTuple) -> Result<bool> {
        if self.shards.len() == 1 {
            return single_testing::test_minimal_partial_multi(
                self.omq().query(),
                &self.shards[0],
                candidate,
            );
        }
        if candidate.0.iter().any(|v| !v.is_wild()) {
            for shard in self.shards.iter() {
                if single_testing::test_minimal_partial_multi(self.omq().query(), shard, candidate)?
                {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let mut found = false;
        self.for_each_answer(Semantics::MinimalPartialMulti, |answer| {
            if answer.as_multi() == Some(candidate) {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })?;
        Ok(found)
    }

    // ------------------------------------------------------------------
    // Convenience / display.
    // ------------------------------------------------------------------

    /// Resolves constant names to identifiers of the chased database.
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<ConstId>> {
        names
            .iter()
            .map(|n| {
                self.symbols()
                    .const_id(n)
                    .ok_or_else(|| CoreError::UnknownConstant((*n).to_owned()))
            })
            .collect()
    }

    /// Builds a partial tuple from constant names and `*` wildcards.
    pub fn parse_partial(&self, spec: &[&str]) -> Result<PartialTuple> {
        let values = spec
            .iter()
            .map(|s| {
                if *s == "*" {
                    Ok(omq_data::PartialValue::Star)
                } else {
                    self.symbols()
                        .const_id(s)
                        .map(omq_data::PartialValue::Const)
                        .ok_or_else(|| CoreError::UnknownConstant((*s).to_owned()))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PartialTuple(values))
    }

    /// Renders any answer with constant names.
    pub fn format_answer(&self, answer: &Answer) -> String {
        answer.display_with(|c| self.symbols().const_name(c).to_owned())
    }

    /// Renders a complete answer with constant names.
    pub fn format_complete(&self, answer: &[ConstId]) -> String {
        let names: Vec<&str> = answer
            .iter()
            .map(|&c| self.symbols().const_name(c))
            .collect();
        format!("({})", names.join(","))
    }

    /// Renders a partial answer with constant names.
    pub fn format_partial(&self, answer: &PartialTuple) -> String {
        answer.display_with(|c| self.symbols().const_name(c).to_owned())
    }

    /// Renders a multi-wildcard answer with constant names.
    pub fn format_multi(&self, answer: &MultiTuple) -> String {
        answer.display_with(|c| self.symbols().const_name(c).to_owned())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::OmqEngine;
    use omq_chase::Ontology;
    use omq_cq::ConjunctiveQuery;
    use omq_data::Schema;
    use rustc_hash::FxHashSet;
    use std::collections::BTreeSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s
    }

    fn db_one() -> Database {
        Database::builder(schema())
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    fn db_two() -> Database {
        Database::builder(schema())
            .fact("Researcher", ["ada"])
            .fact("Researcher", ["bob"])
            .fact("HasOffice", ["ada", "lab2"])
            .fact("InBuilding", ["lab2", "west"])
            .fact("InBuilding", ["lab9", "east"])
            .build()
            .unwrap()
    }

    fn rendered_partial(instance: &PreparedInstance) -> FxHashSet<String> {
        instance
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| instance.format_partial(t))
            .collect()
    }

    #[test]
    fn one_plan_many_databases_matches_fresh_engines() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for db in [db_one(), db_two()] {
            let instance = plan.execute(&db).unwrap();
            let engine = OmqEngine::preprocess(&omq, &db).unwrap();
            // Complete answers.
            let via_plan: FxHashSet<String> = instance
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| instance.format_complete(a))
                .collect();
            let via_engine: FxHashSet<String> = engine
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| engine.format_complete(a))
                .collect();
            assert_eq!(via_plan, via_engine);
            // Minimal partial answers.
            let engine_partial: FxHashSet<String> = engine
                .enumerate_minimal_partial()
                .unwrap()
                .iter()
                .map(|t| engine.format_partial(t))
                .collect();
            assert_eq!(rendered_partial(&instance), engine_partial);
            // Multi-wildcard answers.
            let via_plan: FxHashSet<String> = instance
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| instance.format_multi(t))
                .collect();
            let via_engine: FxHashSet<String> = engine
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| engine.format_multi(t))
                .collect();
            assert_eq!(via_plan, via_engine);
        }
    }

    #[test]
    fn second_execution_reuses_chase_memo() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let first = plan.execute(db_one()).unwrap();
        let types = plan.chase_plan().memoized_bag_types();
        assert!(types > 0);
        let second = plan.execute(db_one()).unwrap();
        // Same shape, so the second run hits the memo for every bag.
        assert!(second.stats().memo_hits >= first.stats().memo_hits);
        assert_eq!(plan.chase_plan().memoized_bag_types(), types);
    }

    fn answer_set(instance: &PreparedInstance, semantics: Semantics) -> BTreeSet<String> {
        instance
            .answers(semantics)
            .unwrap()
            .map(|a| instance.format_answer(&a))
            .collect()
    }

    #[test]
    fn execute_tracked_matches_execute_on_every_semantics() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for db in [db_one(), db_two()] {
            let plain = plan.execute(&db).unwrap();
            let tracked = plan.execute_tracked(&db).unwrap();
            assert!(tracked.shard_count() > 1, "component-rich data shards");
            assert_eq!(tracked.stats().reused_shards, 0);
            for semantics in [
                Semantics::Complete,
                Semantics::MinimalPartial,
                Semantics::MinimalPartialMulti,
            ] {
                assert_eq!(
                    answer_set(&plain, semantics),
                    answer_set(&tracked, semantics)
                );
            }
        }
    }

    #[test]
    fn tracked_execution_of_a_disconnected_query_falls_back() {
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x, y) :- Researcher(x), InBuilding(y, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let plan = QueryPlan::compile(&omq).unwrap();
        let tracked = plan.execute_tracked(db_one()).unwrap();
        // Sharding a disconnected query would lose cross-component answers.
        assert_eq!(tracked.shard_count(), 1);
    }

    fn store_with(facts: &[(&str, &[&str])]) -> omq_data::Store {
        let mut store = omq_data::Store::new(schema());
        let mut txn = omq_data::Txn::new();
        for (rel, args) in facts {
            txn = txn.insert(rel, args);
        }
        store.commit(txn).unwrap();
        store
    }

    #[test]
    fn refresh_reuses_untouched_component_shards_by_pointer() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = store_with(&[
            ("Researcher", &["mary"]),
            ("HasOffice", &["mary", "room1"]),
            ("InBuilding", &["room1", "main1"]),
            ("Researcher", &["john"]),
            ("HasOffice", &["john", "room4"]),
            ("Researcher", &["mike"]),
        ]);
        let base = plan.execute_tracked(store.snapshot()).unwrap();
        assert_eq!(base.shard_count(), 3);
        // A delta inside john's component only.
        let receipt = store
            .commit(omq_data::Txn::new().insert("InBuilding", ["room4", "main2"]))
            .unwrap();
        let head = store.snapshot();
        let refreshed = base.refresh(&head, &receipt).unwrap();
        assert_eq!(refreshed.shard_count(), 3);
        assert_eq!(refreshed.stats().reused_shards, 2);
        // The two untouched shards are shared with the predecessor by
        // pointer; the dirty component was re-chased into a fresh shard,
        // ordered first.
        let shared = refreshed
            .shards()
            .iter()
            .filter(|shard| base.shards().iter().any(|old| Arc::ptr_eq(shard, old)))
            .count();
        assert_eq!(shared, 2);
        assert!(
            !base
                .shards()
                .iter()
                .any(|old| Arc::ptr_eq(&refreshed.shards()[0], old)),
            "the fresh shard leads the shard order"
        );
        // Answers agree with a from-scratch execution over the new head.
        let scratch = plan.execute(&head).unwrap();
        for semantics in [
            Semantics::Complete,
            Semantics::MinimalPartial,
            Semantics::MinimalPartialMulti,
        ] {
            assert_eq!(
                answer_set(&scratch, semantics),
                answer_set(&refreshed, semantics)
            );
        }
        // New constants minted by the commit resolve through the refreshed
        // instance (the symbol shard derives from the new head).
        assert!(refreshed
            .test_complete_names(&["john", "room4", "main2"])
            .unwrap());
    }

    /// Every instance shape the batching property tests sweep: both example
    /// databases, sequential (one shard) and tracked (one shard per Gaifman
    /// component) execution.
    fn batching_instances(plan: &QueryPlan) -> Vec<PreparedInstance> {
        let mut instances = Vec::new();
        for db in [db_one(), db_two()] {
            instances.push(plan.execute(&db).unwrap());
            let tracked = plan.execute_tracked(&db).unwrap();
            assert!(tracked.shard_count() > 1, "component-rich data shards");
            instances.push(tracked);
        }
        instances
    }

    #[test]
    fn next_batch_equals_repeated_next_on_every_semantics_and_sharding() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for instance in batching_instances(&plan) {
            for semantics in Semantics::ALL {
                let reference: Vec<Answer> = instance.answers(semantics).unwrap().collect();
                assert!(!reference.is_empty());
                for k in [1, 2, 3, reference.len(), reference.len() + 7] {
                    // Draining purely through `next_batch(k)` yields the same
                    // answers in the same order as repeated `next()`.
                    let mut stream = instance.answers(semantics).unwrap();
                    let mut batched: Vec<Answer> = Vec::new();
                    loop {
                        let before = batched.len();
                        let got = stream.next_batch(&mut batched, k);
                        assert_eq!(batched.len(), before + got);
                        assert!(got <= k);
                        if got == 0 {
                            break;
                        }
                    }
                    assert_eq!(batched, reference, "k = {k}");
                    // An exhausted stream stays exhausted on both pulls.
                    assert_eq!(stream.next_batch(&mut batched, k), 0);
                    assert!(stream.next().is_none());
                    assert_eq!(batched, reference);
                }
            }
        }
    }

    #[test]
    fn count_and_exists_agree_with_the_stream() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        for instance in batching_instances(&plan) {
            for semantics in Semantics::ALL {
                let drained = instance.answers(semantics).unwrap().count() as u64;
                assert_eq!(instance.count(semantics).unwrap(), drained);
                assert_eq!(instance.exists(semantics).unwrap(), drained > 0);
            }
        }
        // Boolean query: one empty tuple, deduped across shards.
        let ontology = omq.ontology().clone();
        let boolean = ConjunctiveQuery::parse("q() :- HasOffice(x, y)").unwrap();
        let bomq = OntologyMediatedQuery::new(ontology, boolean).unwrap();
        let bplan = QueryPlan::compile(&bomq).unwrap();
        for instance in batching_instances(&bplan) {
            for semantics in Semantics::ALL {
                let drained = instance.answers(semantics).unwrap().count() as u64;
                assert_eq!(instance.count(semantics).unwrap(), drained);
                assert_eq!(drained, 1);
                assert!(instance.exists(semantics).unwrap());
            }
        }
        // Empty data: zero everywhere.
        let empty = Database::builder(schema()).build().unwrap();
        let instance = plan.execute(&empty).unwrap();
        for semantics in Semantics::ALL {
            assert_eq!(instance.count(semantics).unwrap(), 0);
            assert!(!instance.exists(semantics).unwrap());
        }
    }

    #[test]
    fn mid_stream_interleaving_of_next_next_batch_and_fill() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        // A deterministic xorshift schedule: each step pulls via `next()`,
        // `next_batch(k)` or `fill` with a pseudo-random small k, so batch
        // boundaries land at every offset — including mid-shard and across
        // shard handovers — over the different instances and semantics.
        let mut seed: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for instance in batching_instances(&plan) {
            for semantics in Semantics::ALL {
                let reference: Vec<Answer> = instance.answers(semantics).unwrap().collect();
                for _schedule in 0..8 {
                    let mut stream = instance.answers(semantics).unwrap();
                    let mut got: Vec<Answer> = Vec::new();
                    loop {
                        let r = rng();
                        let k = (r >> 8) as usize % 4 + 1;
                        match r % 3 {
                            0 => match stream.next() {
                                Some(answer) => got.push(answer),
                                None => break,
                            },
                            1 => {
                                // The prefix invariant holds mid-stream, not
                                // just at exhaustion.
                                assert_eq!(got, reference[..got.len()]);
                                if stream.next_batch(&mut got, k) == 0 {
                                    break;
                                }
                            }
                            _ => {
                                let placeholder = Answer::Complete(Vec::new());
                                let mut buf = vec![placeholder; k];
                                let n = stream.fill(&mut buf);
                                got.extend(buf.into_iter().take(n));
                                if n < k {
                                    break;
                                }
                            }
                        }
                    }
                    assert_eq!(got, reference);
                }
            }
        }
    }

    #[test]
    fn refresh_falls_back_on_merges_relations_and_untracked_instances() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = store_with(&[
            ("Researcher", &["mary"]),
            ("HasOffice", &["mary", "room1"]),
            ("Researcher", &["john"]),
            ("HasOffice", &["john", "room4"]),
        ]);
        let base = plan.execute_tracked(store.snapshot()).unwrap();
        assert_eq!(base.shard_count(), 2);
        // A bridging fact merges the two components: no shard is reusable.
        let receipt = store
            .commit(omq_data::Txn::new().insert("InBuilding", ["room1", "room4"]))
            .unwrap();
        let merged = base.refresh(store.snapshot(), &receipt).unwrap();
        assert_eq!(merged.stats().reused_shards, 0);
        assert_eq!(merged.shard_count(), 1);
        // A commit that adds a relation symbol invalidates the baked-in
        // relation-id layout: full rebuild.
        let receipt = store
            .commit(
                omq_data::Txn::new()
                    .add_relation("Lab", 1)
                    .insert("Lab", ["l1"]),
            )
            .unwrap();
        let rebuilt = merged.refresh(store.snapshot(), &receipt).unwrap();
        assert_eq!(rebuilt.stats().reused_shards, 0);
        // An untracked instance (plain `execute`) has no provenance: refresh
        // degrades to a full tracked execution.
        let untracked = plan.execute(store.snapshot()).unwrap();
        let receipt = store
            .commit(omq_data::Txn::new().insert("Researcher", ["zoe"]))
            .unwrap();
        let from_untracked = untracked.refresh(store.snapshot(), &receipt).unwrap();
        assert_eq!(from_untracked.stats().reused_shards, 0);
        // …and the *next* refresh over it is incremental again.
        let receipt = store
            .commit(omq_data::Txn::new().insert("Researcher", ["amy"]))
            .unwrap();
        let incremental = from_untracked.refresh(store.snapshot(), &receipt).unwrap();
        assert!(incremental.stats().reused_shards > 0);
    }

    #[test]
    fn refresh_shares_everything_on_a_no_effect_commit() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = store_with(&[("Researcher", &["mary"]), ("Researcher", &["john"])]);
        let base = plan.execute_tracked(store.snapshot()).unwrap();
        let receipt = store
            .commit(omq_data::Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        assert_eq!(receipt.new_facts, 0);
        let refreshed = base.refresh(store.snapshot(), &receipt).unwrap();
        assert_eq!(refreshed.stats().reused_shards, base.shard_count());
        assert!(Arc::ptr_eq(base.shared_shards(), refreshed.shared_shards()));
    }

    #[test]
    fn refresh_rejects_a_skipped_receipt_via_full_rebuild() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut store = store_with(&[("Researcher", &["mary"]), ("Researcher", &["john"])]);
        let base = plan.execute_tracked(store.snapshot()).unwrap();
        // Two commits, but only the second receipt is handed to refresh:
        // the revision chain does not connect, so nothing may be reused.
        store
            .commit(omq_data::Txn::new().insert("Researcher", ["zoe"]))
            .unwrap();
        let second = store
            .commit(omq_data::Txn::new().insert("Researcher", ["amy"]))
            .unwrap();
        let refreshed = base.refresh(store.snapshot(), &second).unwrap();
        assert_eq!(refreshed.stats().reused_shards, 0);
        let scratch = plan.execute(store.snapshot()).unwrap();
        assert_eq!(
            answer_set(&scratch, Semantics::MinimalPartial),
            answer_set(&refreshed, Semantics::MinimalPartial)
        );
    }

    #[test]
    fn unguarded_ontology_is_rejected_at_compile_time() {
        let ontology = Ontology::parse("R(x, y), S(y, z) -> T(x, z)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, z) :- T(x, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        assert!(matches!(
            QueryPlan::compile(&omq),
            Err(CoreError::NotGuarded(_))
        ));
    }

    #[test]
    fn intractable_query_compiles_but_enumeration_errors() {
        // Projected path: weakly acyclic (testing works), not
        // enumeration-tractable.
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let plan = QueryPlan::compile(&omq).unwrap();
        assert!(plan.skeleton().is_err());
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        let db = Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("S", ["b", "c"])
            .build()
            .unwrap();
        let instance = plan.execute(&db).unwrap();
        assert!(matches!(
            instance.enumerate_complete(),
            Err(CoreError::NotEnumerationTractable(_))
        ));
        // Single-testing still works.
        assert!(instance.test_complete_names(&["a", "c"]).unwrap());
        assert!(!instance.test_complete_names(&["a", "b"]).unwrap());
    }
}
