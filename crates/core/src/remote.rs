//! Remote shard sources: plugging distributed executors into [`AnswerStream`].
//!
//! `QueryPlan::execute_parallel` shards the database by Gaifman component and
//! chases the shards on local threads; the cross-shard reduce (the
//! `WildcardMerge` minimality filter plus the Boolean empty-tuple dedup) is
//! folded into the [`AnswerStream`] cursor.  A *distributed* executor — the
//! `omq-cluster` coordinator — does the per-shard chase and enumeration in
//! other **processes** and only has answer pages, not chased databases, on
//! hand.  This module is the seam between the two: a [`RemoteShard`] is a
//! pull-based source of one shard's already-enumerated answers, and
//! [`AnswerStream::from_remote`] wraps a vector of them in a normal
//! `AnswerStream` that runs the *same* cross-shard reduce the in-process
//! sharded cursor uses.  Downstream consumers (the serving layer, pagination,
//! `try_collect`) cannot tell a cluster execution from a local one.
//!
//! Soundness inherits from the parallel module's argument (see
//! [`crate::parallel`]): each source must yield the per-shard-minimal answers
//! of a union of Gaifman components, disjoint across sources.  Then
//! constant-bearing answers are globally minimal as they stream by, and only
//! the wildcard-only patterns need the merge's park-and-flush treatment.
//!
//! Error contract: a source that ends early reports why through
//! [`RemoteShard::error`].  A transport fault the executor could not mask
//! (e.g. every worker died) surfaces here as a [`CoreError`] and terminates
//! the stream, exactly like a mid-stream builder failure in the local cursor.

use crate::error::CoreError;
use crate::parallel::WildcardMerge;
use crate::plan::QueryPlan;
use crate::stream::AnswerStream;
use omq_data::{Answer, MultiTuple, PartialTuple, Semantics};
use std::collections::VecDeque;

/// A pull-based source of one shard's enumerated answers, produced somewhere
/// else (another process, another machine).
///
/// The contract mirrors [`AnswerStream::next_batch`]:
///
/// * `next_batch` appends up to `k` answers to `out` and returns how many
///   were appended; fewer than `k` means the source ended.
/// * An ended source is asked [`RemoteShard::error`] once: `Some(e)` means
///   the shard failed mid-stream (the whole stream reports `e`), `None`
///   means it was exhausted normally.
/// * Every answer must be of the [`Semantics`] the stream was built with,
///   with values resolved against the *coordinator's* database (implementors
///   translate wire answers by constant name before handing them over).
pub trait RemoteShard: Send {
    /// Pulls up to `k` answers, appending to `out`; returns the number
    /// appended.  Fewer than `k` means the source ended — check
    /// [`RemoteShard::error`].
    fn next_batch(&mut self, out: &mut Vec<Answer>, k: usize) -> usize;

    /// The error that ended this source early, if any.  Called once, after
    /// `next_batch` returned short.
    fn error(&mut self) -> Option<CoreError>;
}

/// The cross-shard reduce, parameterised by semantics.  The same machinery
/// `Inner::{Complete,Partial,Multi}` applies to locally chased shards,
/// repackaged for answers that arrive pre-enumerated.
enum RemoteReduce {
    /// Complete answers are shard-disjoint (constants are partitioned across
    /// components); only the Boolean empty tuple needs deduplication.
    Complete {
        boolean: bool,
        emitted_empty: bool,
    },
    /// `None` once flushed.
    Partial(Option<WildcardMerge<PartialTuple>>),
    Multi(Option<WildcardMerge<MultiTuple>>),
}

impl RemoteReduce {
    fn new(semantics: Semantics, arity: usize, boolean: bool) -> Self {
        match semantics {
            Semantics::Complete => RemoteReduce::Complete {
                boolean,
                emitted_empty: false,
            },
            Semantics::MinimalPartial => RemoteReduce::Partial(Some(WildcardMerge::partial(arity))),
            Semantics::MinimalPartialMulti => {
                RemoteReduce::Multi(Some(WildcardMerge::multi(arity)))
            }
        }
    }

    /// Feeds one per-shard answer through the reduce; released answers are
    /// queued on `pending`.  Fails if the answer's variant does not match
    /// the stream's semantics — that is a broken executor, not bad data.
    fn offer(&mut self, answer: Answer, pending: &mut VecDeque<Answer>) -> Result<(), CoreError> {
        match (self, answer) {
            (
                RemoteReduce::Complete {
                    boolean,
                    emitted_empty,
                },
                Answer::Complete(t),
            ) => {
                if *boolean {
                    // The empty tuple is the only Boolean answer; every
                    // satisfiable shard reports it once.
                    if !*emitted_empty {
                        *emitted_empty = true;
                        pending.push_back(Answer::Complete(t));
                    }
                } else {
                    pending.push_back(Answer::Complete(t));
                }
                Ok(())
            }
            (RemoteReduce::Partial(merge), Answer::Partial(t)) => {
                merge
                    .as_mut()
                    .expect("no offers after flush")
                    .offer(t, &mut |out| pending.push_back(Answer::Partial(out)));
                Ok(())
            }
            (RemoteReduce::Multi(merge), Answer::Multi(t)) => {
                merge
                    .as_mut()
                    .expect("no offers after flush")
                    .offer(t, &mut |out| pending.push_back(Answer::Multi(out)));
                Ok(())
            }
            _ => Err(CoreError::Internal(
                "remote shard emitted an answer of the wrong semantics".to_owned(),
            )),
        }
    }

    /// Releases the surviving wildcard-only answers.  Call once, after every
    /// source has been drained.
    fn flush(&mut self, pending: &mut VecDeque<Answer>) {
        match self {
            RemoteReduce::Complete { .. } => {}
            RemoteReduce::Partial(merge) => {
                if let Some(m) = merge.take() {
                    m.flush(&mut |t| pending.push_back(Answer::Partial(t)));
                }
            }
            RemoteReduce::Multi(merge) => {
                if let Some(m) = merge.take() {
                    m.flush(&mut |t| pending.push_back(Answer::Multi(t)));
                }
            }
        }
    }
}

/// Per-pull cap on how many answers are requested from a source at once,
/// so drain-everything requests (`k = usize::MAX`) stay incremental.
const REMOTE_PULL_CAP: usize = 4096;

/// The state behind `Inner::Remote` in [`AnswerStream`]: the shard sources,
/// a cursor over them, and the cross-shard reduce.
pub(crate) struct RemoteState {
    sources: Vec<Box<dyn RemoteShard>>,
    /// Index of the source currently being drained.
    current: usize,
    reduce: RemoteReduce,
    /// Answers released by the reduce but not yet pulled.
    pending: VecDeque<Answer>,
    /// Reused landing buffer for source batches.
    scratch: Vec<Answer>,
    /// The reduce has been flushed (all sources drained, or the stream
    /// failed); only `pending` remains.
    flushed: bool,
}

impl std::fmt::Debug for RemoteState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteState")
            .field("sources", &self.sources.len())
            .field("current", &self.current)
            .field("pending", &self.pending.len())
            .field("flushed", &self.flushed)
            .finish()
    }
}

impl RemoteState {
    pub(crate) fn new(
        semantics: Semantics,
        arity: usize,
        boolean: bool,
        sources: Vec<Box<dyn RemoteShard>>,
    ) -> Self {
        RemoteState {
            sources,
            current: 0,
            reduce: RemoteReduce::new(semantics, arity, boolean),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            flushed: false,
        }
    }

    /// The batched-pull engine: appends up to `k` answers via `sink` and
    /// returns how many, plus the error that terminated the stream, if any.
    /// Mirrors the per-semantics `batch_*` methods of the local cursor.
    pub(crate) fn pull(
        &mut self,
        k: usize,
        sink: &mut impl FnMut(Answer),
    ) -> (usize, Option<CoreError>) {
        let mut produced = 0usize;
        loop {
            while produced < k {
                let Some(a) = self.pending.pop_front() else {
                    break;
                };
                sink(a);
                produced += 1;
            }
            if produced == k {
                return (produced, None);
            }
            // `pending` is empty past this point.
            if self.current < self.sources.len() {
                let want = (k - produced).min(REMOTE_PULL_CAP);
                self.scratch.clear();
                let got = self.sources[self.current].next_batch(&mut self.scratch, want);
                debug_assert!(
                    got == self.scratch.len(),
                    "sources append exactly what they report"
                );
                let mut bad = None;
                for answer in self.scratch.drain(..) {
                    if let Err(e) = self.reduce.offer(answer, &mut self.pending) {
                        bad = Some(e);
                        break;
                    }
                }
                if let Some(e) = bad {
                    return (produced, Some(self.fail(e)));
                }
                if got < want {
                    // Source ended: failed, or exhausted normally.
                    if let Some(e) = self.sources[self.current].error() {
                        return (produced, Some(self.fail(e)));
                    }
                    self.current += 1;
                }
            } else if !self.flushed {
                self.reduce.flush(&mut self.pending);
                self.flushed = true;
            } else {
                return (produced, None);
            }
        }
    }

    /// Puts the state into its terminal failed shape and passes the error
    /// through: no more pulls from any source, nothing pending.
    fn fail(&mut self, e: CoreError) -> CoreError {
        self.current = self.sources.len();
        self.flushed = true;
        self.pending.clear();
        e
    }
}

impl AnswerStream {
    /// Builds an [`AnswerStream`] over *remote* shard sources, running the
    /// cross-shard reduce (wildcard minimality merge, Boolean dedup) locally.
    ///
    /// `plan` must be the plan the remote executors evaluate — it supplies
    /// the tractability gate and the query arity the merge state is sized
    /// by.  Sources are drained in order, one at a time; each must yield the
    /// per-shard minimal answers of a distinct group of Gaifman components
    /// under `semantics` (see the [module docs](self) for the contract).
    pub fn from_remote(
        plan: &QueryPlan,
        semantics: Semantics,
        sources: Vec<Box<dyn RemoteShard>>,
    ) -> crate::Result<AnswerStream> {
        plan.skeleton()?;
        let arity = plan.omq().arity();
        let boolean = plan.omq().query().is_boolean();
        Ok(AnswerStream::with_remote(
            plan.clone(),
            semantics,
            RemoteState::new(semantics, arity, boolean, sources),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{Ontology, OntologyMediatedQuery};
    use omq_cq::ConjunctiveQuery;
    use omq_data::{Database, PartialValue, Schema};

    fn office_plan() -> QueryPlan {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
        QueryPlan::compile(&OntologyMediatedQuery::new(ontology, query).unwrap()).unwrap()
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s
    }

    /// A canned source: a fixed answer script, then an optional error.
    struct Scripted {
        answers: VecDeque<Answer>,
        error: Option<CoreError>,
    }

    impl RemoteShard for Scripted {
        fn next_batch(&mut self, out: &mut Vec<Answer>, k: usize) -> usize {
            let mut n = 0;
            while n < k {
                let Some(a) = self.answers.pop_front() else {
                    break;
                };
                out.push(a);
                n += 1;
            }
            n
        }
        fn error(&mut self) -> Option<CoreError> {
            self.error.take()
        }
    }

    fn source(answers: Vec<Answer>) -> Box<dyn RemoteShard> {
        Box::new(Scripted {
            answers: answers.into(),
            error: None,
        })
    }

    #[test]
    fn remote_sources_run_the_cross_shard_reduce() {
        let plan = office_plan();
        let db = Database::builder(schema())
            .fact("HasOffice", ["bob", "lab"])
            .fact("InBuilding", ["lab", "west"])
            .build()
            .unwrap();
        let west = db.const_id("west").unwrap();
        // Shard 1 (chase-only researcher) yields the all-star answer; shard 2
        // yields the constant `west`, which dominates it cross-shard.
        let all_star = Answer::Partial(PartialTuple(vec![PartialValue::Star]));
        let constant = Answer::Partial(PartialTuple(vec![PartialValue::Const(west)]));
        let stream = AnswerStream::from_remote(
            &plan,
            Semantics::MinimalPartial,
            vec![
                source(vec![all_star.clone()]),
                source(vec![constant.clone()]),
            ],
        )
        .unwrap();
        assert_eq!(stream.semantics(), Semantics::MinimalPartial);
        assert_eq!(stream.try_collect().unwrap(), vec![constant]);
        // With every shard reporting only the all-star, it survives — once.
        let stream = AnswerStream::from_remote(
            &plan,
            Semantics::MinimalPartial,
            vec![
                source(vec![all_star.clone()]),
                source(vec![all_star.clone()]),
            ],
        )
        .unwrap();
        assert_eq!(stream.try_collect().unwrap(), vec![all_star]);
    }

    #[test]
    fn remote_complete_answers_concatenate_and_boolean_dedups() {
        let plan = office_plan();
        let db = Database::builder(schema())
            .fact("InBuilding", ["lab", "west"])
            .fact("InBuilding", ["den", "east"])
            .build()
            .unwrap();
        let west = Answer::Complete(vec![db.const_id("west").unwrap()]);
        let east = Answer::Complete(vec![db.const_id("east").unwrap()]);
        let stream = AnswerStream::from_remote(
            &plan,
            Semantics::Complete,
            vec![source(vec![west.clone()]), source(vec![east.clone()])],
        )
        .unwrap();
        assert_eq!(stream.try_collect().unwrap(), vec![west, east]);

        // Boolean query: two satisfiable shards, one empty tuple out.
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q() :- Researcher(x)").unwrap();
        let plan =
            QueryPlan::compile(&OntologyMediatedQuery::new(ontology, query).unwrap()).unwrap();
        let sat = Answer::Complete(Vec::new());
        let mut stream = AnswerStream::from_remote(
            &plan,
            Semantics::Complete,
            vec![source(vec![sat.clone()]), source(vec![sat.clone()])],
        )
        .unwrap();
        let mut page = Vec::new();
        assert_eq!(stream.next_batch(&mut page, 16), 1);
        assert_eq!(page, vec![sat]);
        assert_eq!(stream.emitted(), 1);
        assert!(stream.error().is_none());
    }

    #[test]
    fn remote_source_failures_terminate_the_stream() {
        let plan = office_plan();
        let db = Database::builder(schema())
            .fact("InBuilding", ["lab", "west"])
            .build()
            .unwrap();
        let west = Answer::Partial(PartialTuple(vec![PartialValue::Const(
            db.const_id("west").unwrap(),
        )]));
        let mut stream = AnswerStream::from_remote(
            &plan,
            Semantics::MinimalPartial,
            vec![
                source(vec![west.clone()]),
                Box::new(Scripted {
                    answers: VecDeque::new(),
                    error: Some(CoreError::Internal("worker died".to_owned())),
                }),
            ],
        )
        .unwrap();
        // The healthy shard's constant-bearing answer streams through first…
        assert_eq!(stream.next(), Some(west));
        // …then the dead shard ends the stream with its error.
        assert_eq!(stream.next(), None);
        assert!(matches!(stream.error(), Some(CoreError::Internal(m)) if m == "worker died"));
        // A failed stream stays ended.
        assert_eq!(stream.next(), None);

        // A semantics mismatch is an executor bug and also terminates.
        let bad = Answer::Complete(vec![db.const_id("west").unwrap()]);
        let mut stream =
            AnswerStream::from_remote(&plan, Semantics::MinimalPartial, vec![source(vec![bad])])
                .unwrap();
        assert_eq!(stream.next(), None);
        assert!(matches!(stream.error(), Some(CoreError::Internal(_))));
    }
}
