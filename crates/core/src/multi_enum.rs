//! Algorithm 2: enumeration of minimal partial answers with multi-wildcards
//! (Theorem 6.1 of the paper), plus the "complete answers first" ordering of
//! Proposition 2.1.
//!
//! The algorithm combines the Algorithm 1 enumerator (minimal partial answers
//! with a *single* wildcard) with a tester for (not necessarily minimal)
//! partial answers with multi-wildcards.  For every single-wildcard answer
//! `ā*` it inspects the constant-size *cone* of `ā*` (all multi-wildcard
//! refinements of all weakenings of `ā*`), collects the refinements that are
//! partial answers into a list `L`, prunes dominated tuples, outputs one
//! minimal element of the *ball* of `ā*` right away, and flushes the remainder
//! of `L` at the end (Lemma 6.3 shows this outputs exactly the minimal partial
//! answers with multi-wildcards, without repetition).
//!
//! [`MultiEnumerator`] runs the algorithm as a **pull-based cursor**: the
//! single-wildcard answers are drawn lazily from the Algorithm 1 cursor, each
//! drawn answer contributes at most one immediate output (the ball step), and
//! the `L` flush is itself iterated lazily — so `take(k)` performs `O(k)`
//! enumeration work and dropping the cursor mid-stream abandons the rest.

use crate::error::CoreError;
use crate::partial_enum::PartialEnumerator;
use crate::preprocess::PlanSkeleton;
use crate::single_testing;
use crate::Result;
use omq_cq::ConjunctiveQuery;
use omq_data::wildcard::{multi_wildcard_ball, multi_wildcard_cone, set_partitions};
use omq_data::{Database, MultiTuple, MultiValue, PartialTuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the cursor reaches the chased database it tests candidates against:
/// either a caller-provided borrow, or a shared shard vector (which makes the
/// cursor `'static` and lets it outlive the `PreparedInstance` it came from).
#[derive(Debug)]
enum DbRef<'a> {
    Borrowed(&'a Database),
    Shard(Arc<Vec<Arc<Database>>>, usize),
}

impl DbRef<'_> {
    fn get(&self) -> &Database {
        match self {
            DbRef::Borrowed(db) => db,
            DbRef::Shard(shards, idx) => &shards[*idx],
        }
    }
}

/// The Algorithm 2 enumerator — a lazy cursor over the minimal partial
/// answers with multi-wildcards.
///
/// The side tables are ordered maps rather than hash maps, keeping the loop
/// hash-free.  Honest trade-off: `f_table`/`l_pos` accumulate candidates
/// across the whole run, so these lookups are log-bounded in the number of
/// answers seen so far (the paper's F table is a RAM-model constant-time
/// dictionary); in practice the cost is dominated by the homomorphism tester,
/// whose results are cached in `tester_cache` (playing the role of the
/// paper's preprocessed all-testing structures A₂: cones of different answers
/// overlap heavily in their constant-free candidates).
///
/// The only fallible step after construction is the candidate tester; a
/// tester error ends the stream and is reported by
/// [`MultiEnumerator::error`].
#[derive(Debug)]
pub struct MultiEnumerator<'a> {
    /// The Algorithm 1 cursor supplying the single-wildcard answers.
    single: PartialEnumerator,
    db: DbRef<'a>,
    /// The list L (insertion order) with O(1) removal via an index map.
    l_order: Vec<MultiTuple>,
    l_alive: Vec<bool>,
    l_pos: BTreeMap<MultiTuple, usize>,
    /// The lookup table F: tuples that have been added to L or ruled out.
    f_table: BTreeSet<MultiTuple>,
    tester_cache: BTreeMap<MultiTuple, bool>,
    /// `None` while single-wildcard answers are still being consumed;
    /// `Some(i)` once the cursor is flushing `l_order[i..]`.
    flush_pos: Option<usize>,
    error: Option<CoreError>,
}

impl<'a> MultiEnumerator<'a> {
    /// Preprocesses `query` over the chased instance `d0`.
    ///
    /// Requires the query to be acyclic and free-connex acyclic.
    pub fn new(query: &ConjunctiveQuery, d0: &'a Database) -> Result<Self> {
        let skeleton = PlanSkeleton::compile(query)?;
        Self::with_skeleton(&skeleton, d0)
    }

    /// Preprocesses a compiled skeleton over the chased instance `d0`.
    pub fn with_skeleton(skeleton: &PlanSkeleton, d0: &'a Database) -> Result<Self> {
        Ok(Self::from_parts(
            PartialEnumerator::with_skeleton(skeleton, d0)?,
            DbRef::Borrowed(d0),
        ))
    }

    /// Builds a `'static` cursor over one shard of a shared shard vector
    /// (used by the owning `AnswerStream`).
    pub(crate) fn for_shard(
        skeleton: &PlanSkeleton,
        shards: Arc<Vec<Arc<Database>>>,
        idx: usize,
    ) -> Result<MultiEnumerator<'static>> {
        let single = PartialEnumerator::with_skeleton(skeleton, &shards[idx])?;
        Ok(MultiEnumerator::from_parts(
            single,
            DbRef::Shard(shards, idx),
        ))
    }

    fn from_parts(single: PartialEnumerator, db: DbRef<'a>) -> MultiEnumerator<'a> {
        MultiEnumerator {
            single,
            db,
            l_order: Vec::new(),
            l_alive: Vec::new(),
            l_pos: BTreeMap::new(),
            f_table: BTreeSet::new(),
            tester_cache: BTreeMap::new(),
            flush_pos: None,
            error: None,
        }
    }

    /// The error that ended the stream early, if any.  Check after the
    /// iterator returns `None` when exactness matters.
    pub fn error(&self) -> Option<&CoreError> {
        self.error.as_ref()
    }

    /// Batched pull: produces up to `limit` answers, invoking `emit` for each,
    /// without re-entering [`Iterator::next`] per tuple.  Returns the number
    /// produced; fewer than `limit` means the stream ended (exhausted or
    /// failed — check [`MultiEnumerator::error`]).
    pub fn fill_with(&mut self, limit: usize, mut emit: impl FnMut(MultiTuple)) -> usize {
        if limit == 0 || self.error.is_some() {
            return 0;
        }
        let mut produced = 0usize;
        if self.flush_pos.is_none() {
            // Interleave the single-wildcard pull with the cone and ball
            // steps, one answer at a time: `step` has side effects on `L`/`F`,
            // so pulling ahead of the emitted prefix would lose work when the
            // caller stops at `limit`.
            while produced < limit {
                let Some(a_star) = self.single.next() else {
                    // Single-wildcard answers exhausted: flush the rest of L.
                    self.flush_pos = Some(0);
                    break;
                };
                match self.step(&a_star) {
                    Ok(Some(t)) => {
                        emit(t);
                        produced += 1;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.error = Some(e);
                        return produced;
                    }
                }
            }
        }
        if let Some(pos) = self.flush_pos.as_mut() {
            while *pos < self.l_order.len() && produced < limit {
                let i = *pos;
                *pos += 1;
                if self.l_alive[i] {
                    emit(self.l_order[i].clone());
                    produced += 1;
                }
            }
        }
        produced
    }

    /// Processes one single-wildcard answer: cone maintenance of `L`/`F`,
    /// then the ball step, whose chosen minimal element (if any) is the
    /// immediate output for this answer.
    fn step(&mut self, a_star: &PartialTuple) -> Result<Option<MultiTuple>> {
        let query = &self.single.structure().query;
        let db = self.db.get();
        // Candidates from the cone that are partial answers and not yet seen.
        for candidate in multi_wildcard_cone(a_star) {
            if self.f_table.contains(&candidate) {
                continue;
            }
            if !test_cached(&mut self.tester_cache, query, db, &candidate)? {
                continue;
            }
            self.f_table.insert(candidate.clone());
            let pos = self.l_order.len();
            self.l_order.push(candidate.clone());
            self.l_alive.push(true);
            self.l_pos.insert(candidate.clone(), pos);
            // Prune: every tuple strictly dominated by `candidate` can never
            // be a minimal answer; mark it in F and drop it from L.
            for dominated in strictly_above(&candidate) {
                self.f_table.insert(dominated.clone());
                if let Some(&p) = self.l_pos.get(&dominated) {
                    self.l_alive[p] = false;
                }
            }
        }
        // Output one minimal element of the ball of ā* right away.
        let mut ball_answers: Vec<MultiTuple> = Vec::new();
        for t in multi_wildcard_ball(a_star) {
            if test_cached(&mut self.tester_cache, query, db, &t)? {
                ball_answers.push(t);
            }
        }
        ball_answers.sort();
        let minimal = MultiTuple::minimal(&ball_answers);
        if let Some(chosen) = minimal.first() {
            if let Some(&p) = self.l_pos.get(chosen) {
                self.l_alive[p] = false;
            }
            return Ok(Some(chosen.clone()));
        }
        Ok(None)
    }
}

impl Iterator for MultiEnumerator<'_> {
    type Item = MultiTuple;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        if self.flush_pos.is_none() {
            while let Some(a_star) = self.single.next() {
                match self.step(&a_star) {
                    Ok(Some(t)) => return Some(t),
                    Ok(None) => {}
                    Err(e) => {
                        self.error = Some(e);
                        return None;
                    }
                }
            }
            // Single-wildcard answers exhausted: flush the remainder of L.
            self.flush_pos = Some(0);
        }
        let pos = self.flush_pos.as_mut().expect("set above");
        while *pos < self.l_order.len() {
            let i = *pos;
            *pos += 1;
            if self.l_alive[i] {
                return Some(self.l_order[i].clone());
            }
        }
        None
    }
}

impl std::iter::FusedIterator for MultiEnumerator<'_> {}

/// The memoised partial-answer tester shared by the cone and ball steps.
fn test_cached(
    cache: &mut BTreeMap<MultiTuple, bool>,
    query: &ConjunctiveQuery,
    db: &Database,
    candidate: &MultiTuple,
) -> Result<bool> {
    if let Some(&cached) = cache.get(candidate) {
        return Ok(cached);
    }
    let result = single_testing::test_partial_multi(query, db, candidate)?;
    cache.insert(candidate.clone(), result);
    Ok(result)
}

/// Enumerates the minimal partial answers with multi-wildcards of `query`
/// over the chased instance `d0`, invoking `output` exactly once per answer.
pub fn enumerate_minimal_partial_multi(
    query: &ConjunctiveQuery,
    d0: &Database,
    output: impl FnMut(MultiTuple),
) -> Result<()> {
    let skeleton = PlanSkeleton::compile(query)?;
    enumerate_minimal_partial_multi_prepared(&skeleton, d0, output)
}

/// [`enumerate_minimal_partial_multi`] over a precompiled skeleton, reusing
/// the query-side artefacts across databases.  Thin loop over
/// [`MultiEnumerator`].
pub fn enumerate_minimal_partial_multi_prepared(
    skeleton: &PlanSkeleton,
    d0: &Database,
    mut output: impl FnMut(MultiTuple),
) -> Result<()> {
    let mut cursor = MultiEnumerator::with_skeleton(skeleton, d0)?;
    for t in &mut cursor {
        output(t);
    }
    match cursor.error() {
        Some(e) => Err(e.clone()),
        None => Ok(()),
    }
}

/// Convenience: collects the minimal partial answers with multi-wildcards.
pub fn minimal_partial_multi_answers(
    query: &ConjunctiveQuery,
    d0: &Database,
) -> Result<Vec<MultiTuple>> {
    let mut out = Vec::new();
    enumerate_minimal_partial_multi(query, d0, |t| out.push(t))?;
    Ok(out)
}

/// All multi-wildcard tuples strictly above `tuple` in the preference order
/// `≺` (a constant-size set: weaken constant positions to wildcards and/or
/// split wildcard groups, subject to the order's conditions).
fn strictly_above(tuple: &MultiTuple) -> Vec<MultiTuple> {
    let n = tuple.len();
    let const_positions: Vec<usize> = (0..n)
        .filter(|&i| matches!(tuple.0[i], MultiValue::Const(_)))
        .collect();
    let mut result: Vec<MultiTuple> = Vec::new();
    let mut seen: BTreeSet<MultiTuple> = BTreeSet::new();
    for mask in 0u64..(1u64 << const_positions.len().min(63)) {
        // Positions that become wildcards in the candidate.
        let mut wild_positions: Vec<usize> = (0..n)
            .filter(|&i| matches!(tuple.0[i], MultiValue::Wild(_)))
            .collect();
        for (bit, &pos) in const_positions.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                wild_positions.push(pos);
            }
        }
        wild_positions.sort_unstable();
        // Partition the wildcard positions into groups; a block is admissible
        // only if all its positions carry the same value in `tuple`
        // (condition (2) of the order).
        for partition in set_partitions(&wild_positions) {
            if !partition
                .iter()
                .all(|block| block.iter().all(|&i| tuple.0[i] == tuple.0[block[0]]))
            {
                continue;
            }
            let mut values: Vec<MultiValue> = tuple.0.clone();
            for (block_idx, block) in partition.iter().enumerate() {
                for &pos in block {
                    values[pos] = MultiValue::Wild(block_idx as u32 + 1);
                }
            }
            let candidate = MultiTuple::from_values(&values);
            if &candidate != tuple
                && tuple.preferred_lt(&candidate)
                && seen.insert(candidate.clone())
            {
                result.push(candidate);
            }
        }
    }
    result
}

/// Proposition 2.1: enumerate minimal partial answers (single wildcard) with
/// all complete answers first.
///
/// Runs the complete-answer enumerator and the Algorithm 1 enumerator "in
/// parallel": while complete answers remain, each step outputs one of them and
/// stores any wildcard answer produced by Algorithm 1; afterwards, wildcard
/// answers are output directly and stored answers replace the complete ones
/// Algorithm 1 re-discovers.
pub fn minimal_partial_answers_complete_first(
    query: &ConjunctiveQuery,
    d0: &Database,
) -> Result<Vec<PartialTuple>> {
    let skeleton = PlanSkeleton::compile(query)?;
    minimal_partial_answers_complete_first_prepared(&skeleton, d0)
}

/// [`minimal_partial_answers_complete_first`] over a precompiled skeleton.
pub fn minimal_partial_answers_complete_first_prepared(
    skeleton: &PlanSkeleton,
    d0: &Database,
) -> Result<Vec<PartialTuple>> {
    let complete_structure =
        crate::preprocess::FreeConnexStructure::materialize(skeleton, d0, true)?;
    let mut complete_iter = crate::enumerate::AnswerIter::new(&complete_structure);
    let partial: Vec<PartialTuple> = PartialEnumerator::with_skeleton(skeleton, d0)?.collect();

    let mut output: Vec<PartialTuple> = Vec::new();
    let mut stored: Vec<PartialTuple> = Vec::new();
    let mut complete_done = false;
    for answer in partial {
        if !complete_done {
            match complete_iter.next() {
                Some(complete) => {
                    output.push(PartialTuple::from_answer(&complete));
                    if !answer.is_complete() {
                        stored.push(answer);
                    }
                    continue;
                }
                None => complete_done = true,
            }
        }
        if answer.is_complete() {
            // Replace by a stored wildcard answer (there is one for every
            // complete answer re-discovered after the switch).
            if let Some(replacement) = stored.pop() {
                output.push(replacement);
            } else {
                output.push(answer);
            }
        } else {
            output.push(answer);
        }
    }
    // Any remaining stored answers (when Algorithm 1 finished before the
    // complete enumerator did not happen — defensively flush).
    output.extend(stored);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use omq_data::{ConstId, Fact, Schema, Value};
    use rustc_hash::FxHashSet;

    fn mt(spec: &[(bool, u32)]) -> MultiTuple {
        MultiTuple(
            spec.iter()
                .map(|(is_const, i)| {
                    if *is_const {
                        MultiValue::Const(ConstId(*i))
                    } else {
                        MultiValue::Wild(*i)
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn strictly_above_generates_the_order() {
        // (a, *1) is below (*1, *2); it is not below (*1, *1) because the
        // latter identifies the two positions while (a, *1) does not.
        let t = mt(&[(true, 0), (false, 1)]);
        let above = strictly_above(&t);
        assert!(above.contains(&mt(&[(false, 1), (false, 2)])));
        assert!(!above.contains(&mt(&[(false, 1), (false, 1)])));
        assert!(!above.contains(&t));
        for candidate in &above {
            assert!(t.preferred_lt(candidate));
        }
        // (a, b): above it are (*1,b), (a,*1), (*1,*2), (*1,*1)... but (*1,*1)
        // requires equal underlying values (condition 2), which fails for a≠b.
        let ab = mt(&[(true, 0), (true, 1)]);
        let above = strictly_above(&ab);
        assert!(above.contains(&mt(&[(false, 1), (true, 1)])));
        assert!(above.contains(&mt(&[(true, 0), (false, 1)])));
        assert!(above.contains(&mt(&[(false, 1), (false, 2)])));
        assert!(!above.contains(&mt(&[(false, 1), (false, 1)])));
    }

    fn check_against_oracle(query_text: &str, db: &Database) {
        let q = ConjunctiveQuery::parse(query_text).unwrap();
        let fast = minimal_partial_multi_answers(&q, db).unwrap();
        let oracle = baseline::cq_minimal_partial_multi(&q, db);
        let fast_set: FxHashSet<MultiTuple> = fast.iter().cloned().collect();
        let oracle_set: FxHashSet<MultiTuple> = oracle.iter().cloned().collect();
        assert_eq!(
            fast_set, oracle_set,
            "answer sets differ for {query_text}: fast={fast:?} oracle={oracle:?}"
        );
        assert_eq!(fast_set.len(), fast.len(), "duplicates for {query_text}");
        // The lazy cursor yields the same sequence, and every prefix of it is
        // reachable by early termination.
        let mut cursor = MultiEnumerator::new(&q, db).unwrap();
        let via_cursor: Vec<MultiTuple> = (&mut cursor).collect();
        assert!(cursor.error().is_none());
        assert_eq!(via_cursor, fast, "cursor diverges for {query_text}");
        for k in [0, 1, 2, fast.len()] {
            let prefix: Vec<MultiTuple> = MultiEnumerator::new(&q, db).unwrap().take(k).collect();
            assert_eq!(prefix, fast[..k.min(fast.len())], "take({k}) diverges");
        }
    }

    /// The Example 6.2 database: A(c) spawns R(c, n1), T(c, n1), S(c, n2) and
    /// the data additionally contains R(c, c').
    fn example_6_2_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        schema.add_relation("T", 2).unwrap();
        let mut db = Database::new(schema);
        db.add_named_fact("R", &["c", "cprime"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s = db.schema().relation_id("S").unwrap();
        let t = db.schema().relation_id("T").unwrap();
        let c = Value::Const(db.const_id("c").unwrap());
        let n1 = Value::Null(db.fresh_null());
        let n2 = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![c, n1])).unwrap();
        db.add_fact(Fact::new(t, vec![c, n1])).unwrap();
        db.add_fact(Fact::new(s, vec![c, n2])).unwrap();
        db
    }

    #[test]
    fn example_6_2_cone_is_needed() {
        // q0(x0,x1,x2,x3) = R(x0,x1) ∧ S(x0,x2) ∧ T(x0,x3); the answer
        // (c, *1, *2, *1) is only found through the cone (not the ball) of the
        // single-wildcard answer (c, c', *, *).
        let db = example_6_2_db();
        let q = ConjunctiveQuery::parse("q(x0, x1, x2, x3) :- R(x0, x1), S(x0, x2), T(x0, x3)")
            .unwrap();
        let answers = minimal_partial_multi_answers(&q, &db).unwrap();
        let c = db.const_id("c").unwrap();
        let cprime = db.const_id("cprime").unwrap();
        use MultiValue::{Const, Wild};
        let through_cone = MultiTuple(vec![Const(c), Wild(1), Wild(2), Wild(1)]);
        let through_ball = MultiTuple(vec![Const(c), Const(cprime), Wild(1), Wild(2)]);
        assert!(answers.contains(&through_cone), "answers: {answers:?}");
        assert!(answers.contains(&through_ball), "answers: {answers:?}");
        check_against_oracle("q(x0, x1, x2, x3) :- R(x0, x1), S(x0, x2), T(x0, x3)", &db);
    }

    #[test]
    fn multi_wildcard_answers_match_oracle_on_chaselike_data() {
        let db = example_6_2_db();
        for text in [
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- R(x, y), S(x, z)",
            "q(x, y, z) :- R(x, y), T(x, z)",
            "q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)",
        ] {
            check_against_oracle(text, &db);
        }
    }

    #[test]
    fn complete_answers_first_ordering() {
        let db = example_6_2_db();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let ordered = minimal_partial_answers_complete_first(&q, &db).unwrap();
        // Same set as Algorithm 1 ...
        let plain = crate::partial_enum::minimal_partial_answers(&q, &db).unwrap();
        let ordered_set: FxHashSet<PartialTuple> = ordered.iter().cloned().collect();
        let plain_set: FxHashSet<PartialTuple> = plain.iter().cloned().collect();
        assert_eq!(ordered_set, plain_set);
        // ... but all complete answers come first.
        let first_wildcard = ordered.iter().position(|t| !t.is_complete());
        if let Some(cut) = first_wildcard {
            assert!(ordered[cut..].iter().all(|t| !t.is_complete()));
        }
    }

    #[test]
    fn boolean_query_multi_wildcards() {
        let db = example_6_2_db();
        let q = ConjunctiveQuery::parse("q() :- R(x, y)").unwrap();
        let answers = minimal_partial_multi_answers(&q, &db).unwrap();
        assert_eq!(answers, vec![MultiTuple(Vec::new())]);
    }
}
