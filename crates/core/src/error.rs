//! Error type for the core enumeration crate.

use std::fmt;

/// Errors raised by the enumeration engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The operation requires an acyclic query.
    NotAcyclic(String),
    /// The operation requires a free-connex acyclic query.
    NotFreeConnex(String),
    /// The operation requires both acyclicity and free-connex acyclicity.
    NotEnumerationTractable(String),
    /// The operation requires a guarded ontology.
    NotGuarded(String),
    /// A candidate tuple has the wrong arity.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Supplied arity.
        actual: usize,
    },
    /// A constant name supplied by the caller is unknown to the database.
    UnknownConstant(String),
    /// The operation is only defined on single-shard instances (sequential
    /// executions); the instance at hand was produced by a sharded parallel
    /// execution.  Use the shard-aware `enumerate_*`/`stream_*`/`test_*`
    /// methods, or evaluate per shard.
    ShardedInstance(String),
    /// Internal invariant violation (indicates a bug; reported instead of
    /// panicking so that callers can surface it).
    Internal(String),
    /// A query-layer error bubbled up.
    Cq(omq_cq::CqError),
    /// A chase-layer error bubbled up.
    Chase(omq_chase::ChaseError),
    /// A data-layer error bubbled up.
    Data(omq_data::DataError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotAcyclic(q) => write!(f, "query is not acyclic: {q}"),
            CoreError::NotFreeConnex(q) => write!(f, "query is not free-connex acyclic: {q}"),
            CoreError::NotEnumerationTractable(q) => write!(
                f,
                "query is not both acyclic and free-connex acyclic, enumeration with constant delay is not supported: {q}"
            ),
            CoreError::NotGuarded(o) => write!(f, "ontology is not guarded: {o}"),
            CoreError::ArityMismatch { expected, actual } => {
                write!(f, "candidate has arity {actual}, expected {expected}")
            }
            CoreError::UnknownConstant(c) => write!(f, "unknown constant `{c}`"),
            CoreError::ShardedInstance(op) => write!(
                f,
                "`{op}` exposes a single chased database and is only defined on single-shard \
                 instances; this instance is sharded — use the shard-aware methods"
            ),
            CoreError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            CoreError::Cq(e) => write!(f, "query error: {e}"),
            CoreError::Chase(e) => write!(f, "chase error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cq(e) => Some(e),
            CoreError::Chase(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<omq_cq::CqError> for CoreError {
    fn from(e: omq_cq::CqError) -> Self {
        CoreError::Cq(e)
    }
}

impl From<omq_chase::ChaseError> for CoreError {
    fn from(e: omq_chase::ChaseError) -> Self {
        CoreError::Chase(e)
    }
}

impl From<omq_data::DataError> for CoreError {
    fn from(e: omq_data::DataError) -> Self {
        CoreError::Data(e)
    }
}
