//! Atom extensions: materialised variable bindings with semijoin and
//! projection operations.
//!
//! The preprocessing phases of the paper's algorithms manipulate, for each
//! atom of the query, the set of variable bindings that match the database
//! (its *extension*), reduced by semijoins along a join tree.  This module
//! provides that machinery.

use omq_cq::{Atom, Term, VarId};
use omq_data::{Database, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// A tuple of values, ordered consistently with an [`Extension`]'s variables.
/// Owned tuples are only built at seams that need them (hash keys, answer
/// materialisation); the extension itself stores its rows flat.
pub type Tuple = Vec<Value>;

/// The extension of an atom (or of a derived relation): a set of distinct
/// tuples over an ordered list of variables.
///
/// Rows are stored **flat and row-major** (`data[i * width..(i + 1) * width]`
/// is tuple `i`): one contiguous allocation per extension instead of one
/// `Vec<Value>` per tuple, so the per-answer loops that walk neighbouring
/// tuples (`JoinCsr` parent joins, answer materialisation) stay within one
/// cache-friendly block and the builders stop paying a heap allocation per
/// row.
#[derive(Debug, Clone)]
pub struct Extension {
    /// The variables, in a fixed order.
    pub vars: Vec<VarId>,
    /// Flat row-major tuple storage; `vars.len()` values per row.
    data: Vec<Value>,
    /// Number of rows (kept explicitly: zero-arity extensions have
    /// `width == 0`, so the row count cannot be derived from `data`).
    rows: usize,
}

impl Extension {
    /// Creates an empty extension over the given variables.
    pub fn empty(vars: Vec<VarId>) -> Self {
        Extension {
            vars,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Number of values per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Tuple `i` as a value slice (length [`Extension::width`]).
    #[inline]
    pub fn tuple(&self, i: usize) -> &[Value] {
        let w = self.vars.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// The value at row `i`, column `col`.
    #[inline]
    pub fn value(&self, i: usize, col: usize) -> Value {
        self.data[i * self.vars.len() + col]
    }

    /// Iterates over the rows as value slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        (0..self.rows).map(move |i| self.tuple(i))
    }

    /// Appends a row (length must equal [`Extension::width`]; uniqueness is
    /// the caller's concern).
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.vars.len());
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Materialises the extension of `atom` over `db`: the distinct bindings
    /// of the atom's variables under which the atom is a fact of `db`.
    /// Constants in the atom must match literally; repeated variables enforce
    /// equality.
    ///
    /// When `drop_null_for` is non-empty, tuples that assign a labelled null
    /// to any variable in that set are dropped — this implements the `P_db`
    /// relativisation used for complete answers.
    ///
    /// The scan compiles the atom into per-position *slots* once and then
    /// iterates over a columnar fact slice: constant positions narrow the
    /// candidate slice through the most selective column, and the inner loop
    /// performs no hash lookups.
    pub fn of_atom(atom: &Atom, db: &Database, drop_null_for: &FxHashSet<VarId>) -> Extension {
        /// What to do with one argument position of a candidate fact.
        enum Slot {
            /// Must equal this literal constant.
            Check(Value),
            /// First occurrence of a variable: bind column `col`; `true` if
            /// tuples binding this column to a null must be dropped.
            First(usize, bool),
            /// Repeated variable: must equal the value bound at column `col`.
            Repeat(usize),
        }

        let vars = atom.variables();
        let Some(rel) = db.schema().relation_id(&atom.relation) else {
            return Extension::empty(vars);
        };
        if db.schema().arity(rel) != atom.arity() {
            return Extension::empty(vars);
        }
        // Compile the atom: resolve constants once and map every position to
        // a slot over the dense column layout `vars`.
        let mut slots: Vec<Slot> = Vec::with_capacity(atom.arity());
        let mut first_of: Vec<Option<usize>> = vec![None; vars.len()];
        for term in &atom.terms {
            match term {
                Term::Const(name) => match db.const_id(name) {
                    Some(c) => slots.push(Slot::Check(Value::Const(c))),
                    None => return Extension::empty(vars),
                },
                Term::Var(v) => {
                    let col = vars.iter().position(|x| x == v).expect("var listed");
                    match first_of[col] {
                        Some(_) => slots.push(Slot::Repeat(col)),
                        None => {
                            first_of[col] = Some(slots.len());
                            slots.push(Slot::First(col, drop_null_for.contains(v)));
                        }
                    }
                }
            }
        }
        // Narrow the candidates through the most selective constant column.
        let mut candidates: Option<(usize, Value, &[usize])> = None;
        for (pos, slot) in slots.iter().enumerate() {
            if let Slot::Check(value) = slot {
                let narrowed = db.facts_with(rel, pos, *value);
                if candidates
                    .map(|(_, _, c)| narrowed.len() < c.len())
                    .unwrap_or(true)
                {
                    candidates = Some((pos, *value, narrowed));
                }
            }
        }

        // Scan through the structure-of-arrays columns: each checked position
        // reads one contiguous `Value` column instead of chasing the per-fact
        // `args` allocation.  The unrestricted scan walks rows `0..n`
        // sequentially.
        let columnar = db.columnar();
        let cols = columnar
            .rel_columns(rel)
            .expect("relation is in the schema the index was built from");
        let col_slices: Vec<&[Value]> = (0..atom.arity()).map(|p| cols.column(p)).collect();

        // Constant positions resolve to a packed row-id list before the
        // binding loop runs.  A selective constant remaps its CSR fact ids to
        // column rows (one random access per match); a dense one is cheaper
        // to rediscover with a chunked vectorized column scan
        // ([`omq_data::kernels::select_eq`]) than to remap row by row.  Any
        // further constant columns refine the list in place, so the binding
        // loop below only ever sees rows whose constants already matched.
        let mut row_list: Option<Vec<u32>> = None;
        if let Some((best_pos, best_value, narrowed)) = candidates {
            let mut rows: Vec<u32> = Vec::new();
            if narrowed.len() * 4 >= cols.rows() {
                omq_data::kernels::select_eq(col_slices[best_pos], best_value, &mut rows);
            } else {
                rows.extend(narrowed.iter().map(|&idx| columnar.row_of_fact(idx)));
            }
            for (pos, slot) in slots.iter().enumerate() {
                if let Slot::Check(value) = slot {
                    if pos != best_pos {
                        omq_data::kernels::retain_matching(col_slices[pos], *value, &mut rows);
                    }
                }
            }
            row_list = Some(rows);
        }

        let mut out = Extension::empty(vars);
        let mut seen: FxHashSet<Tuple> = FxHashSet::default();
        let mut scratch: Tuple = vec![Value::Const(omq_data::ConstId(0)); out.vars.len()];
        let mut visit = |row: usize| {
            for (slot, column) in slots.iter().zip(&col_slices) {
                match slot {
                    // Constants were verified by the row-list refinement (or
                    // there are none on the unrestricted path).
                    Slot::Check(expected) => {
                        debug_assert_eq!(*expected, column[row]);
                    }
                    Slot::First(col, drop_null) => {
                        let actual = column[row];
                        if *drop_null && actual.is_null() {
                            return;
                        }
                        scratch[*col] = actual;
                    }
                    Slot::Repeat(col) => {
                        if scratch[*col] != column[row] {
                            return;
                        }
                    }
                }
            }
            if !seen.contains(&scratch) {
                seen.insert(scratch.clone());
                out.push_row(&scratch);
            }
        };
        match &row_list {
            Some(rows) => {
                for &row in rows {
                    visit(row as usize);
                }
            }
            None => {
                for row in 0..cols.rows() {
                    visit(row);
                }
            }
        }
        out
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` iff the extension has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Position of a variable within [`Extension::vars`], if present.
    pub fn position_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Projects the extension onto `keep` (all of which must occur in
    /// [`Extension::vars`]), deduplicating the resulting tuples.
    pub fn project(&self, keep: &[VarId]) -> Extension {
        let positions: Vec<usize> = keep
            .iter()
            .map(|v| self.position_of(*v).expect("projection variable present"))
            .collect();
        let mut seen: FxHashSet<Tuple> = FxHashSet::default();
        let mut out = Extension::empty(keep.to_vec());
        for t in self.rows() {
            let projected: Tuple = positions.iter().map(|&p| t[p]).collect();
            if !seen.contains(&projected) {
                out.push_row(&projected);
                seen.insert(projected);
            }
        }
        out
    }

    /// The variables shared with another extension, in this extension's order.
    pub fn shared_vars(&self, other: &Extension) -> Vec<VarId> {
        self.vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect()
    }

    /// Semijoin-reduces this extension by `other`: keeps only the tuples that
    /// agree with some tuple of `other` on the shared variables.  Returns
    /// `true` iff any tuple was removed.  If the extensions share no
    /// variables, tuples are kept iff `other` is non-empty.
    pub fn semijoin(&mut self, other: &Extension) -> bool {
        let shared = self.shared_vars(other);
        if shared.is_empty() {
            if other.is_empty() && self.rows != 0 {
                self.data.clear();
                self.rows = 0;
                return true;
            }
            return false;
        }
        let other_positions: Vec<usize> = shared
            .iter()
            .map(|v| other.position_of(*v).expect("shared variable"))
            .collect();
        let my_positions: Vec<usize> = shared
            .iter()
            .map(|v| self.position_of(*v).expect("shared variable"))
            .collect();
        let keys: FxHashSet<Tuple> = other
            .rows()
            .map(|t| other_positions.iter().map(|&p| t[p]).collect())
            .collect();
        // In-place compaction of the flat storage: surviving rows are copied
        // down over the dropped ones (`Value` is `Copy`), no reallocation.
        let w = self.vars.len();
        let before = self.rows;
        let mut probe: Tuple = Vec::with_capacity(my_positions.len());
        let mut kept = 0usize;
        for i in 0..self.rows {
            probe.clear();
            probe.extend(my_positions.iter().map(|&p| self.data[i * w + p]));
            if keys.contains(&probe) {
                if kept != i {
                    self.data.copy_within(i * w..(i + 1) * w, kept * w);
                }
                kept += 1;
            }
        }
        self.data.truncate(kept * w);
        self.rows = kept;
        self.rows != before
    }

    /// Builds an index from the projection onto `key_vars` to the indices of
    /// the matching tuples.
    pub fn index_on(&self, key_vars: &[VarId]) -> FxHashMap<Tuple, Vec<usize>> {
        let positions: Vec<usize> = key_vars
            .iter()
            .map(|v| self.position_of(*v).expect("key variable present"))
            .collect();
        let mut index: FxHashMap<Tuple, Vec<usize>> = FxHashMap::default();
        for (i, t) in self.rows().enumerate() {
            let key: Tuple = positions.iter().map(|&p| t[p]).collect();
            index.entry(key).or_default().push(i);
        }
        index
    }

    /// A hash set of the tuples (for membership tests).
    pub fn tuple_set(&self) -> FxHashSet<Tuple> {
        self.rows().map(<[Value]>::to_vec).collect()
    }

    /// Looks up the value of `v` in tuple `idx`.
    pub fn value_at(&self, idx: usize, v: VarId) -> Option<Value> {
        self.position_of(v).map(|p| self.value(idx, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_cq::ConjunctiveQuery;
    use omq_data::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["a", "c"])
            .fact("R", ["d", "d"])
            .fact("S", ["b", "e"])
            .build()
            .unwrap()
    }

    fn atom_of(query: &str, idx: usize) -> (ConjunctiveQuery, Atom) {
        let q = ConjunctiveQuery::parse(query).unwrap();
        let atom = q.atoms()[idx].clone();
        (q, atom)
    }

    #[test]
    fn extension_of_plain_atom() {
        let database = db();
        let (_, atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        assert_eq!(ext.vars.len(), 2);
        assert_eq!(ext.len(), 3);
    }

    #[test]
    fn repeated_variable_enforces_equality() {
        let database = db();
        let (_, atom) = atom_of("q(x) :- R(x, x)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        assert_eq!(ext.len(), 1);
        assert_eq!(ext.vars.len(), 1);
    }

    #[test]
    fn constants_filter_facts() {
        let database = db();
        let (_, atom) = atom_of("q(y) :- R('a', y)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        assert_eq!(ext.len(), 2);
        let (_, missing) = atom_of("q(y) :- R('zzz', y)", 0);
        assert!(Extension::of_atom(&missing, &database, &FxHashSet::default()).is_empty());
    }

    #[test]
    fn unknown_relation_is_empty() {
        let database = db();
        let (_, atom) = atom_of("q(x) :- T(x)", 0);
        assert!(Extension::of_atom(&atom, &database, &FxHashSet::default()).is_empty());
    }

    #[test]
    fn drop_null_filter() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut database = Database::new(s);
        database.add_named_fact("R", &["a", "b"]).unwrap();
        let null = database.fresh_null();
        let rel = database.schema().relation_id("R").unwrap();
        let a = Value::Const(database.const_id("a").unwrap());
        database
            .add_fact(omq_data::Fact::new(rel, vec![a, Value::Null(null)]))
            .unwrap();
        let (q, atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let all = Extension::of_atom(&atom, &database, &FxHashSet::default());
        assert_eq!(all.len(), 2);
        let y = q.var_id("y").unwrap();
        let filtered = Extension::of_atom(&atom, &database, &[y].into_iter().collect());
        assert_eq!(filtered.len(), 1);
    }

    #[test]
    fn projection_dedups() {
        let database = db();
        let (q, atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        let x = q.var_id("x").unwrap();
        let projected = ext.project(&[x]);
        assert_eq!(projected.len(), 2); // a, d
    }

    #[test]
    fn semijoin_reduces() {
        let database = db();
        let (q, r_atom) = atom_of("q(x, y, z) :- R(x, y), S(y, z)", 0);
        let s_atom = q.atoms()[1].clone();
        let mut r_ext = Extension::of_atom(&r_atom, &database, &FxHashSet::default());
        let s_ext = Extension::of_atom(&s_atom, &database, &FxHashSet::default());
        let changed = r_ext.semijoin(&s_ext);
        assert!(changed);
        assert_eq!(r_ext.len(), 1); // only R(a,b) joins with S(b,e)
                                    // Semijoin is idempotent.
        assert!(!r_ext.semijoin(&s_ext));
    }

    #[test]
    fn semijoin_without_shared_vars_checks_emptiness() {
        let database = db();
        let (_, r_atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let mut r_ext = Extension::of_atom(&r_atom, &database, &FxHashSet::default());
        let empty = Extension::empty(vec![VarId(99)]);
        assert!(r_ext.semijoin(&empty));
        assert!(r_ext.is_empty());
    }

    #[test]
    fn index_on_key() {
        let database = db();
        let (q, atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        let x = q.var_id("x").unwrap();
        let index = ext.index_on(&[x]);
        let a = Value::Const(database.const_id("a").unwrap());
        assert_eq!(index[&vec![a]].len(), 2);
        // Index on the empty key groups everything.
        let all = ext.index_on(&[]);
        assert_eq!(all[&Vec::new()].len(), 3);
    }

    #[test]
    fn tuple_set_and_value_at() {
        let database = db();
        let (q, atom) = atom_of("q(x, y) :- R(x, y)", 0);
        let ext = Extension::of_atom(&atom, &database, &FxHashSet::default());
        assert_eq!(ext.tuple_set().len(), 3);
        let x = q.var_id("x").unwrap();
        assert!(ext.value_at(0, x).is_some());
        assert_eq!(ext.value_at(0, VarId(42)), None);
    }
}
