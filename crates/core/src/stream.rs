//! The unified, lazy, pull-based answer cursor: [`AnswerStream`].
//!
//! `PreparedInstance::answers(Semantics)` is the one enumeration entry point
//! of the engine: it checks the tractability gate and returns an
//! [`AnswerStream`], an `Iterator<Item = Answer>` whose per-shard
//! enumeration *preprocessing* (building the free-connex structures /
//! Algorithm 1–2 cursors — linear in that shard's chase) runs lazily, the
//! first time the cursor reaches the shard.  After a shard's preprocessing,
//! every `next()` within it is constant work.  This is the shape of the
//! paper's central result — after linear preprocessing, taking the first `k`
//! answers costs `O(k)` — sharpened per shard: `stream.take(k)` only pays
//! for the shards it actually enters.  In particular, after an incremental
//! [`crate::PreparedInstance::refresh`] the freshly chased (delta-sized)
//! shards come first, so the time to the first answer scales with the delta,
//! not with `|D|`.
//!
//! Properties:
//!
//! * **Lazy.** No answer is materialised before it is pulled, and no shard's
//!   enumeration structure is built before the cursor reaches the shard;
//!   dropping the stream mid-way abandons the remaining work.
//! * **Owning / resumable.** The stream holds clones of the plan's shared
//!   `Arc` state and of the shard vector, so it is `'static`: it can be
//!   returned from the function that executed the plan, parked inside a
//!   paginating request handler, and resumed at any later point — the
//!   `PreparedInstance` it came from may be dropped freely.
//! * **Shard-sound.** On multi-shard instances the per-shard streams are
//!   chained lazily and the cross-shard wildcard minimality filter
//!   (`WildcardMerge`) plus the Boolean empty-tuple dedup are folded *into*
//!   the cursor, so sharded and sequential instances yield the same answer
//!   multiset (property-tested in `tests/answer_stream.rs`).
//!
//! The tractability gate still fails inside `answers()`; errors from the
//! per-shard structure builds now surface mid-stream, like the Algorithm 2
//! tester failures always did: the stream ends and [`AnswerStream::error`]
//! reports it, which `try_collect`/`for_each_answer` and the legacy
//! `enumerate_*` wrappers turn back into a `Result`.

use crate::enumerate::AnswerCursor;
use crate::error::CoreError;
use crate::multi_enum::MultiEnumerator;
use crate::parallel::WildcardMerge;
use crate::partial_enum::PartialEnumerator;
use crate::plan::{PreparedInstance, QueryPlan};
use crate::preprocess::FreeConnexStructure;
use crate::remote::RemoteState;
use crate::Result;
use omq_data::{Answer, Database, MultiTuple, PartialTuple, Semantics, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Cap on the eager reservation `next_batch` performs on its output vector,
/// so drain-everything requests (`k = usize::MAX`) do not over-allocate.
const BATCH_RESERVE_CAP: usize = 1024;

/// One shard of the complete-answer stream: the materialised structure and
/// the cursor walking it.
#[derive(Debug)]
struct CompleteShard {
    structure: FreeConnexStructure,
    cursor: AnswerCursor,
}

/// The semantics-specific machinery behind the stream.  Each variant holds
/// at most the *current* shard's enumeration state; the next shard's is
/// built on demand when the current one drains.  One stream exists per
/// paginating request, so the size spread between the variants is not worth
/// an indirection on the per-answer hot path.
#[allow(clippy::large_enum_variant)]
enum Inner {
    Complete {
        current: Option<CompleteShard>,
        /// Boolean query: the empty tuple is emitted at most once across all
        /// shards.
        boolean: bool,
        done: bool,
    },
    Partial {
        current: Option<PartialEnumerator>,
        /// `None` once flushed (all shards drained).
        merge: Option<WildcardMerge<PartialTuple>>,
        /// Answers released by the merge but not yet pulled.
        pending: VecDeque<PartialTuple>,
    },
    Multi {
        current: Option<MultiEnumerator<'static>>,
        merge: Option<WildcardMerge<MultiTuple>>,
        pending: VecDeque<MultiTuple>,
    },
    /// Answers arrive pre-enumerated from remote shard executors; only the
    /// cross-shard reduce runs here.  See [`crate::remote`].
    Remote(RemoteState),
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (name, live) = match self {
            Inner::Complete { current, .. } => ("Complete", current.is_some()),
            Inner::Partial { current, .. } => ("Partial", current.is_some()),
            Inner::Multi { current, .. } => ("Multi", current.is_some()),
            Inner::Remote(_) => ("Remote", true),
        };
        f.debug_struct("AnswerStreamInner")
            .field("semantics", &name)
            .field("current_shard_live", &live)
            .finish()
    }
}

/// A lazy, resumable cursor over the answers of a prepared instance, in one
/// of the three [`Semantics`].  See the [module docs](self) for the
/// guarantees and `PreparedInstance::answers` for the entry point.
#[derive(Debug)]
pub struct AnswerStream {
    semantics: Semantics,
    /// The plan, kept for the compiled skeleton the lazy shard builds need.
    plan: QueryPlan,
    /// The shard vector, shared with the instance (and its successors).
    shards: Arc<Vec<Arc<Database>>>,
    /// Index of the next shard whose enumeration state has not been built.
    next_shard: usize,
    inner: Inner,
    error: Option<CoreError>,
    emitted: usize,
}

impl AnswerStream {
    /// Builds the stream over a prepared instance.  Only the tractability
    /// gate runs here; the per-shard enumeration preprocessing (linear in
    /// each shard's chase) is deferred until the cursor reaches the shard.
    pub(crate) fn build(instance: &PreparedInstance, semantics: Semantics) -> Result<Self> {
        // Fail the intractable cases eagerly — the skeleton is compiled at
        // plan build time, so this is a cheap check, not per-shard work.
        instance.plan().skeleton()?;
        let arity = instance.omq().arity();
        let inner = match semantics {
            Semantics::Complete => Inner::Complete {
                current: None,
                boolean: instance.omq().query().is_boolean(),
                done: false,
            },
            Semantics::MinimalPartial => Inner::Partial {
                current: None,
                merge: Some(WildcardMerge::partial(arity)),
                pending: VecDeque::new(),
            },
            Semantics::MinimalPartialMulti => Inner::Multi {
                current: None,
                merge: Some(WildcardMerge::multi(arity)),
                pending: VecDeque::new(),
            },
        };
        Ok(AnswerStream {
            semantics,
            plan: instance.plan().clone(),
            shards: Arc::clone(instance.shared_shards()),
            next_shard: 0,
            inner,
            error: None,
            emitted: 0,
        })
    }

    /// Builds a stream over remote shard sources (no local shards; the
    /// cross-shard reduce runs in [`RemoteState`]).  The public entry point
    /// is [`AnswerStream::from_remote`] in [`crate::remote`], which performs
    /// the tractability check before constructing the state.
    pub(crate) fn with_remote(plan: QueryPlan, semantics: Semantics, state: RemoteState) -> Self {
        AnswerStream {
            semantics,
            plan,
            shards: Arc::new(Vec::new()),
            next_shard: 0,
            inner: Inner::Remote(state),
            error: None,
            emitted: 0,
        }
    }

    /// The semantics this stream enumerates.  Every yielded [`Answer`] is of
    /// the matching variant.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Number of answers yielded so far — the natural `offset` for resumable
    /// pagination.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The error that terminated the stream early, if any.  A stream that
    /// returned `None` with no error was exhausted normally.
    pub fn error(&self) -> Option<&CoreError> {
        self.error.as_ref()
    }

    /// Drains the stream into a `Result`: the remaining answers, or the
    /// error that cut the enumeration short.
    pub fn try_collect(mut self) -> Result<Vec<Answer>> {
        let mut out = Vec::new();
        for answer in &mut self {
            out.push(answer);
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Batched pull: appends up to `k` answers to `out` and returns how many
    /// were appended.  Equivalent to `k` calls to `next()` (same answers, same
    /// order, resumable mid-stream), but each enumerator refills an internal
    /// block without re-entering the per-answer dispatch, so the per-answer
    /// constant is lower.  Fewer than `k` appended means the stream ended —
    /// exhausted, or failed (check [`AnswerStream::error`]).
    pub fn next_batch(&mut self, out: &mut Vec<Answer>, k: usize) -> usize {
        out.reserve(k.min(BATCH_RESERVE_CAP));
        self.pull_batch(k, &mut |a| out.push(a))
    }

    /// Batched pull into a preallocated buffer: overwrites a prefix of `buf`
    /// and returns its length.  Same semantics as [`AnswerStream::next_batch`]
    /// with `k = buf.len()`.
    pub fn fill(&mut self, buf: &mut [Answer]) -> usize {
        let mut i = 0usize;
        let k = buf.len();
        self.pull_batch(k, &mut |a| {
            buf[i] = a;
            i += 1;
        })
    }

    /// The shared batched-pull engine behind `next_batch` and `fill`,
    /// monomorphised over the sink.
    fn pull_batch(&mut self, k: usize, sink: &mut impl FnMut(Answer)) -> usize {
        if k == 0 || self.error.is_some() {
            return 0;
        }
        // Remote sources carry their own reduce; the semantics dispatch
        // below is for locally chased shards.
        let produced = if let Inner::Remote(state) = &mut self.inner {
            let (produced, error) = state.pull(k, sink);
            self.error = error;
            produced
        } else {
            match self.semantics {
                Semantics::Complete => self.batch_complete(k, sink),
                Semantics::MinimalPartial => self.batch_partial(k, sink),
                Semantics::MinimalPartialMulti => self.batch_multi(k, sink),
            }
        };
        self.emitted += produced;
        produced
    }

    fn batch_complete(&mut self, k: usize, sink: &mut impl FnMut(Answer)) -> usize {
        let Inner::Complete {
            current,
            boolean,
            done,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        if *done {
            return 0;
        }
        let mut produced = 0usize;
        loop {
            if produced == k {
                return produced;
            }
            if let Some(shard) = current.as_mut() {
                // Boolean queries emit at most one (empty) tuple overall.
                let limit = if *boolean { 1 } else { k - produced };
                let mut invariant_null = false;
                let stepped = shard.cursor.fill_with(&shard.structure, limit, |values| {
                    if invariant_null {
                        return;
                    }
                    let tuple: Option<Vec<_>> = values
                        .iter()
                        .map(|v| match v {
                            Value::Const(c) => Some(*c),
                            Value::Null(_) => None,
                        })
                        .collect();
                    match tuple {
                        Some(tuple) => {
                            sink(Answer::Complete(tuple));
                            produced += 1;
                        }
                        // Cannot happen for structures built with the
                        // `complete_only` relativisation; handled as a
                        // reportable invariant violation.
                        None => invariant_null = true,
                    }
                });
                if invariant_null {
                    self.error = Some(CoreError::Internal(
                        "complete answer contains a null".to_owned(),
                    ));
                    *done = true;
                    return produced;
                }
                if *boolean && stepped > 0 {
                    *done = true;
                    return produced;
                }
                if stepped < limit {
                    *current = None;
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                let built = FreeConnexStructure::materialize(skeleton, &self.shards[idx], true)
                    .map(|structure| {
                        let cursor = AnswerCursor::new(&structure);
                        CompleteShard { structure, cursor }
                    });
                match built {
                    Ok(shard) => *current = Some(shard),
                    Err(e) => {
                        self.error = Some(e);
                        *done = true;
                        return produced;
                    }
                }
            } else {
                *done = true;
                return produced;
            }
        }
    }

    fn batch_partial(&mut self, k: usize, sink: &mut impl FnMut(Answer)) -> usize {
        let Inner::Partial {
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        let mut produced = 0usize;
        loop {
            while produced < k {
                let Some(t) = pending.pop_front() else { break };
                sink(Answer::Partial(t));
                produced += 1;
            }
            if produced == k {
                return produced;
            }
            let Some(live_merge) = merge.as_mut() else {
                return produced;
            };
            if let Some(cursor) = current.as_mut() {
                let want = k - produced;
                let stepped = cursor.fill_with(want, |t| {
                    live_merge.offer(t, &mut |out| pending.push_back(out));
                });
                if stepped < want {
                    *current = None;
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                match PartialEnumerator::with_skeleton(skeleton, &self.shards[idx]) {
                    Ok(cursor) => *current = Some(cursor),
                    Err(e) => {
                        self.error = Some(e);
                        *merge = None;
                        pending.clear();
                        return produced;
                    }
                }
            } else {
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return produced;
                }
            }
        }
    }

    fn batch_multi(&mut self, k: usize, sink: &mut impl FnMut(Answer)) -> usize {
        let Inner::Multi {
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        let mut produced = 0usize;
        loop {
            while produced < k {
                let Some(t) = pending.pop_front() else { break };
                sink(Answer::Multi(t));
                produced += 1;
            }
            if produced == k {
                return produced;
            }
            let Some(live_merge) = merge.as_mut() else {
                return produced;
            };
            if let Some(cursor) = current.as_mut() {
                let want = k - produced;
                let stepped = cursor.fill_with(want, |t| {
                    live_merge.offer(t, &mut |out| pending.push_back(out));
                });
                if stepped < want {
                    if let Some(e) = cursor.error() {
                        self.error = Some(e.clone());
                        *merge = None;
                        pending.clear();
                        return produced;
                    }
                    *current = None;
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                match MultiEnumerator::for_shard(skeleton, Arc::clone(&self.shards), idx) {
                    Ok(cursor) => *current = Some(cursor),
                    Err(e) => {
                        self.error = Some(e);
                        *merge = None;
                        pending.clear();
                        return produced;
                    }
                }
            } else {
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return produced;
                }
            }
        }
    }

    fn next_complete(&mut self) -> Option<Answer> {
        let Inner::Complete {
            current,
            boolean,
            done,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        if *done {
            return None;
        }
        loop {
            if let Some(shard) = current.as_mut() {
                match shard.cursor.next_answer(&shard.structure) {
                    Some(values) => {
                        let tuple: Option<Vec<_>> = values
                            .iter()
                            .map(|v| match v {
                                Value::Const(c) => Some(*c),
                                Value::Null(_) => None,
                            })
                            .collect();
                        let Some(tuple) = tuple else {
                            // Cannot happen for structures built with the
                            // `complete_only` relativisation; handled as a
                            // reportable invariant violation.
                            self.error = Some(CoreError::Internal(
                                "complete answer contains a null".to_owned(),
                            ));
                            *done = true;
                            return None;
                        };
                        if *boolean {
                            // The empty tuple is the only Boolean answer:
                            // stop after the first satisfiable shard.
                            *done = true;
                        }
                        return Some(Answer::Complete(tuple));
                    }
                    None => *current = None,
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                let built = FreeConnexStructure::materialize(skeleton, &self.shards[idx], true)
                    .map(|structure| {
                        let cursor = AnswerCursor::new(&structure);
                        CompleteShard { structure, cursor }
                    });
                match built {
                    Ok(shard) => *current = Some(shard),
                    Err(e) => {
                        self.error = Some(e);
                        *done = true;
                        return None;
                    }
                }
            } else {
                *done = true;
                return None;
            }
        }
    }

    fn next_partial(&mut self) -> Option<Answer> {
        let Inner::Partial {
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        loop {
            if let Some(t) = pending.pop_front() {
                return Some(Answer::Partial(t));
            }
            let live_merge = merge.as_mut()?;
            if let Some(cursor) = current.as_mut() {
                match cursor.next() {
                    Some(t) => live_merge.offer(t, &mut |out| pending.push_back(out)),
                    None => *current = None,
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                match PartialEnumerator::with_skeleton(skeleton, &self.shards[idx]) {
                    Ok(cursor) => *current = Some(cursor),
                    Err(e) => {
                        self.error = Some(e);
                        *merge = None;
                        pending.clear();
                        return None;
                    }
                }
            } else {
                // All shards drained: release the surviving wildcard-only
                // answers, then drain `pending` on the next loop turns.
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return None;
                }
            }
        }
    }

    fn next_multi(&mut self) -> Option<Answer> {
        let Inner::Multi {
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        loop {
            if let Some(t) = pending.pop_front() {
                return Some(Answer::Multi(t));
            }
            let live_merge = merge.as_mut()?;
            if let Some(cursor) = current.as_mut() {
                match cursor.next() {
                    Some(t) => live_merge.offer(t, &mut |out| pending.push_back(out)),
                    None => {
                        if let Some(e) = cursor.error() {
                            self.error = Some(e.clone());
                            *merge = None;
                            pending.clear();
                            return None;
                        }
                        *current = None;
                    }
                }
            } else if self.next_shard < self.shards.len() {
                let idx = self.next_shard;
                self.next_shard += 1;
                let skeleton = self.plan.skeleton().expect("checked at stream build");
                match MultiEnumerator::for_shard(skeleton, Arc::clone(&self.shards), idx) {
                    Ok(cursor) => *current = Some(cursor),
                    Err(e) => {
                        self.error = Some(e);
                        *merge = None;
                        pending.clear();
                        return None;
                    }
                }
            } else {
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return None;
                }
            }
        }
    }
}

impl Iterator for AnswerStream {
    type Item = Answer;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        if let Inner::Remote(state) = &mut self.inner {
            let mut out = None;
            let (produced, error) = state.pull(1, &mut |a| out = Some(a));
            debug_assert!(produced <= 1);
            self.error = error;
            self.emitted += produced;
            return out;
        }
        let answer = match self.semantics {
            Semantics::Complete => self.next_complete(),
            Semantics::MinimalPartial => self.next_partial(),
            Semantics::MinimalPartialMulti => self.next_multi(),
        };
        if answer.is_some() {
            self.emitted += 1;
        }
        answer
    }
}

impl std::iter::FusedIterator for AnswerStream {}

// A stream is handed across request-handler threads by the serving layer.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AnswerStream>();
};
