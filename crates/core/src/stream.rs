//! The unified, lazy, pull-based answer cursor: [`AnswerStream`].
//!
//! `PreparedInstance::answers(Semantics)` is the one enumeration entry point
//! of the engine: it runs the per-shard enumeration *preprocessing* (building
//! the free-connex structures / Algorithm 1–2 cursors — linear in the chase)
//! and returns an [`AnswerStream`], an `Iterator<Item = Answer>` with
//! constant work per `next()` call.  This is the shape of the paper's
//! central result: after linear preprocessing, taking the first `k` answers
//! costs `O(k)`, independently of the database size — so `stream.take(k)`
//! really is the cheap per-request bound a serving layer needs.
//!
//! Properties:
//!
//! * **Lazy.** No answer is materialised before it is pulled; dropping the
//!   stream mid-way abandons the remaining enumeration with no other effect.
//! * **Owning / resumable.** The stream holds clones of the plan's shared
//!   `Arc` state and of the shard vector, so it is `'static`: it can be
//!   returned from the function that executed the plan, parked inside a
//!   paginating request handler, and resumed at any later point — the
//!   `PreparedInstance` it came from may be dropped freely.
//! * **Shard-sound.** On instances produced by `execute_parallel`, the
//!   per-shard streams are chained lazily and the cross-shard wildcard
//!   minimality filter (`WildcardMerge`) plus the Boolean empty-tuple dedup
//!   are folded *into* the cursor, so sharded and sequential instances yield
//!   the same answer multiset (property-tested in `tests/answer_stream.rs`).
//!
//! Errors after construction are rare (the tractability gate and the
//! structure builds run inside `answers()`); if one does occur mid-stream —
//! e.g. a tester failure inside Algorithm 2 — the stream ends and
//! [`AnswerStream::error`] reports it, which the legacy `enumerate_*`
//! wrappers turn back into a `Result`.

use crate::enumerate::AnswerCursor;
use crate::error::CoreError;
use crate::multi_enum::MultiEnumerator;
use crate::parallel::WildcardMerge;
use crate::partial_enum::PartialEnumerator;
use crate::plan::PreparedInstance;
use crate::preprocess::FreeConnexStructure;
use crate::Result;
use omq_data::{Answer, MultiTuple, PartialTuple, Semantics, Value};
use std::collections::VecDeque;

/// One shard of the complete-answer stream: the materialised structure and
/// the cursor walking it.
#[derive(Debug)]
struct CompleteShard {
    structure: FreeConnexStructure,
    cursor: AnswerCursor,
}

/// The semantics-specific machinery behind the stream.
enum Inner {
    Complete {
        shards: Vec<CompleteShard>,
        current: usize,
        /// Boolean query: the empty tuple is emitted at most once across all
        /// shards.
        boolean: bool,
        done: bool,
    },
    Partial {
        shards: Vec<PartialEnumerator>,
        current: usize,
        /// `None` once flushed (all shards drained).
        merge: Option<WildcardMerge<PartialTuple>>,
        /// Answers released by the merge but not yet pulled.
        pending: VecDeque<PartialTuple>,
    },
    Multi {
        shards: Vec<MultiEnumerator<'static>>,
        current: usize,
        merge: Option<WildcardMerge<MultiTuple>>,
        pending: VecDeque<MultiTuple>,
    },
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (name, shards, current) = match self {
            Inner::Complete {
                shards, current, ..
            } => ("Complete", shards.len(), *current),
            Inner::Partial {
                shards, current, ..
            } => ("Partial", shards.len(), *current),
            Inner::Multi {
                shards, current, ..
            } => ("Multi", shards.len(), *current),
        };
        f.debug_struct("AnswerStreamInner")
            .field("semantics", &name)
            .field("shards", &shards)
            .field("current", &current)
            .finish()
    }
}

/// A lazy, resumable cursor over the answers of a prepared instance, in one
/// of the three [`Semantics`].  See the [module docs](self) for the
/// guarantees and `PreparedInstance::answers` for the entry point.
#[derive(Debug)]
pub struct AnswerStream {
    semantics: Semantics,
    inner: Inner,
    error: Option<CoreError>,
    emitted: usize,
}

impl AnswerStream {
    /// Builds the stream over a prepared instance: per-shard enumeration
    /// preprocessing happens here (linear in the chase), so that every
    /// subsequent `next()` is constant work.
    pub(crate) fn build(instance: &PreparedInstance, semantics: Semantics) -> Result<Self> {
        let skeleton = instance.plan().skeleton()?;
        let arity = instance.omq().arity();
        let shards = instance.shared_shards();
        let inner = match semantics {
            Semantics::Complete => {
                let shards = shards
                    .iter()
                    .map(|shard| {
                        let structure = FreeConnexStructure::materialize(skeleton, shard, true)?;
                        let cursor = AnswerCursor::new(&structure);
                        Ok(CompleteShard { structure, cursor })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Inner::Complete {
                    shards,
                    current: 0,
                    boolean: instance.omq().query().is_boolean(),
                    done: false,
                }
            }
            Semantics::MinimalPartial => {
                let cursors = shards
                    .iter()
                    .map(|shard| PartialEnumerator::with_skeleton(skeleton, shard))
                    .collect::<Result<Vec<_>>>()?;
                Inner::Partial {
                    shards: cursors,
                    current: 0,
                    merge: Some(WildcardMerge::partial(arity)),
                    pending: VecDeque::new(),
                }
            }
            Semantics::MinimalPartialMulti => {
                let cursors = (0..shards.len())
                    .map(|idx| MultiEnumerator::for_shard(skeleton, shards.clone(), idx))
                    .collect::<Result<Vec<_>>>()?;
                Inner::Multi {
                    shards: cursors,
                    current: 0,
                    merge: Some(WildcardMerge::multi(arity)),
                    pending: VecDeque::new(),
                }
            }
        };
        Ok(AnswerStream {
            semantics,
            inner,
            error: None,
            emitted: 0,
        })
    }

    /// The semantics this stream enumerates.  Every yielded [`Answer`] is of
    /// the matching variant.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Number of answers yielded so far — the natural `offset` for resumable
    /// pagination.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The error that terminated the stream early, if any.  A stream that
    /// returned `None` with no error was exhausted normally.
    pub fn error(&self) -> Option<&CoreError> {
        self.error.as_ref()
    }

    /// Drains the stream into a `Result`: the remaining answers, or the
    /// error that cut the enumeration short.
    pub fn try_collect(mut self) -> Result<Vec<Answer>> {
        let mut out = Vec::new();
        for answer in &mut self {
            out.push(answer);
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn next_complete(&mut self) -> Option<Answer> {
        let Inner::Complete {
            shards,
            current,
            boolean,
            done,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        if *done {
            return None;
        }
        while *current < shards.len() {
            let shard = &mut shards[*current];
            match shard.cursor.next_answer(&shard.structure) {
                Some(values) => {
                    let tuple: Option<Vec<_>> = values
                        .iter()
                        .map(|v| match v {
                            Value::Const(c) => Some(*c),
                            Value::Null(_) => None,
                        })
                        .collect();
                    let Some(tuple) = tuple else {
                        // Cannot happen for structures built with the
                        // `complete_only` relativisation; handled as a
                        // reportable invariant violation.
                        self.error = Some(CoreError::Internal(
                            "complete answer contains a null".to_owned(),
                        ));
                        *done = true;
                        return None;
                    };
                    if *boolean {
                        // The empty tuple is the only Boolean answer: stop
                        // after the first satisfiable shard.
                        *done = true;
                    }
                    return Some(Answer::Complete(tuple));
                }
                None => *current += 1,
            }
        }
        *done = true;
        None
    }

    fn next_partial(&mut self) -> Option<Answer> {
        let Inner::Partial {
            shards,
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        loop {
            if let Some(t) = pending.pop_front() {
                return Some(Answer::Partial(t));
            }
            let live_merge = merge.as_mut()?;
            if *current < shards.len() {
                match shards[*current].next() {
                    Some(t) => live_merge.offer(t, &mut |out| pending.push_back(out)),
                    None => *current += 1,
                }
            } else {
                // All shards drained: release the surviving wildcard-only
                // answers, then drain `pending` on the next loop turns.
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return None;
                }
            }
        }
    }

    fn next_multi(&mut self) -> Option<Answer> {
        let Inner::Multi {
            shards,
            current,
            merge,
            pending,
        } = &mut self.inner
        else {
            unreachable!("semantics-checked dispatch");
        };
        loop {
            if let Some(t) = pending.pop_front() {
                return Some(Answer::Multi(t));
            }
            let live_merge = merge.as_mut()?;
            if *current < shards.len() {
                match shards[*current].next() {
                    Some(t) => live_merge.offer(t, &mut |out| pending.push_back(out)),
                    None => {
                        if let Some(e) = shards[*current].error() {
                            self.error = Some(e.clone());
                            *merge = None;
                            pending.clear();
                            return None;
                        }
                        *current += 1;
                    }
                }
            } else {
                merge
                    .take()
                    .expect("merge checked live above")
                    .flush(&mut |out| pending.push_back(out));
                if pending.is_empty() {
                    return None;
                }
            }
        }
    }
}

impl Iterator for AnswerStream {
    type Item = Answer;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        let answer = match self.semantics {
            Semantics::Complete => self.next_complete(),
            Semantics::MinimalPartial => self.next_partial(),
            Semantics::MinimalPartialMulti => self.next_multi(),
        };
        if answer.is_some() {
            self.emitted += 1;
        }
        answer
    }
}

impl std::iter::FusedIterator for AnswerStream {}

// A stream is handed across request-handler threads by the serving layer.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AnswerStream>();
};
