//! Progress trees and the `trees(v, h)` lists (Section 5 of the paper).
//!
//! A *progress tree* `(p, g)` describes an "excursion" that a homomorphism
//! from the full query `q₁` into the chased database may make into the null
//! part of the data: `p` is a connected subtree of the join tree `T₁` and `g`
//! assigns to every variable of `p` either a database constant or the
//! wildcard `*` (meaning "a labelled null").  The enumeration algorithm jumps
//! over such excursions in one step, outputting `*` for the affected answer
//! positions.
//!
//! For every node `v` and every *predecessor map* `h` (an assignment of the
//! variables shared with `v`'s parent to constants), the list `trees(v, h)`
//! holds all progress trees rooted at `v` that agree with `h`, sorted in
//! *database-preferring order*: trees with fewer nodes first, and among trees
//! with the same node set, trees with fewer wildcards first.  The lists are
//! stored in an arena-backed doubly-linked structure so that Algorithm 1 can
//! remove arbitrary entries in constant time while other iterations are in
//! flight (the `prune` step).

use crate::preprocess::FreeConnexStructure;
use crate::Result;
use omq_cq::VarId;
use omq_data::{PartialValue, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// One expansion of an extension tuple: the included nodes and the wildcard
/// pattern over their variables.
type Expansion = (Vec<usize>, Vec<(VarId, PartialValue)>);

/// Memoisation table of [`expand`], keyed by `(node, tuple index)`.
type ExpansionMemo = FxHashMap<(usize, usize), Vec<Expansion>>;

/// A progress tree `(p, g)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgressTree {
    /// The root node (index into the preprocessed structure's nodes).
    pub root: usize,
    /// The included nodes, sorted ascending (always contains `root`).
    pub nodes: Vec<usize>,
    /// The assignment `g` of the included nodes' variables, sorted by
    /// variable identifier; values are database constants or `*`.
    pub pattern: Vec<(VarId, PartialValue)>,
}

impl ProgressTree {
    /// Number of wildcard positions of the pattern.
    pub fn star_count(&self) -> usize {
        self.pattern
            .iter()
            .filter(|(_, v)| matches!(v, PartialValue::Star))
            .count()
    }

    /// Looks up the pattern value of a variable.
    pub fn value_of(&self, var: VarId) -> Option<PartialValue> {
        self.pattern
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, value)| *value)
    }
}

/// Converts a database value into a pattern value (`null ↦ *`).
pub fn pattern_of_value(value: Value) -> PartialValue {
    match value {
        Value::Const(c) => PartialValue::Const(c),
        Value::Null(_) => PartialValue::Star,
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tree: ProgressTree,
    prev: Option<usize>,
    next: Option<usize>,
    list: usize,
    removed: bool,
}

#[derive(Debug, Clone, Default)]
struct ListHead {
    head: Option<usize>,
    live: usize,
}

/// A continuation site of a progress tree: after the tree is applied, the
/// pre-order traversal will next need the `trees(node, h)` list with the
/// statically known binding `h` — `list` is its id (`None` if no tree exists
/// for that binding).  Sites are precomputed at build time so that the
/// enumeration phase never hashes a predecessor binding.
pub type Site = (usize, Option<usize>);

/// The global `trees(v, h)` data structure.
#[derive(Debug, Clone)]
pub struct ProgressIndex {
    arena: Vec<Entry>,
    lists: Vec<ListHead>,
    /// `(node, predecessor binding)` → list id.
    list_ids: FxHashMap<(usize, Vec<Value>), usize>,
    /// Progress tree → arena entry (every tree occurs in exactly one list).
    locations: FxHashMap<ProgressTree, usize>,
    /// All connected subtrees of `T₁`, grouped by root: `(root, node set)`.
    subtrees: Vec<(usize, Vec<usize>)>,
    /// Variables of each subtree (union over its nodes), parallel to
    /// [`ProgressIndex::subtrees`].
    subtree_vars: Vec<Vec<VarId>>,
    /// Per arena entry: the continuation sites its pattern enables (frontier
    /// nodes of the tree, transitively through pass-through nodes whose
    /// variables are all predecessor variables).
    entry_sites: Vec<Vec<Site>>,
    /// Sites available before any tree is applied (the root of `T₁`).
    root_sites: Vec<Site>,
    /// Per list: its entry ids sorted by `(nodes, pattern)` — the binary
    /// search structure behind hash-free removals.
    list_sorted: Vec<Vec<usize>>,
}

impl ProgressIndex {
    /// Builds the progress-tree lists for a preprocessed structure (which must
    /// have been built *without* the `complete_only` relativisation, so that
    /// labelled nulls are visible).
    pub fn build(structure: &FreeConnexStructure) -> Result<Self> {
        let node_count = structure.nodes.len();
        let mut index = ProgressIndex {
            arena: Vec::new(),
            lists: Vec::new(),
            list_ids: FxHashMap::default(),
            locations: FxHashMap::default(),
            subtrees: Vec::new(),
            subtree_vars: Vec::new(),
            entry_sites: Vec::new(),
            root_sites: Vec::new(),
            list_sorted: Vec::new(),
        };
        if node_count == 0 {
            return Ok(index);
        }

        // ---- All connected subtrees of T₁ (for the prune procedure). ----
        for root in 0..node_count {
            for nodes in connected_subtrees_rooted_at(structure, root) {
                let mut vars: Vec<VarId> = nodes
                    .iter()
                    .flat_map(|&n| structure.nodes[n].vars.clone())
                    .collect();
                vars.sort();
                vars.dedup();
                index.subtrees.push((root, nodes));
                index.subtree_vars.push(vars);
            }
        }

        // ---- Expand every extension tuple into its progress trees. ----
        let mut memo: ExpansionMemo = FxHashMap::default();
        let mut per_list: FxHashMap<(usize, Vec<Value>), Vec<ProgressTree>> = FxHashMap::default();
        let mut seen: FxHashSet<ProgressTree> = FxHashSet::default();
        for node in 0..node_count {
            let node_data = &structure.nodes[node];
            for tuple_idx in 0..node_data.extension.len() {
                // Predecessor binding: the projection onto the variables shared
                // with the parent.  Tuples whose predecessor binding contains a
                // null can only be reached as the interior of a larger
                // progress tree, never as a root.
                let pred: Vec<Value> = node_data
                    .pred_vars
                    .iter()
                    .map(|v| {
                        node_data
                            .extension
                            .value_at(tuple_idx, *v)
                            .expect("pred var present")
                    })
                    .collect();
                if pred.iter().any(|v| v.is_null()) {
                    continue;
                }
                let expansions = expand(structure, node, tuple_idx, &mut memo)?;
                for (nodes, pattern) in expansions {
                    let tree = ProgressTree {
                        root: node,
                        nodes,
                        pattern,
                    };
                    if seen.insert(tree.clone()) {
                        per_list.entry((node, pred.clone())).or_default().push(tree);
                    }
                }
            }
        }

        // ---- Sort each list in database-preferring order and link it. ----
        let mut keys: Vec<(usize, Vec<Value>)> = per_list.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let mut trees = per_list.remove(&key).expect("key present");
            trees.sort_by(|a, b| {
                (a.nodes.len(), a.star_count(), &a.pattern, &a.nodes).cmp(&(
                    b.nodes.len(),
                    b.star_count(),
                    &b.pattern,
                    &b.nodes,
                ))
            });
            let list_id = index.lists.len();
            index.lists.push(ListHead {
                head: None,
                live: trees.len(),
            });
            index.list_ids.insert(key, list_id);
            let mut previous: Option<usize> = None;
            for tree in trees {
                let entry_id = index.arena.len();
                index.locations.insert(tree.clone(), entry_id);
                index.arena.push(Entry {
                    tree,
                    prev: previous,
                    next: None,
                    list: list_id,
                    removed: false,
                });
                match previous {
                    Some(p) => index.arena[p].next = Some(entry_id),
                    None => index.lists[list_id].head = Some(entry_id),
                }
                previous = Some(entry_id);
            }
        }

        // ---- Precompute the hash-free enumeration-phase structures. ----
        // A node is *pass-through* if all its variables are predecessor
        // variables: when the traversal reaches it, everything is already
        // bound and it opens no list of its own.
        let binds_new: Vec<bool> = (0..node_count)
            .map(|n| {
                let node = &structure.nodes[n];
                node.vars.iter().any(|v| !node.pred_vars.contains(v))
            })
            .collect();
        for entry_id in 0..index.arena.len() {
            let sites = index.sites_of_tree(structure, &binds_new, entry_id);
            index.entry_sites.push(sites);
        }
        let root = structure.preorder.first().copied();
        if let Some(root) = root {
            let list = index.list_ids.get(&(root, Vec::new())).copied();
            index.root_sites.push((root, list));
        }
        index.list_sorted = vec![Vec::new(); index.lists.len()];
        for (entry_id, entry) in index.arena.iter().enumerate() {
            index.list_sorted[entry.list].push(entry_id);
        }
        for sorted in &mut index.list_sorted {
            sorted.sort_by(|&a, &b| {
                let ta = &index.arena[a].tree;
                let tb = &index.arena[b].tree;
                (&ta.nodes, &ta.pattern).cmp(&(&tb.nodes, &tb.pattern))
            });
        }
        Ok(index)
    }

    /// Computes the continuation sites of one tree: the `T₁` children of its
    /// nodes that are outside the tree, transitively through pass-through
    /// nodes, each with the list id determined by the tree's pattern.  All
    /// predecessor variables of such a frontier node carry constants in the
    /// pattern — a labelled null would have forced the node *into* the tree —
    /// so the binding is statically known.
    fn sites_of_tree(
        &self,
        structure: &FreeConnexStructure,
        binds_new: &[bool],
        entry_id: usize,
    ) -> Vec<Site> {
        let tree = &self.arena[entry_id].tree;
        let pattern: FxHashMap<VarId, PartialValue> = tree.pattern.iter().copied().collect();
        let mut sites: Vec<Site> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for &n in &tree.nodes {
            for &child in &structure.nodes[n].children {
                if !tree.nodes.contains(&child) {
                    stack.push(child);
                }
            }
        }
        while let Some(v) = stack.pop() {
            let mut binding: Vec<Value> = Vec::with_capacity(structure.nodes[v].pred_vars.len());
            let mut constant = true;
            for w in &structure.nodes[v].pred_vars {
                match pattern.get(w) {
                    Some(PartialValue::Const(c)) => binding.push(Value::Const(*c)),
                    _ => {
                        // A wildcard predecessor would have forced `v` into
                        // the tree; defensively record a dead site.
                        constant = false;
                        break;
                    }
                }
            }
            let list = if constant {
                self.list_ids.get(&(v, binding)).copied()
            } else {
                None
            };
            sites.push((v, list));
            if !binds_new[v] {
                // Pass-through: its children's predecessor variables are all
                // within `v.vars ⊆ v.pred_vars`, hence still covered by the
                // tree's pattern.
                for &child in &structure.nodes[v].children {
                    stack.push(child);
                }
            }
        }
        sites
    }

    /// The continuation sites of an entry's tree.
    pub fn sites_of(&self, entry: usize) -> &[Site] {
        &self.entry_sites[entry]
    }

    /// The sites available before any tree is applied (the root of `T₁`).
    pub fn root_sites(&self) -> &[Site] {
        &self.root_sites
    }

    /// Finds the entry in `list_id` whose tree has exactly the given node set
    /// and pattern, by binary search over the presorted list — no hashing.
    /// Returns removed entries too (removal is idempotent).
    pub fn find_in_list(
        &self,
        list_id: usize,
        nodes: &[usize],
        pattern: &[(VarId, PartialValue)],
    ) -> Option<usize> {
        let sorted = &self.list_sorted[list_id];
        sorted
            .binary_search_by(|&e| {
                let t = &self.arena[e].tree;
                (t.nodes.as_slice(), t.pattern.as_slice()).cmp(&(nodes, pattern))
            })
            .ok()
            .map(|pos| sorted[pos])
    }

    /// Looks up the arena entry holding exactly `probe` (same root, nodes and
    /// pattern), live or removed.  One hash lookup — the prune step probes
    /// every candidate weakening of an output this way, which beats a binary
    /// search over the list (each probe of which re-compares the node and
    /// pattern vectors) by a constant factor that matters at once-per-answer
    /// frequency.
    pub fn entry_of(&self, probe: &ProgressTree) -> Option<usize> {
        self.locations.get(probe).copied()
    }

    /// Removes an entry by id (constant-time unlink).  Returns `true` iff it
    /// was live.
    pub fn remove_entry(&mut self, entry_id: usize) -> bool {
        if self.arena[entry_id].removed {
            return false;
        }
        let (prev, next, list) = {
            let entry = &self.arena[entry_id];
            (entry.prev, entry.next, entry.list)
        };
        self.arena[entry_id].removed = true;
        match prev {
            Some(p) => self.arena[p].next = next,
            None => self.lists[list].head = next,
        }
        if let Some(n) = next {
            self.arena[n].prev = prev;
        }
        self.lists[list].live -= 1;
        true
    }

    /// The list id for `(node, predecessor binding)`, if any tree exists.
    pub fn list_for(&self, node: usize, pred_binding: &[Value]) -> Option<usize> {
        self.list_ids.get(&(node, pred_binding.to_vec())).copied()
    }

    /// The first live entry of a list.
    pub fn head(&self, list_id: usize) -> Option<usize> {
        let mut cursor = self.lists[list_id].head;
        while let Some(entry) = cursor {
            if !self.arena[entry].removed {
                return Some(entry);
            }
            cursor = self.arena[entry].next;
        }
        None
    }

    /// The next live entry after `entry` in its list.
    pub fn next_of(&self, entry: usize) -> Option<usize> {
        let mut cursor = self.arena[entry].next;
        while let Some(e) = cursor {
            if !self.arena[e].removed {
                return Some(e);
            }
            cursor = self.arena[e].next;
        }
        None
    }

    /// The progress tree stored at an entry.
    pub fn tree(&self, entry: usize) -> &ProgressTree {
        &self.arena[entry].tree
    }

    /// Number of live entries in a list.
    pub fn live_len(&self, list_id: usize) -> usize {
        self.lists[list_id].live
    }

    /// Total number of progress trees.
    pub fn total_trees(&self) -> usize {
        self.arena.len()
    }

    /// Removes a progress tree (wherever it is stored).  Returns `true` iff it
    /// was present and live.
    pub fn remove(&mut self, tree: &ProgressTree) -> bool {
        let Some(&entry_id) = self.locations.get(tree) else {
            return false;
        };
        self.remove_entry(entry_id)
    }

    /// All connected subtrees of `T₁` as `(root, nodes)` pairs, together with
    /// their variables (used by the prune procedure).
    pub fn subtrees(&self) -> impl Iterator<Item = (usize, &[usize], &[VarId])> {
        self.subtrees
            .iter()
            .zip(&self.subtree_vars)
            .map(|((root, nodes), vars)| (*root, nodes.as_slice(), vars.as_slice()))
    }
}

/// Enumerates the node sets of all connected subtrees of `T₁` rooted at
/// `root`: `{root}` unioned with subtrees rooted at any subset of the
/// children.
fn connected_subtrees_rooted_at(structure: &FreeConnexStructure, root: usize) -> Vec<Vec<usize>> {
    let children = &structure.nodes[root].children;
    // Options per child: either exclude the child or include one of its
    // subtrees.
    let mut result: Vec<Vec<usize>> = vec![vec![root]];
    for &child in children {
        let child_subtrees = connected_subtrees_rooted_at(structure, child);
        let mut extended = Vec::new();
        for base in &result {
            extended.push(base.clone());
            for cs in &child_subtrees {
                let mut merged = base.clone();
                merged.extend_from_slice(cs);
                extended.push(merged);
            }
        }
        result = extended;
    }
    for nodes in &mut result {
        nodes.sort_unstable();
        nodes.dedup();
    }
    result
}

/// Expands a tuple of a node's extension into the progress trees it generates:
/// the node itself plus, recursively, every child whose shared variables carry
/// a labelled null (which forces the excursion to continue into that child).
fn expand(
    structure: &FreeConnexStructure,
    node: usize,
    tuple_idx: usize,
    memo: &mut ExpansionMemo,
) -> Result<Vec<Expansion>> {
    if let Some(cached) = memo.get(&(node, tuple_idx)) {
        return Ok(cached.clone());
    }
    let node_data = &structure.nodes[node];
    let tuple = node_data.extension.tuple(tuple_idx);
    let own_pattern: Vec<(VarId, PartialValue)> = node_data
        .extension
        .vars
        .iter()
        .zip(tuple)
        .map(|(&v, &value)| (v, pattern_of_value(value)))
        .collect();

    // Children forced into the excursion: those sharing a null-valued
    // variable with this tuple.
    let mut required: Vec<usize> = Vec::new();
    for &child in &node_data.children {
        let child_data = &structure.nodes[child];
        let shares_null = child_data.pred_vars.iter().any(|v| {
            node_data
                .extension
                .value_at(tuple_idx, *v)
                .map(|value| value.is_null())
                .unwrap_or(false)
        });
        if shares_null {
            required.push(child);
        }
    }

    let mut partials: Vec<(Vec<usize>, FxHashMap<VarId, PartialValue>)> = vec![(
        vec![node],
        own_pattern.iter().copied().collect::<FxHashMap<_, _>>(),
    )];
    for child in required {
        let child_data = &structure.nodes[child];
        // Candidate child tuples: those agreeing with this tuple on the shared
        // variables (including the concrete null identities).
        let key: Vec<Value> = child_data
            .pred_vars
            .iter()
            .map(|v| {
                node_data
                    .extension
                    .value_at(tuple_idx, *v)
                    .expect("shared var present in parent")
            })
            .collect();
        let candidates = child_data.index.get(&key).cloned().unwrap_or_default();
        if candidates.is_empty() {
            // The excursion cannot be completed through this child: the tuple
            // generates no progress tree.  (This cannot happen after the
            // bottom-up reduction, but is handled defensively.)
            memo.insert((node, tuple_idx), Vec::new());
            return Ok(Vec::new());
        }
        let mut child_options: Vec<Expansion> = Vec::new();
        let mut seen_child: FxHashSet<Expansion> = FxHashSet::default();
        for candidate in candidates {
            for option in expand(structure, child, candidate, memo)? {
                if seen_child.insert(option.clone()) {
                    child_options.push(option);
                }
            }
        }
        let mut extended = Vec::new();
        for (nodes, pattern) in &partials {
            for (child_nodes, child_pattern) in &child_options {
                let mut merged_nodes = nodes.clone();
                merged_nodes.extend_from_slice(child_nodes);
                let mut merged_pattern = pattern.clone();
                let mut consistent = true;
                for (v, value) in child_pattern {
                    match merged_pattern.get(v) {
                        Some(existing) if existing != value => {
                            consistent = false;
                            break;
                        }
                        _ => {
                            merged_pattern.insert(*v, *value);
                        }
                    }
                }
                if consistent {
                    extended.push((merged_nodes, merged_pattern));
                }
            }
        }
        partials = extended;
    }

    let mut result: Vec<Expansion> = Vec::new();
    let mut seen: FxHashSet<Expansion> = FxHashSet::default();
    for (mut nodes, pattern) in partials {
        nodes.sort_unstable();
        nodes.dedup();
        let mut pattern: Vec<(VarId, PartialValue)> = pattern.into_iter().collect();
        pattern.sort();
        let item = (nodes, pattern);
        if seen.insert(item.clone()) {
            result.push(item);
        }
    }
    // `result` may legitimately be empty for dangling tuples (tuples whose
    // forced excursion cannot be completed); those simply generate no progress
    // tree.
    memo.insert((node, tuple_idx), result.clone());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_cq::ConjunctiveQuery;
    use omq_data::{Database, Fact, Schema};

    /// A database over R/2, S/2 with a mix of constants and nulls, shaped like
    /// a query-directed chase: nulls only co-occur with constants of "their"
    /// fact.
    fn nullful_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        db.add_named_fact("S", &["b", "c"]).unwrap();
        db.add_named_fact("R", &["d", "e"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s_rel = db.schema().relation_id("S").unwrap();
        let e = Value::Const(db.const_id("e").unwrap());
        let d = Value::Const(db.const_id("d").unwrap());
        let n1 = Value::Null(db.fresh_null());
        let n2 = Value::Null(db.fresh_null());
        // d's excursion: S(e, n1)
        db.add_fact(Fact::new(s_rel, vec![e, n1])).unwrap();
        // a fully anonymous chain R(d, n2), S(n2, n1) is *not* added; instead a
        // second anonymous R successor for d:
        db.add_fact(Fact::new(r, vec![d, n2])).unwrap();
        db
    }

    fn structure() -> FreeConnexStructure {
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        FreeConnexStructure::build(&q, &nullful_db(), false).unwrap()
    }

    #[test]
    fn builds_lists_for_every_constant_predecessor_binding() {
        let s = structure();
        let index = ProgressIndex::build(&s).unwrap();
        assert!(index.total_trees() > 0);
        // The root node has an empty predecessor binding.
        let root = s.preorder[0];
        let list = index.list_for(root, &[]).expect("root list exists");
        assert!(index.live_len(list) > 0);
        // Lists are sorted in database-preferring order (stars increase).
        let mut cursor = index.head(list);
        let mut last_key = (0usize, 0usize);
        while let Some(entry) = cursor {
            let tree = index.tree(entry);
            let key = (tree.nodes.len(), tree.star_count());
            assert!(key >= last_key, "database-preferring order violated");
            last_key = key;
            cursor = index.next_of(entry);
        }
    }

    #[test]
    fn excursions_are_captured_as_multi_node_trees() {
        let s = structure();
        let index = ProgressIndex::build(&s).unwrap();
        // The tuple R(d, n?) with a null shared variable forces the S node into
        // the excursion when S is a child of R in T1 (or vice versa); in either
        // case some progress tree with 2 nodes must exist if the shared
        // variable can be null... The d/e chain has S(e, n1), so the R-rooted
        // tree for (d, e) is single-node, while a 2-node tree exists for the
        // R(d, n2) tuple only if S(n2, _) exists — it does not, so that tuple
        // is dangling and removed by the bottom-up reduction or yields no
        // tree.  We simply check structural invariants here; behavioural
        // correctness is covered by the Algorithm 1 tests.
        for (root, nodes, vars) in index.subtrees() {
            assert!(nodes.contains(&root));
            assert!(!vars.is_empty());
        }
        // Every tree is discoverable through `locations` (removal round-trip).
        let root = s.preorder[0];
        let list = index.list_for(root, &[]).unwrap();
        let entry = index.head(list).unwrap();
        let tree = index.tree(entry).clone();
        let mut index = index;
        assert!(index.remove(&tree));
        assert!(!index.remove(&tree));
        // The head moved on.
        if let Some(new_head) = index.head(list) {
            assert_ne!(index.tree(new_head), &tree);
        }
    }

    #[test]
    fn removal_relinks_neighbours() {
        let s = structure();
        let mut index = ProgressIndex::build(&s).unwrap();
        let root = s.preorder[0];
        let list = index.list_for(root, &[]).unwrap();
        let live_before = index.live_len(list);
        // Collect the full list, remove the middle element, re-collect.
        let mut entries = Vec::new();
        let mut cursor = index.head(list);
        while let Some(e) = cursor {
            entries.push(e);
            cursor = index.next_of(e);
        }
        assert_eq!(entries.len(), live_before);
        if entries.len() >= 3 {
            let middle = index.tree(entries[1]).clone();
            assert!(index.remove(&middle));
            let mut survivors = Vec::new();
            let mut cursor = index.head(list);
            while let Some(e) = cursor {
                survivors.push(e);
                cursor = index.next_of(e);
            }
            assert_eq!(survivors.len(), live_before - 1);
            assert!(!survivors.contains(&entries[1]));
        }
    }

    #[test]
    fn subtree_enumeration_counts() {
        // A path R - S in T1 has subtrees {R}, {R,S} rooted at R and {S}
        // rooted at S (assuming R is the root); a star has more.
        let s = structure();
        let index = ProgressIndex::build(&s).unwrap();
        let count = index.subtrees().count();
        assert!(count >= s.nodes.len());
    }

    #[test]
    fn empty_structure_yields_empty_index() {
        let q = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let db = Database::new(schema);
        let s = FreeConnexStructure::build(&q, &db, false).unwrap();
        assert!(s.empty);
        let index = ProgressIndex::build(&s).unwrap();
        assert_eq!(index.total_trees(), 0);
    }
}
