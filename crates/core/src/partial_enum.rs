//! Algorithm 1: enumeration of minimal partial answers with a single wildcard
//! (Theorem 5.2 of the paper).
//!
//! After the linear-time preprocessing ([`crate::preprocess`] and
//! [`crate::progress`]), the enumeration phase performs a pre-order traversal
//! of the join tree `T₁`.  At every atom it iterates over the progress trees
//! compatible with the bindings made so far, in *database-preferring order*
//! (answers with constants before answers with wildcards).  After each output
//! the `prune` step removes, from every `trees` list, the progress trees that
//! are strictly dominated by the pattern just output — this is what guarantees
//! that only *minimal* partial answers are produced, without repetition.

use crate::error::CoreError;
use crate::preprocess::FreeConnexStructure;
use crate::progress::{ProgressIndex, ProgressTree};
use crate::Result;
use omq_cq::{ConjunctiveQuery, VarId};
use omq_data::{Database, PartialTuple, PartialValue, Value};
use rustc_hash::FxHashMap;

/// The Algorithm 1 enumerator.
///
/// The enumeration phase mutates the preprocessed `trees` lists (pruning), so
/// an enumerator is consumed by [`PartialEnumerator::enumerate`]; build a new
/// one (linear time) to re-enumerate.
#[derive(Debug)]
pub struct PartialEnumerator {
    structure: FreeConnexStructure,
    index: ProgressIndex,
}

impl PartialEnumerator {
    /// Preprocesses `query` over the chased instance `d0`.
    ///
    /// Requires the query to be acyclic and free-connex acyclic.
    pub fn new(query: &ConjunctiveQuery, d0: &Database) -> Result<Self> {
        let structure = FreeConnexStructure::build(query, d0, false)?;
        let index = ProgressIndex::build(&structure)?;
        Ok(PartialEnumerator { structure, index })
    }

    /// Builds an enumerator from an existing structure (must have been built
    /// with `complete_only = false`).
    pub fn from_structure(structure: FreeConnexStructure) -> Result<Self> {
        let index = ProgressIndex::build(&structure)?;
        Ok(PartialEnumerator { structure, index })
    }

    /// The underlying preprocessed structure.
    pub fn structure(&self) -> &FreeConnexStructure {
        &self.structure
    }

    /// Runs the enumeration, invoking `output` for every minimal partial
    /// answer (exactly once each).
    pub fn enumerate(mut self, mut output: impl FnMut(PartialTuple)) -> Result<()> {
        if self.structure.empty {
            return Ok(());
        }
        if let Some(satisfiable) = self.structure.boolean_satisfiable {
            if satisfiable {
                output(PartialTuple(Vec::new()));
            }
            return Ok(());
        }
        let mut assignment: FxHashMap<VarId, PartialValue> = FxHashMap::default();
        self.enum_at(0, &mut assignment, &mut output)?;
        Ok(())
    }

    /// Convenience: collects all minimal partial answers.
    pub fn collect(self) -> Result<Vec<PartialTuple>> {
        let mut out = Vec::new();
        self.enumerate(|t| out.push(t))?;
        Ok(out)
    }

    /// The `nextat` helper: the first pre-order position `≥ from` whose node
    /// has an unassigned variable, or `None` for "end of atoms".
    fn next_open(&self, from: usize, assignment: &FxHashMap<VarId, PartialValue>) -> Option<usize> {
        (from..self.structure.preorder.len()).find(|&pos| {
            let node = self.structure.preorder[pos];
            self.structure.nodes[node]
                .vars
                .iter()
                .any(|v| !assignment.contains_key(v))
        })
    }

    /// The recursive `enum` procedure of Algorithm 1.
    fn enum_at(
        &mut self,
        from: usize,
        assignment: &mut FxHashMap<VarId, PartialValue>,
        output: &mut impl FnMut(PartialTuple),
    ) -> Result<()> {
        let Some(pos) = self.next_open(from, assignment) else {
            // End of atoms: output the answer and prune.
            let answer = PartialTuple(
                self.structure
                    .answer_positions
                    .iter()
                    .map(|v| assignment[v])
                    .collect(),
            );
            output(answer);
            self.prune(assignment);
            return Ok(());
        };
        let node = self.structure.preorder[pos];
        // Predecessor binding: all predecessor variables are bound to
        // constants at this point (a wildcard predecessor would have forced
        // this node into its parent's progress tree, leaving no variable
        // open).
        let mut pred_binding: Vec<Value> =
            Vec::with_capacity(self.structure.nodes[node].pred_vars.len());
        for v in &self.structure.nodes[node].pred_vars {
            match assignment.get(v) {
                Some(PartialValue::Const(c)) => pred_binding.push(Value::Const(*c)),
                Some(PartialValue::Star) => {
                    return Err(CoreError::Internal(
                        "open node with wildcard predecessor binding".to_owned(),
                    ))
                }
                None => {
                    return Err(CoreError::Internal(
                        "open node with unbound predecessor variable".to_owned(),
                    ))
                }
            }
        }
        let Some(list_id) = self.index.list_for(node, &pred_binding) else {
            // No progress tree for this binding: nothing to enumerate below it
            // (Lemma 5.4 rules this out; handled defensively).
            return Ok(());
        };
        let mut cursor = self.index.head(list_id);
        while let Some(entry) = cursor {
            let tree = self.index.tree(entry).clone();
            // Merge the tree's pattern into the assignment.
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (var, value) in &tree.pattern {
                if !assignment.contains_key(var) {
                    assignment.insert(*var, *value);
                    newly_bound.push(*var);
                }
            }
            self.enum_at(pos + 1, assignment, output)?;
            for var in newly_bound {
                assignment.remove(&var);
            }
            cursor = self.index.next_of(entry);
        }
        Ok(())
    }

    /// The `prune` procedure: after outputting the answer described by
    /// `assignment`, remove from every `trees` list the progress trees that
    /// are strictly dominated (same nodes, strictly more wildcards compatible
    /// with the output pattern).
    fn prune(&mut self, assignment: &FxHashMap<VarId, PartialValue>) {
        let mut removals: Vec<ProgressTree> = Vec::new();
        for (root, nodes, vars) in self.index.subtrees() {
            // Base pattern: the output restricted to the subtree's variables.
            let base: Vec<(VarId, PartialValue)> =
                vars.iter().map(|v| (*v, assignment[v])).collect();
            // Predecessor variables of the subtree root must stay non-wildcard
            // (condition (1) of progress trees), so only the other constant
            // positions may be weakened.
            let pred_vars = &self.structure.nodes[root].pred_vars;
            let weakenable: Vec<usize> = base
                .iter()
                .enumerate()
                .filter(|(_, (v, value))| {
                    matches!(value, PartialValue::Const(_)) && !pred_vars.contains(v)
                })
                .map(|(i, _)| i)
                .collect();
            if weakenable.is_empty() {
                continue;
            }
            // All non-empty subsets of weakenable positions.
            let subset_count: u64 = 1u64 << weakenable.len().min(63);
            for mask in 1..subset_count {
                let mut pattern = base.clone();
                for (bit, &pos) in weakenable.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        pattern[pos].1 = PartialValue::Star;
                    }
                }
                removals.push(ProgressTree {
                    root,
                    nodes: nodes.to_vec(),
                    pattern,
                });
            }
        }
        for tree in removals {
            self.index.remove(&tree);
        }
    }
}

/// Convenience function: enumerates the minimal partial answers of `query`
/// over the chased instance `d0`.
pub fn minimal_partial_answers(
    query: &ConjunctiveQuery,
    d0: &Database,
) -> Result<Vec<PartialTuple>> {
    PartialEnumerator::new(query, d0)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use omq_data::{Fact, Schema};
    use rustc_hash::FxHashSet;

    fn check_against_oracle(query_text: &str, db: &Database) {
        let q = ConjunctiveQuery::parse(query_text).unwrap();
        let fast = minimal_partial_answers(&q, db).unwrap();
        let oracle = baseline::cq_minimal_partial(&q, db);
        let fast_set: FxHashSet<PartialTuple> = fast.iter().cloned().collect();
        let oracle_set: FxHashSet<PartialTuple> = oracle.iter().cloned().collect();
        assert_eq!(
            fast_set, oracle_set,
            "answer sets differ for {query_text}: fast={fast:?} oracle={oracle:?}"
        );
        assert_eq!(
            fast_set.len(),
            fast.len(),
            "duplicate answers for {query_text}"
        );
    }

    /// A chase-like database: constants a,b,c,d,e and a few nulls attached to
    /// them.
    fn chaselike_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("A", 1).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        db.add_named_fact("R", &["d", "e"]).unwrap();
        db.add_named_fact("S", &["b", "c"]).unwrap();
        db.add_named_fact("A", &["a"]).unwrap();
        db.add_named_fact("A", &["d"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s_rel = db.schema().relation_id("S").unwrap();
        let e = Value::Const(db.const_id("e").unwrap());
        db.add_named_fact("A", &["f"]).unwrap();
        // d's office chain ends in a null building: S(e, n1).
        let n1 = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(s_rel, vec![e, n1])).unwrap();
        // f has an entirely anonymous chain: R(f, n2), S(n2, n3).
        let f = Value::Const(db.const_id("f").unwrap());
        let n2 = Value::Null(db.fresh_null());
        let n3 = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![f, n2])).unwrap();
        db.add_fact(Fact::new(s_rel, vec![n2, n3])).unwrap();
        db
    }

    #[test]
    fn running_shape_matches_oracle() {
        let db = chaselike_db();
        for text in [
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- A(x), R(x, y), S(y, z)",
            "q(x) :- R(x, y), S(y, z)",
            "q(y, z) :- R(x, y), S(y, z), A(x)",
            "q(x, z) :- A(x), S(y, z)",
            "q(x, x, y) :- R(x, y)",
        ] {
            check_against_oracle(text, &db);
        }
    }

    #[test]
    fn running_example_shape() {
        // Exactly the structure of Example 1.1 after the query-directed chase.
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- A(x), R(x, y), S(y, z)").unwrap();
        let answers = minimal_partial_answers(&q, &db).unwrap();
        // a: complete chain a-b-c; d: chain ending in a null; f: fully
        // anonymous chain.
        assert_eq!(answers.len(), 3);
        let mut star_counts: Vec<usize> = answers.iter().map(PartialTuple::star_count).collect();
        star_counts.sort_unstable();
        assert_eq!(star_counts, vec![0, 1, 2]);
    }

    #[test]
    fn complete_answers_dominate_wildcards() {
        // If a constant continuation exists, the wildcard variant must not be
        // produced.
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let a = Value::Const(db.const_id("a").unwrap());
        let n = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![a, n])).unwrap();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let answers = minimal_partial_answers(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_complete());
        check_against_oracle("q(x, y) :- R(x, y)", &db);
    }

    #[test]
    fn disconnected_query_products() {
        let db = chaselike_db();
        for text in ["q(x, y) :- A(x), R(y, w)", "q(x, u, v) :- A(x), S(u, v)"] {
            check_against_oracle(text, &db);
        }
    }

    #[test]
    fn boolean_and_empty_cases() {
        let db = chaselike_db();
        let boolean = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let answers = minimal_partial_answers(&boolean, &db).unwrap();
        assert_eq!(answers, vec![PartialTuple(Vec::new())]);

        let unsat = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        assert!(minimal_partial_answers(&unsat, &db).unwrap().is_empty());
    }

    #[test]
    fn non_tractable_query_is_rejected() {
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            PartialEnumerator::new(&q, &db),
            Err(CoreError::NotEnumerationTractable(_))
        ));
    }

    #[test]
    fn shared_null_forces_consistent_wildcards() {
        // Example 6.2 shape: R(c, n), S(c, n) with the same null — the partial
        // answer machinery (single wildcard) reports (c, *, *) for
        // q(x, y, z) :- R(x, y), S(x, z), and the complete/partial distinction
        // is handled by the multi-wildcard layer.
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["c", "c1"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s_rel = db.schema().relation_id("S").unwrap();
        let c = Value::Const(db.const_id("c").unwrap());
        let n = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![c, n])).unwrap();
        db.add_fact(Fact::new(s_rel, vec![c, n])).unwrap();
        check_against_oracle("q(x, y, z) :- R(x, y), S(x, z)", &db);
        check_against_oracle("q(x, y) :- R(x, y), S(x, y)", &db);
    }
}
