//! Algorithm 1: enumeration of minimal partial answers with a single wildcard
//! (Theorem 5.2 of the paper).
//!
//! After the linear-time preprocessing ([`crate::preprocess`] and
//! [`crate::progress`]), the enumeration phase performs a pre-order traversal
//! of the join tree `T₁`.  At every atom it iterates over the progress trees
//! compatible with the bindings made so far, in *database-preferring order*
//! (answers with constants before answers with wildcards).  After each output
//! the `prune` step removes, from every `trees` list, the progress trees that
//! are strictly dominated by the pattern just output — this is what guarantees
//! that only *minimal* partial answers are produced, without repetition.
//!
//! The enumerator is a **pull-based cursor**: the recursive `enum` procedure
//! of the paper is unrolled into an explicit frame stack
//! ([`PartialEnumerator`] implements [`Iterator`]), so a caller can take the
//! first `k` answers for `O(k)` cost, pause between answers, or drop the
//! enumerator mid-stream.  The callback entry point
//! ([`PartialEnumerator::enumerate`]) is a thin loop over the iterator.

use crate::preprocess::{FreeConnexStructure, PlanSkeleton};
use crate::progress::{ProgressIndex, ProgressTree};
use crate::Result;
use omq_cq::{ConjunctiveQuery, VarId};
use omq_data::{Database, PartialTuple, PartialValue};

/// One suspended level of the unrolled `enum` recursion: the progress-tree
/// entry currently applied at pre-order position `pos`, together with the
/// undo-stack watermarks needed to roll its bindings back.
#[derive(Debug, Clone, Copy)]
struct EnumFrame {
    /// Pre-order position of the open node this frame enumerates.
    pos: usize,
    /// The progress-tree entry currently applied at this level.
    entry: usize,
    /// `var_undo` length before this entry's pattern was merged.
    var_base: usize,
    /// `site_undo` length before this entry's sites were published.
    site_base: usize,
}

/// Where the cursor stands between two `next` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Before the first answer: the next advance descends from the root.
    Start,
    /// Positioned *at* the answer just emitted: the next advance backtracks.
    AtAnswer,
    /// Exhausted.
    Done,
}

/// The Algorithm 1 enumerator — a lazy cursor over the minimal partial
/// answers.
///
/// The enumeration phase mutates the preprocessed `trees` lists (pruning), so
/// the cursor is consumed as it is iterated; build a new one (linear time) to
/// re-enumerate.
///
/// The per-answer loop is hash-free: the variable assignment is a dense
/// array indexed by [`VarId`], the `trees(v, h)` list for an open node is
/// read from precomputed *continuation sites* (see
/// [`ProgressIndex::sites_of`]) instead of hashing the predecessor binding,
/// and the `prune` step locates dominated trees with one hash probe per
/// candidate weakening through a pooled probe tree.
#[derive(Debug)]
pub struct PartialEnumerator {
    structure: FreeConnexStructure,
    index: ProgressIndex,
    /// Dense assignment, indexed by `VarId`.
    assignment: Vec<Option<PartialValue>>,
    /// Per node: the list id to enumerate when the node opens (maintained
    /// from the sites of the applied trees).
    open_list: Vec<Option<usize>>,
    /// Reusable undo stack for `open_list` updates (one frame per applied
    /// tree, delimited by the stack length at application time), so the
    /// per-answer loop performs no heap allocations.
    site_undo: Vec<(usize, Option<usize>)>,
    /// Reusable undo stack for variables bound by applied trees, with the
    /// same frame discipline as `site_undo`.
    var_undo: Vec<VarId>,
    /// The explicit stack of the unrolled `enum` recursion.
    frames: Vec<EnumFrame>,
    phase: Phase,
    /// Reused answer buffer for [`PartialEnumerator::fill_values`]: batched
    /// pulls materialise each answer into this scratch and hand out a slice,
    /// so no per-answer `PartialTuple` vector is allocated.
    emit_scratch: Vec<PartialValue>,
    /// Pooled scratch of the `prune` step (entry removals, base pattern,
    /// weakenable positions, candidate probe tree).  Pruning runs once per
    /// answer; keeping these as fields removes its per-answer heap
    /// allocations.
    prune_removals: Vec<usize>,
    prune_base: Vec<(VarId, PartialValue)>,
    prune_weakenable: Vec<usize>,
    prune_probe: ProgressTree,
}

impl PartialEnumerator {
    /// Preprocesses `query` over the chased instance `d0`.
    ///
    /// Requires the query to be acyclic and free-connex acyclic.
    pub fn new(query: &ConjunctiveQuery, d0: &Database) -> Result<Self> {
        let structure = FreeConnexStructure::build(query, d0, false)?;
        Self::from_structure(structure)
    }

    /// Preprocesses a compiled skeleton over the chased instance `d0`.
    pub fn with_skeleton(skeleton: &PlanSkeleton, d0: &Database) -> Result<Self> {
        let structure = FreeConnexStructure::materialize(skeleton, d0, false)?;
        Self::from_structure(structure)
    }

    /// Builds an enumerator from an existing structure (must have been built
    /// with `complete_only = false`).
    pub fn from_structure(structure: FreeConnexStructure) -> Result<Self> {
        let index = ProgressIndex::build(&structure)?;
        let var_count = structure.query.var_count();
        let node_count = structure.nodes.len();
        let mut open_list = vec![None; node_count];
        for &(node, list) in index.root_sites() {
            open_list[node] = list;
        }
        Ok(PartialEnumerator {
            structure,
            index,
            assignment: vec![None; var_count],
            open_list,
            site_undo: Vec::new(),
            var_undo: Vec::new(),
            frames: Vec::new(),
            phase: Phase::Start,
            emit_scratch: Vec::new(),
            prune_removals: Vec::new(),
            prune_base: Vec::new(),
            prune_weakenable: Vec::new(),
            prune_probe: ProgressTree {
                root: 0,
                nodes: Vec::new(),
                pattern: Vec::new(),
            },
        })
    }

    /// The underlying preprocessed structure.
    pub fn structure(&self) -> &FreeConnexStructure {
        &self.structure
    }

    /// Runs the enumeration to completion, invoking `output` for every
    /// minimal partial answer (exactly once each).  Thin wrapper over the
    /// [`Iterator`] implementation.
    pub fn enumerate(mut self, mut output: impl FnMut(PartialTuple)) -> Result<()> {
        for answer in &mut self {
            output(answer);
        }
        Ok(())
    }

    /// The `nextat` helper: the first pre-order position `≥ from` whose node
    /// has an unassigned variable, or `None` for "end of atoms".
    fn next_open(&self, from: usize) -> Option<usize> {
        (from..self.structure.preorder.len()).find(|&pos| {
            let node = self.structure.preorder[pos];
            self.structure.nodes[node]
                .vars
                .iter()
                .any(|v| self.assignment[v.0 as usize].is_none())
        })
    }

    /// Applies `entry` at pre-order position `pos`: merges the tree's pattern
    /// into the assignment (already-bound variables keep their value; by
    /// join-tree connectivity they are predecessor variables of the tree's
    /// root and agree with the pattern), publishes the tree's continuation
    /// sites, and pushes the frame that remembers how to undo both.
    fn apply(&mut self, pos: usize, entry: usize) {
        let var_base = self.var_undo.len();
        for i in 0..self.index.tree(entry).pattern.len() {
            let (var, value) = self.index.tree(entry).pattern[i];
            let slot = &mut self.assignment[var.0 as usize];
            if slot.is_none() {
                *slot = Some(value);
                self.var_undo.push(var);
            }
        }
        let site_base = self.site_undo.len();
        for i in 0..self.index.sites_of(entry).len() {
            let (site_node, list) = self.index.sites_of(entry)[i];
            self.site_undo.push((site_node, self.open_list[site_node]));
            self.open_list[site_node] = list;
        }
        self.frames.push(EnumFrame {
            pos,
            entry,
            var_base,
            site_base,
        });
    }

    /// Pops the deepest frame, rolls its bindings back, and moves its level
    /// to the next progress tree of the same list; exhausted levels keep
    /// popping.  Returns the pre-order position to resume the descent from,
    /// or `None` when the whole traversal is exhausted.
    fn backtrack(&mut self) -> Option<usize> {
        while let Some(frame) = self.frames.pop() {
            while self.site_undo.len() > frame.site_base {
                let (site_node, old) = self.site_undo.pop().expect("frame non-empty");
                self.open_list[site_node] = old;
            }
            while self.var_undo.len() > frame.var_base {
                let var = self.var_undo.pop().expect("frame non-empty");
                self.assignment[var.0 as usize] = None;
            }
            if let Some(next_entry) = self.index.next_of(frame.entry) {
                self.apply(frame.pos, next_entry);
                return Some(frame.pos + 1);
            }
        }
        None
    }

    /// Advances the machine to the next complete assignment — the unrolled
    /// `enum` procedure of Algorithm 1.  `initial` selects between the very
    /// first descent (from the root) and a backtrack-first continuation.
    /// Returns `false` when the enumeration is exhausted.
    fn advance(&mut self, initial: bool) -> bool {
        let mut from = if initial {
            0
        } else {
            match self.backtrack() {
                Some(pos) => pos,
                None => return false,
            }
        };
        loop {
            let Some(pos) = self.next_open(from) else {
                // End of atoms: the assignment describes the next answer.
                return true;
            };
            let node = self.structure.preorder[pos];
            // The list for this node under the current predecessor binding
            // was precomputed as a site of the tree that bound the
            // predecessors (or as a root site).  `None` means no progress
            // tree exists for the binding: nothing to enumerate below it
            // (Lemma 5.4 rules this out; handled defensively).
            let head = self.open_list[node].and_then(|list| self.index.head(list));
            match head {
                Some(entry) => {
                    self.apply(pos, entry);
                    from = pos + 1;
                }
                None => match self.backtrack() {
                    Some(resume) => from = resume,
                    None => return false,
                },
            }
        }
    }

    /// Materialises the answer described by the current assignment and runs
    /// the `prune` step against it.
    fn emit(&mut self) -> PartialTuple {
        let answer = PartialTuple(
            self.structure
                .answer_positions
                .iter()
                .map(|v| self.assignment[v.0 as usize].expect("answer variable bound"))
                .collect(),
        );
        self.prune();
        answer
    }

    /// Batched pull: produces up to `limit` answers, invoking `emit` for each,
    /// without re-entering [`Iterator::next`] per tuple.  Returns the number
    /// produced; fewer than `limit` means the enumeration is exhausted.
    ///
    /// Thin owning wrapper over [`PartialEnumerator::fill_values`] for
    /// callers that need `PartialTuple`s to keep.
    pub fn fill_with(&mut self, limit: usize, mut emit: impl FnMut(PartialTuple)) -> usize {
        self.fill_values(limit, |values| emit(PartialTuple(values.to_vec())))
    }

    /// Allocation-free batched pull: produces up to `limit` answers, invoking
    /// `emit` once per answer with the answer values in a scratch buffer
    /// reused across answers *and* across batches.  Same answers in the same
    /// order as [`Iterator::next`], but the only per-answer heap traffic left
    /// is whatever the caller's `emit` does with the slice — counting and
    /// merge probing consume it in place.  Returns the number produced; fewer
    /// than `limit` means the enumeration is exhausted.
    pub fn fill_values(&mut self, limit: usize, mut emit: impl FnMut(&[PartialValue])) -> usize {
        if limit == 0 {
            return 0;
        }
        let mut produced = 0usize;
        // Detach the scratch so the traversal below can borrow `self`
        // mutably while `emit` sees the materialised slice.
        let mut scratch = std::mem::take(&mut self.emit_scratch);
        loop {
            match self.phase {
                Phase::Done => break,
                Phase::Start => {
                    if self.structure.empty {
                        self.phase = Phase::Done;
                        break;
                    }
                    if let Some(satisfiable) = self.structure.boolean_satisfiable {
                        self.phase = Phase::Done;
                        if satisfiable {
                            emit(&[]);
                            produced += 1;
                        }
                        break;
                    }
                    if self.advance(true) {
                        self.phase = Phase::AtAnswer;
                        self.materialise_into(&mut scratch);
                        emit(&scratch);
                        self.prune();
                        produced += 1;
                    } else {
                        self.phase = Phase::Done;
                        break;
                    }
                }
                Phase::AtAnswer => {
                    if self.advance(false) {
                        self.materialise_into(&mut scratch);
                        emit(&scratch);
                        self.prune();
                        produced += 1;
                    } else {
                        self.phase = Phase::Done;
                        break;
                    }
                }
            }
            if produced == limit {
                break;
            }
        }
        self.emit_scratch = scratch;
        produced
    }

    /// Copies the answer described by the current assignment into `out`.
    #[inline]
    fn materialise_into(&self, out: &mut Vec<PartialValue>) {
        out.clear();
        out.extend(
            self.structure
                .answer_positions
                .iter()
                .map(|v| self.assignment[v.0 as usize].expect("answer variable bound")),
        );
    }

    /// The `prune` procedure: after outputting the answer described by the
    /// current assignment, remove from every `trees` list the progress trees
    /// that are strictly dominated (same nodes, strictly more wildcards
    /// compatible with the output pattern).  Each candidate weakening is one
    /// hash probe against the index's tree→entry table, through a pooled
    /// probe tree — prune runs once per answer, and this loop is the bulk of
    /// the enumeration phase's per-answer constant.
    fn prune(&mut self) {
        // The scratch buffers are pooled on the enumerator (prune runs once
        // per answer); they are detached for the duration of the pass because
        // `subtrees()` keeps `self.index` borrowed.
        let mut removals = std::mem::take(&mut self.prune_removals);
        let mut base = std::mem::take(&mut self.prune_base);
        let mut weakenable = std::mem::take(&mut self.prune_weakenable);
        let mut probe = std::mem::replace(
            &mut self.prune_probe,
            ProgressTree {
                root: 0,
                nodes: Vec::new(),
                pattern: Vec::new(),
            },
        );
        removals.clear();
        for (root, nodes, vars) in self.index.subtrees() {
            // Progress trees carry constants on the predecessor variables of
            // their root; if the output assigns a wildcard there, no tree in
            // any list can match a weakening of this output.
            let pred_vars = &self.structure.nodes[root].pred_vars;
            if pred_vars
                .iter()
                .any(|w| matches!(self.assignment[w.0 as usize], Some(PartialValue::Star)))
            {
                continue;
            }
            // The list holding trees rooted here under the output's
            // predecessor binding is the node's active list; with no active
            // list, no tree can be dominated.
            let Some(list_id) = self.open_list[root] else {
                continue;
            };
            // Base pattern: the output restricted to the subtree's variables.
            base.clear();
            base.extend(
                vars.iter()
                    .map(|v| (*v, self.assignment[v.0 as usize].expect("variable bound"))),
            );
            // Predecessor variables of the subtree root must stay non-wildcard
            // (condition (1) of progress trees), so only the other constant
            // positions may be weakened.
            weakenable.clear();
            weakenable.extend(
                base.iter()
                    .enumerate()
                    .filter(|(_, (v, value))| {
                        matches!(value, PartialValue::Const(_)) && !pred_vars.contains(v)
                    })
                    .map(|(i, _)| i),
            );
            if weakenable.is_empty() {
                continue;
            }
            probe.root = root;
            probe.nodes.clear();
            probe.nodes.extend_from_slice(nodes);
            // All non-empty subsets of weakenable positions.
            let subset_count: u64 = 1u64 << weakenable.len().min(63);
            for mask in 1..subset_count {
                probe.pattern.clear();
                probe.pattern.extend_from_slice(&base);
                for (bit, &pos) in weakenable.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        probe.pattern[pos].1 = PartialValue::Star;
                    }
                }
                if let Some(entry) = self.index.entry_of(&probe) {
                    // A tree's pattern pins its predecessor binding, so a
                    // matching tree necessarily lives in the active list.
                    debug_assert!(
                        self.index.find_in_list(list_id, nodes, &probe.pattern) == Some(entry)
                    );
                    removals.push(entry);
                }
            }
        }
        for &entry in &removals {
            self.index.remove_entry(entry);
        }
        self.prune_removals = removals;
        self.prune_base = base;
        self.prune_weakenable = weakenable;
        self.prune_probe = probe;
    }
}

impl Iterator for PartialEnumerator {
    type Item = PartialTuple;

    fn next(&mut self) -> Option<Self::Item> {
        match self.phase {
            Phase::Done => None,
            Phase::Start => {
                if self.structure.empty {
                    self.phase = Phase::Done;
                    return None;
                }
                if let Some(satisfiable) = self.structure.boolean_satisfiable {
                    self.phase = Phase::Done;
                    return satisfiable.then(|| PartialTuple(Vec::new()));
                }
                if self.advance(true) {
                    self.phase = Phase::AtAnswer;
                    Some(self.emit())
                } else {
                    self.phase = Phase::Done;
                    None
                }
            }
            Phase::AtAnswer => {
                if self.advance(false) {
                    Some(self.emit())
                } else {
                    self.phase = Phase::Done;
                    None
                }
            }
        }
    }
}

impl std::iter::FusedIterator for PartialEnumerator {}

/// Convenience function: enumerates the minimal partial answers of `query`
/// over the chased instance `d0`.
pub fn minimal_partial_answers(
    query: &ConjunctiveQuery,
    d0: &Database,
) -> Result<Vec<PartialTuple>> {
    Ok(PartialEnumerator::new(query, d0)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::error::CoreError;
    use omq_data::{Fact, Schema, Value};
    use rustc_hash::FxHashSet;

    fn check_against_oracle(query_text: &str, db: &Database) {
        let q = ConjunctiveQuery::parse(query_text).unwrap();
        let fast: Vec<PartialTuple> = minimal_partial_answers(&q, db).unwrap();
        let oracle = baseline::cq_minimal_partial(&q, db);
        let fast_set: FxHashSet<PartialTuple> = fast.iter().cloned().collect();
        let oracle_set: FxHashSet<PartialTuple> = oracle.iter().cloned().collect();
        assert_eq!(
            fast_set, oracle_set,
            "answer sets differ for {query_text}: fast={fast:?} oracle={oracle:?}"
        );
        assert_eq!(
            fast_set.len(),
            fast.len(),
            "duplicate answers for {query_text}"
        );
        // The pull cursor yields the same sequence as the callback run, and
        // every strict prefix of it is reachable by early termination.
        let via_iter: Vec<PartialTuple> = PartialEnumerator::new(&q, db).unwrap().collect();
        assert_eq!(via_iter, fast, "iterator diverges for {query_text}");
        for k in [0, 1, 2, fast.len()] {
            let prefix: Vec<PartialTuple> =
                PartialEnumerator::new(&q, db).unwrap().take(k).collect();
            assert_eq!(prefix, fast[..k.min(fast.len())], "take({k}) diverges");
        }
    }

    /// A chase-like database: constants a,b,c,d,e and a few nulls attached to
    /// them.
    fn chaselike_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("A", 1).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        db.add_named_fact("R", &["d", "e"]).unwrap();
        db.add_named_fact("S", &["b", "c"]).unwrap();
        db.add_named_fact("A", &["a"]).unwrap();
        db.add_named_fact("A", &["d"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s_rel = db.schema().relation_id("S").unwrap();
        let e = Value::Const(db.const_id("e").unwrap());
        db.add_named_fact("A", &["f"]).unwrap();
        // d's office chain ends in a null building: S(e, n1).
        let n1 = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(s_rel, vec![e, n1])).unwrap();
        // f has an entirely anonymous chain: R(f, n2), S(n2, n3).
        let f = Value::Const(db.const_id("f").unwrap());
        let n2 = Value::Null(db.fresh_null());
        let n3 = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![f, n2])).unwrap();
        db.add_fact(Fact::new(s_rel, vec![n2, n3])).unwrap();
        db
    }

    #[test]
    fn running_shape_matches_oracle() {
        let db = chaselike_db();
        for text in [
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- A(x), R(x, y), S(y, z)",
            "q(x) :- R(x, y), S(y, z)",
            "q(y, z) :- R(x, y), S(y, z), A(x)",
            "q(x, z) :- A(x), S(y, z)",
            "q(x, x, y) :- R(x, y)",
        ] {
            check_against_oracle(text, &db);
        }
    }

    #[test]
    fn running_example_shape() {
        // Exactly the structure of Example 1.1 after the query-directed chase.
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- A(x), R(x, y), S(y, z)").unwrap();
        let answers = minimal_partial_answers(&q, &db).unwrap();
        // a: complete chain a-b-c; d: chain ending in a null; f: fully
        // anonymous chain.
        assert_eq!(answers.len(), 3);
        let mut star_counts: Vec<usize> = answers.iter().map(PartialTuple::star_count).collect();
        star_counts.sort_unstable();
        assert_eq!(star_counts, vec![0, 1, 2]);
    }

    #[test]
    fn dropping_the_cursor_mid_stream_is_sound() {
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- A(x), R(x, y), S(y, z)").unwrap();
        let mut cursor = PartialEnumerator::new(&q, &db).unwrap();
        let first = cursor.next();
        assert!(first.is_some());
        drop(cursor);
        // A fresh cursor re-enumerates from the start.
        assert_eq!(
            PartialEnumerator::new(&q, &db).unwrap().count(),
            minimal_partial_answers(&q, &db).unwrap().len()
        );
    }

    #[test]
    fn complete_answers_dominate_wildcards() {
        // If a constant continuation exists, the wildcard variant must not be
        // produced.
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let a = Value::Const(db.const_id("a").unwrap());
        let n = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![a, n])).unwrap();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let answers = minimal_partial_answers(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_complete());
        check_against_oracle("q(x, y) :- R(x, y)", &db);
    }

    #[test]
    fn disconnected_query_products() {
        let db = chaselike_db();
        for text in ["q(x, y) :- A(x), R(y, w)", "q(x, u, v) :- A(x), S(u, v)"] {
            check_against_oracle(text, &db);
        }
    }

    #[test]
    fn boolean_and_empty_cases() {
        let db = chaselike_db();
        let boolean = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let answers = minimal_partial_answers(&boolean, &db).unwrap();
        assert_eq!(answers, vec![PartialTuple(Vec::new())]);

        let unsat = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        assert!(minimal_partial_answers(&unsat, &db).unwrap().is_empty());
    }

    #[test]
    fn fill_values_matches_the_iterator() {
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- A(x), R(x, y), S(y, z)").unwrap();
        let via_iter: Vec<PartialTuple> = PartialEnumerator::new(&q, &db).unwrap().collect();
        let mut cursor = PartialEnumerator::new(&q, &db).unwrap();
        let mut batched: Vec<PartialTuple> = Vec::new();
        loop {
            let got = cursor.fill_values(2, |values| batched.push(PartialTuple(values.to_vec())));
            if got < 2 {
                break;
            }
        }
        assert_eq!(batched, via_iter);
        // An exhausted cursor keeps returning zero without emitting.
        assert_eq!(cursor.fill_values(4, |_| panic!("no more answers")), 0);

        // Boolean queries emit one empty slice.
        let boolean = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let mut cursor = PartialEnumerator::new(&boolean, &db).unwrap();
        let mut empties = 0usize;
        assert_eq!(
            cursor.fill_values(8, |values| {
                assert!(values.is_empty());
                empties += 1;
            }),
            1
        );
        assert_eq!(empties, 1);
    }

    #[test]
    fn non_tractable_query_is_rejected() {
        let db = chaselike_db();
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            PartialEnumerator::new(&q, &db),
            Err(CoreError::NotEnumerationTractable(_))
        ));
    }

    #[test]
    fn shared_null_forces_consistent_wildcards() {
        // Example 6.2 shape: R(c, n), S(c, n) with the same null — the partial
        // answer machinery (single wildcard) reports (c, *, *) for
        // q(x, y, z) :- R(x, y), S(x, z), and the complete/partial distinction
        // is handled by the multi-wildcard layer.
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["c", "c1"]).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let s_rel = db.schema().relation_id("S").unwrap();
        let c = Value::Const(db.const_id("c").unwrap());
        let n = Value::Null(db.fresh_null());
        db.add_fact(Fact::new(r, vec![c, n])).unwrap();
        db.add_fact(Fact::new(s_rel, vec![c, n])).unwrap();
        check_against_oracle("q(x, y, z) :- R(x, y), S(x, z)", &db);
        check_against_oracle("q(x, y) :- R(x, y), S(x, y)", &db);
    }
}
